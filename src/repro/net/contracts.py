"""Typed request/response contracts for the serving protocol.

Every frame on the wire is one of three envelopes:

* **request** — ``{"id": <int>, "kind": <str>, ...fields}``, client → server;
* **response** — ``{"id": <int>, "ok": <bool>, ...fields}``, server → client,
  correlated by ``id``; ``ok: false`` carries ``error`` (message) and
  ``code`` (the server-side error class name, e.g. ``"SchemaError"``);
* **push** — ``{"push": <str>, ...fields}``, server → client, unsolicited
  (no ``id``): the kernel's mutation fan-out delivered to subscribers.

Each request kind has a :class:`Contract` naming its required and
optional fields with their JSON types. Validation happens *before* the
router touches the kernel, so a malformed request can never leave a
session half-mutated — it is rejected with a ``ProtocolError`` response
and the connection stays usable.

The kinds (see ``docs/SERVING.md`` for the full field tables):

=============== ====================================================
``hello``        server/protocol identification
``open_session`` open a kernel session (user, category, application…)
``close_session`` shut one session down (idempotent)
``event``        a §4 browsing interaction against a session
``query``        analysis-mode query through the kernel result cache
``render``       text rendering of one window or the whole screen
``scene``        structured description of every open window
``txn``          a batch of mutations committed as one transaction
``subscribe``    opt in to mutation pushes for a set of classes
``unsubscribe``  opt out again
``watch``        register a live query; result changes are pushed
``unwatch``      release a live query registration
``stats``        kernel + server statistics
``ping``         liveness probe
``repl_snapshot`` one chunk of a replication bootstrap snapshot
``repl_poll``    shipped WAL batches after a cursor LSN
``repl_status``  leader + per-replica LSN/lag
=============== ====================================================
"""

from __future__ import annotations

from typing import Any

from ..errors import ProtocolError

#: protocol revision; bumped on any incompatible envelope change
PROTOCOL_VERSION = 1

_TYPE_NAMES = {
    str: "string",
    int: "integer",
    float: "number",
    bool: "boolean",
    list: "array",
    dict: "object",
}


def _type_label(types: tuple) -> str:
    return " or ".join(_TYPE_NAMES.get(t, t.__name__) for t in types)


class Contract:
    """Field schema for one request kind."""

    __slots__ = ("kind", "required", "optional")

    def __init__(self, kind: str, required: dict[str, tuple] | None = None,
                 optional: dict[str, tuple] | None = None):
        self.kind = kind
        self.required = required or {}
        self.optional = optional or {}

    def validate(self, doc: dict[str, Any]) -> None:
        """Raise :class:`ProtocolError` unless ``doc`` satisfies this
        contract. Unknown fields are rejected too — they are almost
        always a client bug, and silently ignoring them would make the
        protocol impossible to evolve."""
        for name, types in self.required.items():
            if name not in doc:
                raise ProtocolError(
                    f"{self.kind!r} request is missing required field "
                    f"{name!r}"
                )
            self._check(name, doc[name], types)
        for name, types in self.optional.items():
            if name in doc and doc[name] is not None:
                self._check(name, doc[name], types)
        known = {"id", "kind", *self.required, *self.optional}
        unknown = sorted(set(doc) - known)
        if unknown:
            raise ProtocolError(
                f"{self.kind!r} request has unknown field(s): "
                + ", ".join(repr(f) for f in unknown)
            )

    def _check(self, name: str, value: Any, types: tuple) -> None:
        # bool is an int subclass; only accept it where bool is declared
        if isinstance(value, bool) and bool not in types:
            raise ProtocolError(
                f"{self.kind!r} field {name!r} must be "
                f"{_type_label(types)}, got boolean"
            )
        if not isinstance(value, types):
            raise ProtocolError(
                f"{self.kind!r} field {name!r} must be "
                f"{_type_label(types)}, got {type(value).__name__}"
            )


_NUM = (int, float)

#: the request contract registry, keyed by ``kind``
CONTRACTS: dict[str, Contract] = {
    c.kind: c
    for c in [
        Contract("hello"),
        Contract(
            "open_session",
            optional={
                "user": (str,),
                "category": (str,),
                "application": (str,),
                "scale_denominator": _NUM,
                "time_tag": (str,),
                "auto_refresh": (bool,),
            },
        ),
        Contract("close_session", required={"session": (str,)}),
        Contract(
            "event",
            required={"session": (str,), "op": (str,)},
            optional={
                "schema": (str,),     # open_schema
                "name": (str,),       # select_class
                "oid": (str,),        # select_instance
                "class": (str,),      # pick / select_instance
                "col": (int,),        # pick
                "row": (int,),        # pick
                "window": (str,),     # close_window
            },
        ),
        Contract(
            "query",
            required={"schema": (str,), "text": (str,)},
            optional={
                "session": (str,),
                "use_cache": (bool,),
                "read_preference": (str,),
                "min_lsn": (int,),
            },
        ),
        Contract(
            "render",
            required={"session": (str,)},
            optional={"window": (str,)},
        ),
        Contract("scene", required={"session": (str,)}),
        Contract(
            "txn",
            required={"ops": (list,)},
            optional={"session": (str,), "wait_durable": (bool,)},
        ),
        Contract("subscribe", required={"classes": (list,)}),
        Contract("unsubscribe", optional={"classes": (list,)}),
        Contract(
            "watch",
            required={"session": (str,), "schema": (str,),
                      "text": (str,)},
        ),
        Contract("unwatch", required={"watch": (str,)}),
        Contract("stats"),
        Contract("ping"),
        Contract("repl_snapshot", optional={"chunk": (int,)}),
        Contract(
            "repl_poll",
            required={"cursor": (int,)},
            optional={"max_batches": (int,)},
        ),
        Contract("repl_status"),
    ]
}

#: the ``op`` vocabulary of the ``event`` kind, with per-op field needs
EVENT_OPS: dict[str, tuple[str, ...]] = {
    "open_schema": ("schema",),
    "select_class": ("name",),
    "select_instance": ("oid",),
    "pick": ("class", "col", "row"),
    "close_window": ("window",),
}

#: the ``op`` vocabulary of one ``txn`` batch entry
TXN_OPS = frozenset({"insert", "update", "delete"})


def validate_request(doc: dict[str, Any]) -> Contract:
    """Validate the envelope and body of one request frame.

    Returns the matched contract. Raises :class:`ProtocolError` for a
    missing/mistyped ``id``, an unknown ``kind``, or any field
    violation.
    """
    request_id = doc.get("id")
    if not isinstance(request_id, int) or isinstance(request_id, bool):
        raise ProtocolError("request frame is missing an integer 'id'")
    kind = doc.get("kind")
    if not isinstance(kind, str):
        raise ProtocolError("request frame is missing a string 'kind'")
    contract = CONTRACTS.get(kind)
    if contract is None:
        raise ProtocolError(
            f"unknown request kind {kind!r}; known kinds: "
            + ", ".join(sorted(CONTRACTS))
        )
    contract.validate(doc)
    if kind == "event":
        _validate_event(doc)
    elif kind == "txn":
        _validate_txn(doc)
    return contract


def _validate_event(doc: dict[str, Any]) -> None:
    op = doc["op"]
    needed = EVENT_OPS.get(op)
    if needed is None:
        raise ProtocolError(
            f"unknown event op {op!r}; known ops: "
            + ", ".join(sorted(EVENT_OPS))
        )
    missing = [f for f in needed if doc.get(f) is None]
    if missing:
        raise ProtocolError(
            f"event op {op!r} requires field(s): "
            + ", ".join(repr(f) for f in missing)
        )


def _validate_txn(doc: dict[str, Any]) -> None:
    ops = doc["ops"]
    if not ops:
        raise ProtocolError("'txn' request has an empty 'ops' batch")
    for i, entry in enumerate(ops):
        if not isinstance(entry, dict):
            raise ProtocolError(f"txn op #{i} must be an object")
        op = entry.get("op")
        if op not in TXN_OPS:
            raise ProtocolError(
                f"txn op #{i} has unknown op {op!r}; known ops: "
                + ", ".join(sorted(TXN_OPS))
            )
        if op == "insert":
            for f in ("schema", "class", "values"):
                if f not in entry:
                    raise ProtocolError(
                        f"txn insert op #{i} is missing {f!r}"
                    )
            if not isinstance(entry["values"], dict):
                raise ProtocolError(
                    f"txn insert op #{i} 'values' must be an object"
                )
        elif op == "update":
            if "oid" not in entry or "changes" not in entry:
                raise ProtocolError(
                    f"txn update op #{i} needs 'oid' and 'changes'"
                )
            if not isinstance(entry["changes"], dict):
                raise ProtocolError(
                    f"txn update op #{i} 'changes' must be an object"
                )
        elif "oid" not in entry:
            raise ProtocolError(f"txn delete op #{i} needs 'oid'")


# ----------------------------------------------------------------------
# Envelope constructors (the only places that shape response frames)
# ----------------------------------------------------------------------

def make_response(request_id: int, **fields: Any) -> dict[str, Any]:
    """A success response correlated to ``request_id``."""
    return {"id": request_id, "ok": True, **fields}


def make_error(request_id: int | None, message: str,
               code: str) -> dict[str, Any]:
    """An error response; ``code`` names the server-side error class."""
    return {"id": request_id, "ok": False, "error": message, "code": code}


def make_push(push_kind: str, **fields: Any) -> dict[str, Any]:
    """An unsolicited server push (no correlation id)."""
    return {"push": push_kind, **fields}
