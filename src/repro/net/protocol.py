"""The wire protocol: length-prefixed, checksummed JSON frames.

One frame is one message — a request, a response, or a server push. The
layout mirrors the WAL's record framing (the other place this codebase
already survives torn byte streams)::

    [4-byte payload length, big-endian]
    [4-byte CRC32 of the payload, big-endian]
    [payload: UTF-8 JSON object]

Rules the codec enforces on both sides:

* the length must be between 1 and :data:`MAX_FRAME` — a zero length or
  an absurd one means the stream is desynchronized or hostile, and the
  connection must be dropped rather than the peer waiting forever on a
  body that never comes;
* the CRC must match — a torn or bit-flipped frame is detected before
  JSON parsing ever sees it;
* the payload must decode to a JSON **object** (the envelope carries
  the routing fields; scalars and arrays have nowhere to put them).

Every violation raises :class:`~repro.errors.ProtocolError` with a
message naming the rule broken; the server's fault-injection suite
asserts each one surfaces as an error frame or a clean disconnect, never
as a hang or corrupted kernel state.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Any

from ..errors import ProtocolError

#: frame header: payload length + CRC32, both 4-byte big-endian
HEADER = struct.Struct(">II")

#: refuse frames larger than this (a length prefix of e.g. 2**31 would
#: otherwise make the reader wait on — or allocate — gigabytes)
MAX_FRAME = 4 * 1024 * 1024


def encode_frame(doc: dict[str, Any]) -> bytes:
    """Serialize one message into its wire frame."""
    if not isinstance(doc, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(doc).__name__}"
        )
    payload = json.dumps(doc, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME}-byte limit"
        )
    return HEADER.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF) + payload


def decode_payload(payload: bytes, crc: int) -> dict[str, Any]:
    """Validate and parse one frame body (header already consumed)."""
    if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
        raise ProtocolError("frame checksum mismatch (torn or corrupt frame)")
    try:
        doc = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"frame payload is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(doc).__name__}"
        )
    return doc


def check_length(length: int) -> int:
    """Validate a header's payload length before reading the body."""
    if length == 0:
        raise ProtocolError("zero-length frame")
    if length > MAX_FRAME:
        raise ProtocolError(
            f"frame length {length} exceeds the {MAX_FRAME}-byte limit"
        )
    return length


class FrameDecoder:
    """Incremental decoder for a byte stream of frames.

    Feed it whatever chunks arrive; it yields complete messages and
    keeps partial frames buffered. The sync client uses it over a plain
    socket; tests use it to decode captured streams.

    Raises :class:`~repro.errors.ProtocolError` as soon as the buffered
    prefix is provably invalid (bad length, bad CRC, bad JSON) — the
    stream cannot be resynchronized after that and must be closed.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[dict[str, Any]]:
        """Consume a chunk; returns every message it completed."""
        self._buffer.extend(data)
        out: list[dict[str, Any]] = []
        while True:
            if len(self._buffer) < HEADER.size:
                return out
            length, crc = HEADER.unpack_from(self._buffer)
            check_length(length)
            end = HEADER.size + length
            if len(self._buffer) < end:
                return out
            payload = bytes(self._buffer[HEADER.size:end])
            del self._buffer[:end]
            out.append(decode_payload(payload, crc))

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        return len(self._buffer)


async def read_frame(reader) -> dict[str, Any] | None:
    """Read one frame from an :class:`asyncio.StreamReader`.

    Returns ``None`` on a clean EOF at a frame boundary. A connection
    cut mid-frame raises :class:`~repro.errors.ProtocolError` (the
    server treats both as a disconnect, but tells them apart in its
    metrics).
    """
    import asyncio

    try:
        header = await reader.readexactly(HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between frames
        raise ProtocolError(
            f"connection closed mid-header ({len(exc.partial)}/8 bytes)"
        ) from exc
    length, crc = HEADER.unpack(header)
    check_length(length)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed mid-frame ({len(exc.partial)}/{length} bytes)"
        ) from exc
    return decode_payload(payload, crc)
