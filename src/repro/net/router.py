"""The request router: frames in, kernel operations out.

One :class:`Router` serves every connection of a
:class:`~repro.net.server.GISServer`. It owns no sockets and no event
loop — it is a plain synchronous object mapping one validated request
document to one response document, so the whole dispatch surface is
testable without networking.

Per-connection state lives in :class:`ClientState`: the sessions the
connection opened (a remote client may hold several, mirroring a user
with several windowsets) and its mutation-push subscriptions. The
server guarantees one connection's requests are handled serially, so
``ClientState`` needs no locking; the kernel and database underneath
are shared across connections and rely on their own synchronization.

Error policy: every :class:`~repro.errors.ReproError` raised while
handling a request becomes an ``ok: false`` response whose ``code`` is
the error class name — the connection survives, because a rejected
request leaves the kernel untouched (contract validation runs first,
and database mutations are transactional). Only stream-level framing
errors cost the client its connection (see ``server.py``).
"""

from __future__ import annotations

from typing import Any, Callable

from .. import obs
from ..errors import ProtocolError, ReproError, SessionError
from ..core.kernel import GISKernel
from ..core.session import GISSession
from . import contracts
from .contracts import make_response

#: subscription wildcard: push every committed mutation
ALL_CLASSES = "*"


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of a result structure to JSON-safe types.

    Stats and scene dictionaries are mostly scalars already; anything
    exotic (geometries in projected rows, enum members) degrades to its
    ``str()`` form rather than failing the whole response.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    return str(value)


class ClientState:
    """Everything the server remembers about one connection."""

    __slots__ = ("conn_id", "sessions", "subscriptions", "watches", "peer",
                 "repl_snapshot")

    def __init__(self, conn_id: int, peer: str = "?"):
        self.conn_id = conn_id
        self.peer = peer
        #: session_id -> the GISSession this connection opened
        self.sessions: dict[str, GISSession] = {}
        #: class names whose committed mutations this connection wants
        #: pushed (may contain :data:`ALL_CLASSES`)
        self.subscriptions: set[str] = set()
        #: watch_id -> the live-query Watch this connection registered;
        #: ``live_update`` pushes route by watch id, so a connection
        #: only ever hears about its own watches
        self.watches: dict[str, Any] = {}
        #: in-flight chunked replication snapshot: (header doc, object
        #: chunks); built on chunk 0, dropped after the last chunk so a
        #: follower always assembles one consistent cut
        self.repl_snapshot: tuple[dict[str, Any], list[list]] | None = None

    def close_sessions(self) -> int:
        """Shut down every session this connection still holds.

        Idempotent (``GISSession.shutdown`` is); used both by the
        ``close_session`` request and by the disconnect path, in either
        order. Returns the number of sessions that were still open.
        """
        closed = 0
        for session in list(self.sessions.values()):
            if not session._closed:
                closed += 1
            session.shutdown()
        self.sessions.clear()
        # session.shutdown() already released the watches kernel-side
        # (kernel._detach drops them); this just clears the routing map
        self.watches.clear()
        return closed


class Router:
    """Maps validated request documents onto kernel/session operations."""

    def __init__(self, kernel: GISKernel, server_name: str = "repro"):
        self.kernel = kernel
        self.server_name = server_name
        self._handlers: dict[str, Callable] = {
            "hello": self._handle_hello,
            "open_session": self._handle_open_session,
            "close_session": self._handle_close_session,
            "event": self._handle_event,
            "query": self._handle_query,
            "render": self._handle_render,
            "scene": self._handle_scene,
            "txn": self._handle_txn,
            "subscribe": self._handle_subscribe,
            "unsubscribe": self._handle_unsubscribe,
            "watch": self._handle_watch,
            "unwatch": self._handle_unwatch,
            "stats": self._handle_stats,
            "ping": self._handle_ping,
            "repl_snapshot": self._handle_repl_snapshot,
            "repl_poll": self._handle_repl_poll,
            "repl_status": self._handle_repl_status,
        }

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def handle(self, state: ClientState, doc: dict[str, Any]
               ) -> dict[str, Any]:
        """Validate and execute one request; always returns a response.

        Never raises for request-level problems — those become error
        responses. (A bug in a handler itself would propagate, which the
        server turns into a disconnect rather than masking it.)
        """
        request_id = doc.get("id") if isinstance(doc.get("id"), int) else None
        try:
            contracts.validate_request(doc)
        except ProtocolError as exc:
            return contracts.make_error(request_id, str(exc),
                                        type(exc).__name__)
        kind = doc["kind"]
        rec = obs.RECORDER
        if rec.enabled:
            rec.inc("net.requests", kind=kind)
        try:
            return self._handlers[kind](state, doc)
        except ReproError as exc:
            return contracts.make_error(doc["id"], str(exc),
                                        type(exc).__name__)

    def _session(self, state: ClientState, doc: dict[str, Any]) -> GISSession:
        session = state.sessions.get(doc["session"])
        if session is None:
            raise SessionError(
                f"this connection has no open session {doc['session']!r}"
            )
        return session

    # ------------------------------------------------------------------
    # Handlers (one per request kind)
    # ------------------------------------------------------------------

    def _handle_hello(self, state: ClientState, doc: dict) -> dict:
        return make_response(
            doc["id"],
            server=self.server_name,
            database=self.kernel.database.name,
            protocol=contracts.PROTOCOL_VERSION,
            schemas=self.kernel.database.schema_names(),
        )

    def _handle_open_session(self, state: ClientState, doc: dict) -> dict:
        session = self.kernel.session(
            user=doc.get("user"),
            category=doc.get("category"),
            application=doc.get("application"),
            scale_denominator=doc.get("scale_denominator"),
            time_tag=doc.get("time_tag"),
            auto_refresh=bool(doc.get("auto_refresh", False)),
        )
        state.sessions[session.session_id] = session
        return make_response(doc["id"], session=session.session_id)

    def _handle_close_session(self, state: ClientState, doc: dict) -> dict:
        session = state.sessions.pop(doc["session"], None)
        if session is None:
            # closing twice is legal: the disconnect path may have won
            return make_response(doc["id"], closed=False)
        was_open = not session._closed
        session.shutdown()
        return make_response(doc["id"], closed=was_open)

    def _handle_event(self, state: ClientState, doc: dict) -> dict:
        session = self._session(state, doc)
        op = doc["op"]
        if op == "open_schema":
            window = session.connect(doc["schema"])
            return make_response(doc["id"], window=window.name,
                                 visible=window.visible)
        if op == "select_class":
            window = session.select_class(doc["name"])
            return make_response(doc["id"], window=window.name,
                                 visible=window.visible)
        if op == "select_instance":
            window = session.select_instance(doc["oid"], doc.get("class"))
            return make_response(doc["id"], window=window.name,
                                 visible=window.visible)
        if op == "pick":
            oid = session.pick_on_map(doc["class"], doc["col"], doc["row"])
            return make_response(doc["id"], oid=oid)
        # op == "close_window" (the contract already rejected anything else)
        session.close(doc["window"])
        return make_response(doc["id"], window=doc["window"])

    def _handle_query(self, state: ClientState, doc: dict) -> dict:
        result = self.kernel.query(
            doc["schema"], doc["text"],
            use_cache=bool(doc.get("use_cache", True)),
            read_preference=doc.get("read_preference", "leader"),
            min_lsn=doc.get("min_lsn"),
        )
        report = result.report
        return make_response(
            doc["id"],
            oids=result.oids(),
            count=len(result),
            rows=_jsonable(result.rows) if result.rows is not None else None,
            plan=report.get("plan"),
            cache=report.get("cache"),
        )

    def _handle_render(self, state: ClientState, doc: dict) -> dict:
        session = self._session(state, doc)
        return make_response(doc["id"],
                             text=session.render(doc.get("window")))

    def _handle_scene(self, state: ClientState, doc: dict) -> dict:
        session = self._session(state, doc)
        return make_response(doc["id"], windows=_jsonable(session.scene()))

    def _handle_txn(self, state: ClientState, doc: dict) -> dict:
        """Apply one mutation batch as a single transaction.

        Wire values arrive in each attribute type's JSON encoding (the
        same one the WAL uses) and are decoded against the schema before
        staging. The commit itself is staged-only
        (``wait_durable=False``); the caller — normally the server's
        executor — is responsible for :func:`wait` before answering, so
        concurrent connections' fsyncs collapse into one group barrier.
        """
        session = None
        if doc.get("session") is not None:
            session = self._session(state, doc)
        wait = bool(doc.get("wait_durable", True))
        txn = self.kernel.transaction(session)
        oids: list[str] = []
        try:
            for entry in doc["ops"]:
                op = entry["op"]
                if op == "insert":
                    values = self._decode_values(
                        entry["schema"], entry["class"], entry["values"]
                    )
                    oids.append(txn.insert(
                        entry["schema"], entry["class"], values,
                        oid=entry.get("oid"),
                    ))
                elif op == "update":
                    location = self.kernel.database.locate_object(
                        entry["oid"]
                    )
                    if location is None:
                        # let txn.update raise its canonical error
                        txn.update(entry["oid"], entry["changes"])
                    changes = self._decode_values(
                        location[0], location[1], entry["changes"]
                    )
                    txn.update(entry["oid"], changes)
                else:
                    txn.delete(entry["oid"])
            txn.commit(wait_durable=False)
        except Exception:
            if txn.state.name == "ACTIVE":
                txn.abort()
            raise
        response = make_response(doc["id"], committed=True, oids=oids)
        if wait:
            # hand the barrier wait back to the caller so it can happen
            # off the event loop; see GISServer._process
            response["_wait_durable"] = txn.wait_durable
        return response

    def _decode_values(self, schema_name: str, class_name: str,
                       raw: dict[str, Any]) -> dict[str, Any]:
        schema = self.kernel.database.get_schema_object(schema_name)
        attrs = {
            a.name: a for a in schema.effective_attributes(class_name)
        }
        decoded = {}
        for name, value in raw.items():
            attr = attrs.get(name)
            if value is None or attr is None:
                # unknown attribute: pass through so the transaction
                # layer raises its canonical SchemaError
                decoded[name] = value
            else:
                decoded[name] = attr.type.decode(value)
        return decoded

    def _handle_subscribe(self, state: ClientState, doc: dict) -> dict:
        classes = doc["classes"]
        for name in classes:
            if not isinstance(name, str):
                raise ProtocolError("'subscribe' classes must be strings")
        state.subscriptions.update(classes)
        return make_response(doc["id"],
                             subscribed=sorted(state.subscriptions))

    def _handle_unsubscribe(self, state: ClientState, doc: dict) -> dict:
        classes = doc.get("classes")
        if classes is None:
            state.subscriptions.clear()
        else:
            state.subscriptions.difference_update(classes)
        return make_response(doc["id"],
                             subscribed=sorted(state.subscriptions))

    def _handle_watch(self, state: ClientState, doc: dict) -> dict:
        """Register a live query on one of this connection's sessions.

        The response carries the initial result snapshot; every commit
        that changes the result afterwards arrives as a ``live_update``
        push on this connection only.
        """
        session = self._session(state, doc)
        watch = session.watch(doc["schema"], doc["text"])
        state.watches[watch.watch_id] = watch
        result = watch.result()
        return make_response(
            doc["id"],
            watch=watch.watch_id,
            session=session.session_id,
            oids=result.oids(),
            count=len(result),
            rows=_jsonable(result.rows) if result.rows is not None else None,
        )

    def _handle_unwatch(self, state: ClientState, doc: dict) -> dict:
        watch = state.watches.pop(doc["watch"], None)
        if watch is None:
            # unwatching twice (or after close_session) is legal
            return make_response(doc["id"], released=False)
        was_active = watch.active
        watch.unwatch()
        return make_response(doc["id"], released=was_active)

    def _handle_stats(self, state: ClientState, doc: dict) -> dict:
        return make_response(doc["id"], kernel=_jsonable(self.kernel.stats()))

    def _handle_ping(self, state: ClientState, doc: dict) -> dict:
        return make_response(doc["id"], pong=True)

    # ------------------------------------------------------------------
    # Replication: serve followers over the wire
    # ------------------------------------------------------------------

    #: objects per replication snapshot chunk — keeps every frame well
    #: under the protocol's frame cap even for fat geometries
    SNAPSHOT_CHUNK = 512

    def _handle_repl_snapshot(self, state: ClientState, doc: dict) -> dict:
        """One chunk of a bootstrap snapshot.

        Chunk 0 enables shipping (so the snapshot's LSN is always inside
        the shipper's retention window), takes one consistent cut, and
        caches it on the connection; later chunks page through the cut's
        objects. The cache is dropped after the last chunk — or replaced
        whenever chunk 0 is requested again.
        """
        db = self.kernel.database
        chunk = doc.get("chunk", 0)
        if chunk == 0 or state.repl_snapshot is None:
            db.enable_shipping()
            full = db.replication_snapshot()
            objects = full.pop("objects")
            parts = [
                objects[i:i + self.SNAPSHOT_CHUNK]
                for i in range(0, len(objects), self.SNAPSHOT_CHUNK)
            ] or [[]]
            full["total_objects"] = len(objects)
            state.repl_snapshot = (full, parts)
        header, parts = state.repl_snapshot
        if not 0 <= chunk < len(parts):
            raise ProtocolError(
                f"replication snapshot chunk {chunk} out of range "
                f"(snapshot has {len(parts)} chunk(s))"
            )
        snapshot = dict(header) if chunk == 0 else {}
        snapshot["objects"] = parts[chunk]
        if chunk == len(parts) - 1:
            state.repl_snapshot = None
        return make_response(
            doc["id"],
            snapshot=snapshot,
            chunk=chunk,
            chunks=len(parts),
            total_objects=header["total_objects"],
            lsn=header["lsn"],
        )

    def _handle_repl_poll(self, state: ClientState, doc: dict) -> dict:
        shipper = self.kernel.database.enable_shipping()
        result = shipper.poll(doc["cursor"],
                              max_batches=doc.get("max_batches", 64))
        return make_response(doc["id"], **result)

    def _handle_repl_status(self, state: ClientState, doc: dict) -> dict:
        return make_response(
            doc["id"],
            lsn=self.kernel.database.replication_lsn,
            status=_jsonable(self.kernel.replication_status()),
        )

    # ------------------------------------------------------------------
    # Push fan-out
    # ------------------------------------------------------------------

    def pushes_for(self, state: ClientState, event) -> list[dict[str, Any]]:
        """The push frames a committed mutation owes this connection.

        A connection hears about a mutation through either channel:

        * an explicit class subscription (``subscribe``), or
        * a session it holds whose dispatcher is *interested* — the same
          ``auto_refresh`` + open-window test the kernel's in-process
          fan-out uses, so remote clients see exactly the refreshes a
          local screen would.
        """
        touched = event.payload.get("class")
        reasons = []
        if (ALL_CLASSES in state.subscriptions
                or touched in state.subscriptions):
            reasons.append("subscription")
        interested = [
            sid for sid, session in state.sessions.items()
            if not session._closed
            and session.dispatcher.auto_refresh
            and session.dispatcher.interested_in(event)
        ]
        if interested:
            reasons.append("interest")
        if not reasons:
            return []
        return [contracts.make_push(
            "mutation",
            kind=event.kind.value,
            **{"class": touched},
            oid=event.subject,
            session=event.session_id,
            sessions=interested,
            reason=reasons[0],
        )]

    def live_pushes_for(self, state: ClientState,
                        update) -> list[dict[str, Any]]:
        """The ``live_update`` push frames one result change owes this
        connection.

        Routing is by watch id: only the connection that registered the
        watch hears about it, and (because the manager only notifies
        when content changed) only when its result actually changed.
        """
        watch = state.watches.get(update.watch_id)
        if watch is None or not watch.active:
            return []
        result = update.result
        return [contracts.make_push(
            "live_update",
            watch=update.watch_id,
            session=update.session_id,
            schema=update.schema_name,
            reason=update.reason,
            oids=result.oids(),
            count=len(result),
            rows=_jsonable(result.rows) if result.rows is not None else None,
            ts=update.commit_ts,
        )]
