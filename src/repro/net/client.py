"""A small synchronous client for the kernel daemon.

One :class:`GISClient` is one connection; it speaks the framed protocol
of :mod:`repro.net.protocol` over a blocking socket and exposes one
method per request kind. Responses are correlated by request id;
unsolicited **push** frames (mutation notifications) arriving while a
response is awaited are buffered on :attr:`pushes` and can also be
collected explicitly with :meth:`poll_pushes`.

The client is deliberately thread-unaware: one thread per client. The
benchmark opens hundreds of them, each from its own worker thread.

Reconnect policy: with ``reconnect=N`` the client survives a dropped
connection by redialing (exponential backoff) up to N times per
request — but it only ever *resends* requests whose kinds are
idempotent (:data:`IDEMPOTENT_KINDS`): reads, liveness, replication
pulls. A ``txn`` is never resent — the server may have committed it
before the cut, and a blind retry would double-apply; callers see the
transport error and decide. Connection-scoped state (sessions,
subscriptions, an in-flight snapshot) dies with the old socket: the
default session is cleared and must be reopened.
"""

from __future__ import annotations

import itertools
import socket
import time
from typing import Any

from ..errors import NetClientError, NetError, ProtocolError
from .protocol import FrameDecoder, encode_frame

#: request kinds that are safe to resend after a reconnect — they read
#: or re-assert state, so a duplicate delivery is indistinguishable
#: from a single one
IDEMPOTENT_KINDS = frozenset({
    "hello", "ping", "stats", "query",
    "repl_poll", "repl_snapshot", "repl_status",
    "subscribe", "unsubscribe",
})


class GISClient:
    """Synchronous connection to a :class:`~repro.net.server.GISServer`."""

    def __init__(self, host: str, port: int, timeout: float = 30.0,
                 reconnect: int = 0, reconnect_backoff: float = 0.05):
        self._host = host
        self._port = port
        self._timeout = timeout
        #: max redial attempts per request (0 = fail fast)
        self.reconnect = reconnect
        self.reconnect_backoff = reconnect_backoff
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._decoder = FrameDecoder()
        self._ids = itertools.count(1)
        self._inbox: list[dict[str, Any]] = []
        #: push frames received so far (drained by :meth:`pop_pushes`)
        self.pushes: list[dict[str, Any]] = []
        self._closed = False
        #: count of successful redials (observability for tests/benches)
        self.reconnects = 0
        #: default session id, set by the first :meth:`open_session`
        self.session: str | None = None

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def request(self, kind: str, **fields: Any) -> dict[str, Any]:
        """Send one request and block until its response arrives.

        Raises :class:`NetClientError` for an ``ok: false`` response and
        :class:`ProtocolError`/:class:`NetError` for transport trouble.
        Transport failures on idempotent kinds redial and resend, up to
        :attr:`reconnect` times (see the module docstring).
        """
        if self._closed:
            raise NetError("client is closed")
        attempts = 0
        while True:
            try:
                return self._request_once(kind, fields)
            except (NetError, OSError) as exc:
                if isinstance(exc, (NetClientError, ProtocolError)):
                    raise
                if kind not in IDEMPOTENT_KINDS \
                        or attempts >= self.reconnect or self._closed:
                    raise
                attempts += 1
                self._redial(attempts)

    def _request_once(self, kind: str, fields: dict[str, Any]
                      ) -> dict[str, Any]:
        request_id = next(self._ids)
        doc = {"id": request_id, "kind": kind}
        doc.update({k: v for k, v in fields.items() if v is not None})
        self._sock.sendall(encode_frame(doc))
        while True:
            frame = self._next_frame()
            if "push" in frame:
                self.pushes.append(frame)
                continue
            if frame.get("id") == request_id:
                if frame.get("ok"):
                    return frame
                raise NetClientError(
                    frame.get("error", "request failed"),
                    code=frame.get("code"),
                )
            if frame.get("id") is None and not frame.get("ok", True):
                # connection-level error (protocol violation): the
                # server hangs up after this frame
                raise ProtocolError(
                    frame.get("error", "protocol violation")
                )
            self._inbox.append(frame)   # response to someone else's id?

    def _redial(self, attempt: int) -> None:
        """Exponential-backoff reconnect; connection state starts over."""
        time.sleep(self.reconnect_backoff * (2 ** (attempt - 1)))
        try:
            self._sock.close()
        except OSError:
            pass
        self._sock = socket.create_connection(
            (self._host, self._port), timeout=self._timeout
        )
        self._decoder = FrameDecoder()
        self._inbox.clear()
        # sessions are per-connection server state; the old ones are
        # being torn down server-side right now
        self.session = None
        self.reconnects += 1

    def _next_frame(self) -> dict[str, Any]:
        if self._inbox:
            return self._inbox.pop(0)
        while True:
            frames = self._decoder.feed(self._recv())
            if frames:
                self._inbox.extend(frames[1:])
                return frames[0]

    def _recv(self) -> bytes:
        try:
            data = self._sock.recv(65536)
        except socket.timeout as exc:
            raise NetError("timed out waiting for the server") from exc
        if not data:
            raise NetError("server closed the connection")
        return data

    def poll_pushes(self, timeout: float = 0.1) -> list[dict[str, Any]]:
        """Collect pushes for up to ``timeout`` seconds, then return all
        buffered ones (also clears :attr:`pushes`)."""
        old = self._sock.gettimeout()
        self._sock.settimeout(timeout)
        try:
            while True:
                frames = self._decoder.feed(self._sock.recv(65536))
                for frame in frames:
                    if "push" in frame:
                        self.pushes.append(frame)
                    else:
                        self._inbox.append(frame)
        except (socket.timeout, OSError):
            pass
        finally:
            self._sock.settimeout(old)
        return self.pop_pushes()

    def pop_pushes(self) -> list[dict[str, Any]]:
        pushes, self.pushes = self.pushes, []
        return pushes

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.close()
            except OSError:
                pass

    def __enter__(self) -> "GISClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # One convenience method per request kind
    # ------------------------------------------------------------------

    def hello(self) -> dict[str, Any]:
        return self.request("hello")

    def open_session(self, user: str | None = None,
                     category: str | None = None,
                     application: str | None = None,
                     scale_denominator: float | None = None,
                     time_tag: str | None = None,
                     auto_refresh: bool = False) -> str:
        response = self.request(
            "open_session", user=user, category=category,
            application=application, scale_denominator=scale_denominator,
            time_tag=time_tag,
            auto_refresh=auto_refresh or None,
        )
        session = response["session"]
        if self.session is None:
            self.session = session
        return session

    def close_session(self, session: str | None = None) -> bool:
        session = session or self.session
        response = self.request("close_session", session=session)
        if session == self.session:
            self.session = None
        return response["closed"]

    def _sid(self, session: str | None) -> str:
        sid = session or self.session
        if sid is None:
            raise NetError("no session open; call open_session() first")
        return sid

    def open_schema(self, schema: str,
                    session: str | None = None) -> dict[str, Any]:
        return self.request("event", session=self._sid(session),
                            op="open_schema", schema=schema)

    def select_class(self, name: str,
                     session: str | None = None) -> dict[str, Any]:
        return self.request("event", session=self._sid(session),
                            op="select_class", name=name)

    def select_instance(self, oid: str, class_name: str | None = None,
                        session: str | None = None) -> dict[str, Any]:
        return self.request("event", session=self._sid(session),
                            op="select_instance", oid=oid,
                            **{"class": class_name})

    def pick(self, class_name: str, col: int, row: int,
             session: str | None = None) -> str | None:
        return self.request("event", session=self._sid(session), op="pick",
                            col=col, row=row,
                            **{"class": class_name}).get("oid")

    def close_window(self, window: str,
                     session: str | None = None) -> dict[str, Any]:
        return self.request("event", session=self._sid(session),
                            op="close_window", window=window)

    def query(self, schema: str, text: str, *, use_cache: bool = True,
              read_preference: str | None = None,
              min_lsn: int | None = None) -> dict[str, Any]:
        return self.request("query", schema=schema, text=text,
                            use_cache=None if use_cache else False,
                            read_preference=read_preference,
                            min_lsn=min_lsn)

    def render(self, window: str | None = None,
               session: str | None = None) -> str:
        return self.request("render", session=self._sid(session),
                            window=window)["text"]

    def scene(self, session: str | None = None) -> list[dict[str, Any]]:
        return self.request("scene", session=self._sid(session))["windows"]

    def txn(self, ops: list[dict[str, Any]], *, session: str | None = None,
            wait_durable: bool = True) -> dict[str, Any]:
        """Commit a mutation batch; see ``docs/SERVING.md`` for op shapes."""
        return self.request(
            "txn", ops=ops,
            session=session,
            wait_durable=None if wait_durable else False,
        )

    def insert(self, schema: str, class_name: str, values: dict[str, Any],
               **kwargs: Any) -> str:
        """One-op convenience: insert and return the new oid."""
        response = self.txn(
            [{"op": "insert", "schema": schema, "class": class_name,
              "values": values}],
            **kwargs,
        )
        return response["oids"][0]

    def update(self, oid: str, changes: dict[str, Any],
               **kwargs: Any) -> dict[str, Any]:
        return self.txn([{"op": "update", "oid": oid, "changes": changes}],
                        **kwargs)

    def delete(self, oid: str, **kwargs: Any) -> dict[str, Any]:
        return self.txn([{"op": "delete", "oid": oid}], **kwargs)

    def subscribe(self, classes: list[str]) -> list[str]:
        return self.request("subscribe", classes=classes)["subscribed"]

    def unsubscribe(self, classes: list[str] | None = None) -> list[str]:
        return self.request("unsubscribe", classes=classes)["subscribed"]

    def watch(self, schema: str, text: str,
              session: str | None = None) -> dict[str, Any]:
        """Register a live query; the response is the initial snapshot.

        Result changes arrive afterwards as ``live_update`` pushes
        (collect with :meth:`poll_pushes`). Not idempotent: a resend
        after a reconnect would register a second watch, and the old
        one died with the old connection's sessions anyway.
        """
        return self.request("watch", session=self._sid(session),
                            schema=schema, text=text)

    def unwatch(self, watch: str) -> bool:
        return self.request("unwatch", watch=watch)["released"]

    def stats(self) -> dict[str, Any]:
        return self.request("stats")["kernel"]

    def ping(self) -> bool:
        return self.request("ping")["pong"]

    # -- replication pulls (used by RemoteReplicationSource) -----------

    def repl_snapshot(self, chunk: int = 0) -> dict[str, Any]:
        """One chunk of a bootstrap snapshot (chunk 0 starts a new cut)."""
        response = self.request("repl_snapshot", chunk=chunk)
        return {k: response[k] for k in
                ("snapshot", "chunk", "chunks", "total_objects", "lsn")}

    def repl_poll(self, cursor: int,
                  max_batches: int = 64) -> dict[str, Any]:
        response = self.request("repl_poll", cursor=cursor,
                                max_batches=max_batches)
        return {k: response[k] for k in
                ("batches", "lsn", "base_lsn", "snapshot_required")}

    def repl_status(self) -> dict[str, Any]:
        response = self.request("repl_status")
        return {"lsn": response["lsn"], "status": response["status"]}
