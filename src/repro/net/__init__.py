"""The network serving layer: one kernel, many remote clients.

The paper's architecture has one active DBMS driving many interactive
users; this package is the transport that makes "many users" literal
processes on other machines instead of threads in one. It layers:

* :mod:`repro.net.protocol` — length-prefixed, CRC-checked JSON frames;
* :mod:`repro.net.contracts` — typed request/response/push envelopes;
* :mod:`repro.net.router` — requests → kernel/session operations;
* :mod:`repro.net.server` — the asyncio TCP daemon + thread host;
* :mod:`repro.net.client` — a small synchronous client.

See ``docs/SERVING.md`` for the wire specification.
"""

from .client import GISClient
from .contracts import PROTOCOL_VERSION
from .protocol import MAX_FRAME, FrameDecoder, encode_frame
from .router import ClientState, Router
from .server import GISServer, ServerThread

__all__ = [
    "GISClient",
    "GISServer",
    "ServerThread",
    "Router",
    "ClientState",
    "FrameDecoder",
    "encode_frame",
    "MAX_FRAME",
    "PROTOCOL_VERSION",
]
