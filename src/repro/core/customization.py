"""The customization model: what a directive *means*.

A customization directive (paper Figure 3 / Figure 6) declares, for one
context, how each of the three window levels departs from the generic
presentation:

* the **schema** level — display mode and which classes open;
* the **class** level — a control widget and a presentation format;
* the **instance** level — per-attribute display formats, with optional
  source fields (``from``) and behavior bindings (``using``).

These dataclasses are the compiled form shared between the language
front-end (:mod:`repro.lang`), the rule engine
(:mod:`repro.core.rule_engine`) and the builder
(:mod:`repro.core.builder`). They serialize to plain dicts so directives
can live in the database catalog ("customization rules stored in the
database", §3.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..errors import CustomizationError
from ..uilib.presentation import SCHEMA_DISPLAY_MODES
from .context import ContextPattern


@dataclass(frozen=True)
class AttributeCustomization:
    """``display attribute <name> as <format> [from <fields>] [using <binding>]``.

    ``format_name`` of ``"null"`` hides the attribute (§4 line (12)).
    ``sources`` lists the value providers of a composite display — either
    dotted attribute paths or ``method(args)`` call expressions (§4 lines
    (8) and (11)).
    ``using`` names a widget behavior binding like
    ``composed_text.notify()`` (§4 line (9)).
    ``options`` passes extra parameters to the widget factory.
    """

    attr_name: str
    format_name: str = "default"
    sources: tuple[str, ...] = ()
    using: str | None = None
    options: dict[str, Any] = field(default_factory=dict, hash=False, compare=False)

    def describe(self) -> dict[str, Any]:
        return {
            "attr": self.attr_name,
            "format": self.format_name,
            "sources": list(self.sources),
            "using": self.using,
            "options": dict(self.options),
        }

    @classmethod
    def from_description(cls, desc: dict[str, Any]) -> "AttributeCustomization":
        return cls(
            attr_name=desc["attr"],
            format_name=desc.get("format", "default"),
            sources=tuple(desc.get("sources", ())),
            using=desc.get("using"),
            options=dict(desc.get("options", {})),
        )


@dataclass(frozen=True)
class ClassCustomization:
    """``class <name> display [control as W] [presentation as F]`` plus the
    instance-level attribute customizations nested under it.

    ``on_update_display`` is this reproduction's extension toward the
    paper's §5 future work (customization of update requests): when a
    committed update refreshes an open Instance window, the *changed*
    attributes are displayed with this format instead of their usual one,
    making the update visible.
    """

    class_name: str
    control_widget: str | None = None
    presentation_format: str | None = None
    attributes: tuple[AttributeCustomization, ...] = ()
    on_update_display: str | None = None

    def attribute(self, name: str) -> AttributeCustomization | None:
        for attr in self.attributes:
            if attr.attr_name == name:
                return attr
        return None

    def describe(self) -> dict[str, Any]:
        return {
            "class": self.class_name,
            "control": self.control_widget,
            "presentation": self.presentation_format,
            "attributes": [a.describe() for a in self.attributes],
            "on_update": self.on_update_display,
        }

    @classmethod
    def from_description(cls, desc: dict[str, Any]) -> "ClassCustomization":
        return cls(
            class_name=desc["class"],
            control_widget=desc.get("control"),
            presentation_format=desc.get("presentation"),
            attributes=tuple(
                AttributeCustomization.from_description(a)
                for a in desc.get("attributes", ())
            ),
            on_update_display=desc.get("on_update"),
        )


@dataclass(frozen=True)
class CustomizationDirective:
    """One compiled directive: context + schema display + class clauses.

    ``schema_display`` is one of :data:`SCHEMA_DISPLAY_MODES`
    (``"null"`` hides the Schema window and auto-opens the directive's
    classes, as the §4 R1 rule does).
    """

    name: str
    pattern: ContextPattern
    schema_name: str
    schema_display: str = "default"
    classes: tuple[ClassCustomization, ...] = ()

    def __post_init__(self) -> None:
        if self.schema_display not in SCHEMA_DISPLAY_MODES:
            raise CustomizationError(
                f"unknown schema display mode {self.schema_display!r}; "
                f"known: {SCHEMA_DISPLAY_MODES}"
            )
        seen: set[str] = set()
        for clause in self.classes:
            if clause.class_name in seen:
                raise CustomizationError(
                    f"directive {self.name!r} customizes class "
                    f"{clause.class_name!r} twice"
                )
            seen.add(clause.class_name)

    def class_clause(self, class_name: str) -> ClassCustomization | None:
        for clause in self.classes:
            if clause.class_name == class_name:
                return clause
        return None

    def class_names(self) -> list[str]:
        return [c.class_name for c in self.classes]

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "pattern": {
                "user": self.pattern.user,
                "category": self.pattern.category,
                "application": self.pattern.application,
                "scale_range": list(self.pattern.scale_range)
                if self.pattern.scale_range else None,
                "time_tag": self.pattern.time_tag,
            },
            "schema": self.schema_name,
            "schema_display": self.schema_display,
            "classes": [c.describe() for c in self.classes],
        }

    @classmethod
    def from_description(cls, desc: dict[str, Any]) -> "CustomizationDirective":
        pat = desc.get("pattern", {})
        return cls(
            name=desc["name"],
            pattern=ContextPattern(
                user=pat.get("user"),
                category=pat.get("category"),
                application=pat.get("application"),
                scale_range=tuple(pat["scale_range"])
                if pat.get("scale_range") else None,
                time_tag=pat.get("time_tag"),
            ),
            schema_name=desc["schema"],
            schema_display=desc.get("schema_display", "default"),
            classes=tuple(
                ClassCustomization.from_description(c)
                for c in desc.get("classes", ())
            ),
        )


@dataclass
class CustomizationDecision:
    """What the rule engine decided for one database event.

    The builder consumes this; ``rule_name`` feeds the explanation mode
    ("why does my window look like this?").
    """

    kind: str  # "schema" | "class" | "instance"
    rule_name: str
    directive_name: str
    schema_display: str | None = None
    #: classes to auto-open when the schema window is hidden (R1 cascade)
    cascade_classes: tuple[str, ...] = ()
    class_clause: ClassCustomization | None = None

    def describe(self) -> str:
        bits = [f"{self.kind} decision by rule {self.rule_name!r}"]
        if self.schema_display:
            bits.append(f"schema display={self.schema_display}")
        if self.cascade_classes:
            bits.append(f"cascade={list(self.cascade_classes)}")
        if self.class_clause:
            bits.append(f"class={self.class_clause.class_name}")
        return "; ".join(bits)
