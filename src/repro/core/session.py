"""The user-facing session façade.

A :class:`GISSession` ties one interaction context (user, category,
application — §3.3) to a database and the full customization stack
(library, rule engine, builder, dispatcher, screen). It is the public
entry point a downstream application uses::

    session = GISSession(db, user="juliano", application="pole_manager")
    session.connect("phone_net")      # Get_Schema (rule R1 may hide it)
    session.select_class("Pole")      # Get_Class  (rule R2 customizes it)
    session.select_instance(oid)      # Get_Value  (attribute rules fire)
    print(session.render())

The §4 browsing loop ("iterates through browsing (Schema, {Class,
{Instance}}) windows, in this order") maps exactly onto those calls, and
``select_class`` / ``select_instance`` go through the *widget callbacks*
of the open windows, exercising the paper's full
``interaction → interface event → callback → database event → rules``
pipeline rather than shortcutting to the dispatcher.
"""

from __future__ import annotations

from typing import Any

from ..errors import SessionError
from ..geodb.catalog import MetadataCatalog
from ..geodb.database import GeographicDatabase
from ..uilib.library import InterfaceObjectLibrary
from ..uilib.presentation import PresentationRegistry
from ..uilib.rendering import TextRenderer
from ..uilib.widgets import ListWidget, Window
from .context import Context
from .customization import CustomizationDirective
from .dispatcher import Dispatcher, Screen
from .kernel import GISKernel
from .rule_engine import CustomizationEngine


class GISSession:
    """One user's exploratory session against a geographic database.

    Sessions are lightweight: per-user state only (a :class:`Context`, a
    :class:`Screen`, a :class:`Dispatcher`). The heavyweight customization
    stack — interface object library, rule engine, builder — lives in a
    :class:`~repro.core.kernel.GISKernel` shared by every session of a
    server. ``GISSession(db, ...)`` without an explicit ``kernel`` creates
    a private single-session kernel, preserving the historical behavior;
    multi-user embeddings create one kernel and call
    :meth:`GISKernel.session` (or pass ``kernel=``) instead.
    """

    def __init__(
        self,
        database: GeographicDatabase,
        user: str | None = None,
        category: str | None = None,
        application: str | None = None,
        scale_denominator: float | None = None,
        time_tag: str | None = None,
        library: InterfaceObjectLibrary | None = None,
        engine: CustomizationEngine | None = None,
        presentations: PresentationRegistry | None = None,
        catalog: MetadataCatalog | None = None,
        auto_refresh: bool = False,
        kernel: GISKernel | None = None,
        selection_cache: bool = True,
    ):
        self.database = database
        self.context = Context(
            user=user,
            category=category,
            application=application,
            scale_denominator=scale_denominator,
            time_tag=time_tag,
        )
        if kernel is None:
            kernel = GISKernel(
                database, library=library, engine=engine,
                presentations=presentations, catalog=catalog,
                selection_cache=selection_cache,
            )
            self._owns_kernel = True
        else:
            if (library is not None or engine is not None
                    or presentations is not None or catalog is not None):
                raise SessionError(
                    "pass library/engine/presentations/catalog to the "
                    "kernel, not to a session joining one"
                )
            if kernel.database is not database:
                raise SessionError(
                    "session database does not match the kernel's"
                )
            self._owns_kernel = False
        self.kernel = kernel
        self.catalog = kernel.catalog
        self.library = kernel.library
        self.engine = kernel.engine
        self.presentations = kernel.presentations
        self.builder = kernel.builder
        self.screen = Screen()
        self.session_id = kernel._attach(self)
        self.dispatcher = Dispatcher(
            database, self.builder, self.engine, self.screen,
            auto_refresh=auto_refresh,
            session_id=self.session_id,
            managed_refresh=True,
        )
        kernel._session_ready(self)
        self._schema_name: str | None = None
        self.renderer = TextRenderer()
        #: LSN of this session's newest commit (0 = never committed);
        #: replica-routed queries wait for it (read-your-writes).
        self.last_commit_lsn = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def transaction(self):
        """A snapshot-isolated transaction whose commit events carry this
        session's id (see :meth:`GISKernel.transaction`)."""
        if self._closed:
            raise SessionError("session is shut down")
        return self.kernel.transaction(self)

    def _note_commit(self, lsn: int) -> None:
        """Commit hook installed by :meth:`GISKernel.transaction`."""
        self.last_commit_lsn = max(self.last_commit_lsn, lsn)

    # ------------------------------------------------------------------
    # Analysis-mode queries (kernel-cached)
    # ------------------------------------------------------------------

    def query(self, schema_name: str, query, *, use_cache: bool = True,
              read_preference: str = "leader", min_lsn: int | None = None):
        """Run an analysis-mode query through the kernel's result cache.

        ``query`` is query-language text or a
        :class:`~repro.geodb.query.Query`; see :meth:`GISKernel.query`.
        With ``read_preference="replica"`` the session's last commit LSN
        is the default read-your-writes bound, so a session always sees
        its own writes no matter which follower serves the read.
        """
        if self._closed:
            raise SessionError("session is shut down")
        if read_preference == "replica" and min_lsn is None:
            min_lsn = self.last_commit_lsn or None
        return self.kernel.query(schema_name, query, use_cache=use_cache,
                                 read_preference=read_preference,
                                 min_lsn=min_lsn)

    # ------------------------------------------------------------------
    # Live queries (delta-maintained standing results)
    # ------------------------------------------------------------------

    def watch(self, schema_name: str, query, callback=None):
        """Register a standing query kept incrementally correct.

        ``query`` is query-language text or a
        :class:`~repro.geodb.query.Query`. Returns a
        :class:`~repro.core.live_queries.Watch`: ``watch.result()`` is
        the current maintained result, and every commit that actually
        changes the result content appends a
        :class:`~repro.core.live_queries.LiveUpdate` to
        ``watch.updates`` (and invokes ``callback``, when given).
        Commits that leave the content unchanged are silent. The watch
        is released by :meth:`unwatch` or when the session shuts down.
        """
        if self._closed:
            raise SessionError("session is shut down")
        return self.kernel.live.watch(self, schema_name, query,
                                      callback=callback)

    def unwatch(self, watch) -> None:
        """Release a standing query registered with :meth:`watch`."""
        self.kernel.live.unregister(watch)

    # ------------------------------------------------------------------
    # Customization installation
    # ------------------------------------------------------------------

    def install_directive(self, directive: CustomizationDirective,
                          persist: bool | None = None) -> None:
        """Register a compiled customization directive for this database."""
        if persist is None:
            persist = self.catalog is not None
        self.engine.register_directive(directive, persist=persist)

    def install_program(self, source: str, persist: bool | None = None
                        ) -> list[CustomizationDirective]:
        """Compile customization-language source and register the result."""
        from ..lang.compiler import compile_program

        directives = compile_program(
            source, self.database, self.library, self.presentations
        )
        for directive in directives:
            self.install_directive(directive, persist=persist)
        return directives

    # ------------------------------------------------------------------
    # The §4 browsing protocol
    # ------------------------------------------------------------------

    def connect(self, schema_name: str) -> Window:
        """Step 1: "The user first activates the generic interface, giving
        a db schema name as a parameter." Generates ``Get_Schema``."""
        self.database.get_schema_object(schema_name)  # fail fast
        self._schema_name = schema_name
        return self.dispatcher.open_schema(schema_name, self.context)

    def select_class(self, class_name: str) -> Window:
        """Step 2: select a class in the Schema window's class list.

        Goes through the list widget's ``select`` callback, so the full
        interface-event path runs. Requires :meth:`connect` first; when
        the Schema window was hidden by a ``Null`` customization the class
        may already be open — it is then brought forward directly.
        """
        if self._schema_name is None:
            raise SessionError("connect(schema) before selecting a class")
        window_name = f"schema_{self._schema_name}"
        schema_window = self.screen.window(window_name)
        class_list = schema_window.find("classes")
        if not isinstance(class_list, ListWidget):
            raise SessionError("schema window has no class list")
        class_list.select(class_name)
        return self.screen.window(f"classset_{class_name}")

    def select_instance(self, oid: str, class_name: str | None = None
                        ) -> Window:
        """Step 3: select an instance in a Class-set window (control list).

        ``class_name`` defaults to the class encoded in the oid prefix.
        """
        if class_name is None:
            class_name = oid.split("#", 1)[0]
        class_window = self.screen.window(f"classset_{class_name}")
        instance_list = class_window.find("instances")
        if not isinstance(instance_list, ListWidget):
            raise SessionError("class window has no instance list")
        instance_list.select(oid)
        return self.screen.window(f"instance_{oid}")

    def pick_on_map(self, class_name: str, col: int, row: int) -> str | None:
        """Select an instance by clicking the map (graphical area, §4)."""
        class_window = self.screen.window(f"classset_{class_name}")
        area = class_window.find("map")
        if area is None:
            raise SessionError("class window has no map area")
        return area.pick_at(col, row)

    def close(self, window_name: str | None = None) -> None:
        """Close one window — or, with no argument, the whole session.

        ``close()`` is an alias for :meth:`shutdown`: it detaches the
        session (and, for a privately owned kernel, its engine's rule
        manager) from the database bus. Before this alias existed a
        "closed" session's engine kept reacting to *every* sibling
        session's events, silently recording decisions on their behalf.
        """
        if window_name is None:
            self.shutdown()
            return
        self.screen.close(window_name)

    # ------------------------------------------------------------------
    # Output & explanation
    # ------------------------------------------------------------------

    def render(self, window_name: str | None = None) -> str:
        """Render one window (or the whole screen) as text."""
        if window_name is not None:
            return self.renderer.render(self.screen.window(window_name))
        visible = [w for w in self.screen.windows() if w.visible]
        return "\n\n".join(self.renderer.render(w) for w in visible)

    def scene(self) -> list[dict[str, Any]]:
        """Structured description of every open window (tests use this)."""
        return [w.describe() for w in self.screen.windows()]

    def explain_window(self, window_name: str) -> str:
        """Explanation mode (§2.2): why a window looks the way it does."""
        window = self.screen.window(window_name)
        event_id = window.get_property("event_id")
        if event_id is None:
            return "window was built outside an event context"
        return self.engine.explain(event_id)

    def stats(self) -> dict[str, Any]:
        return {
            "context": self.context.describe(),
            "session_id": self.session_id,
            "dispatcher": self.dispatcher.stats(),
            "engine": self.engine.stats(),
            "database": self.database.name,
            "events_published": self.database.bus.published_count,
            "buffer": self.database.stats_buffer(),
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def shutdown(self) -> None:
        """End the session: close windows, detach from the kernel.

        A session created without an explicit kernel owns a private one
        and shuts it down too — detaching its rule manager from the
        database bus, so the engine stops recording decisions for events
        raised by *other* sessions on the same database. A session that
        *joined* a kernel only detaches itself; the kernel (and shared
        engine) stay up for its siblings. Idempotent; also runs via the
        context manager protocol::

            with GISSession(db, user="u", application="a") as session:
                ...
        """
        if self._closed:
            return
        # Flip the flag first: concurrent mutation fan-out (kernel or
        # server) checks it, so no refresh can reopen a window — and
        # thereby re-register interest — while we are tearing down.
        self._closed = True
        for name in list(self.screen.names()):
            self.screen.close(name)
        self.dispatcher._origins.clear()
        self.kernel._detach(self)
        if self._owns_kernel:
            self.kernel.shutdown()

    def __enter__(self) -> "GISSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()
