"""The dispatcher: the generic interface control module.

§3.5: "Each user action is captured by the interface where it is processed
by a dispatcher, which is responsible for creating and maintaining the
hierarchy of (Schema, Class set, Instance) windows. ... Unlike these
[conventional] systems, our dispatcher allows the dynamic active
customization of the interface windows. The dispatcher recognizes
different types of database interaction requests (schema and extension
manipulations), and generates the primitive events captured by the active
database mechanism."

The two §3.5 claims this module realizes:

1. *single generic model* — one code path builds every window kind through
   the generic interface builder (conventional interfaces "have a specific
   code to generate each kind of window"; that conventional design is
   implemented as the benchmark baseline in
   :mod:`repro.baselines.hardwired`);
2. *transparent customization* — the dispatcher never inspects
   customization state; it merely forwards the rule engine's decision (or
   ``None``) to the builder. "All the modules in the interface have
   exactly the same behavior, with or without customization."

As an extension beyond the paper (its §5 limitation), the dispatcher can
also **refresh** open windows when committed updates touch the displayed
class — the view-refresh behavior of Diaz et al. the paper cites as [3].
"""

from __future__ import annotations

from typing import Any

from .. import obs
from ..active.event_bus import Event, EventKind, MUTATION_KINDS
from ..errors import DispatchError
from ..geodb.database import GeographicDatabase
from ..uilib.widgets import ListWidget, Menu, Window
from .builder import GenericInterfaceBuilder
from .context import Context
from .rule_engine import CustomizationEngine


class Screen:
    """The set of currently displayed windows, in opening order."""

    def __init__(self) -> None:
        self._windows: dict[str, Window] = {}

    def show(self, window: Window) -> Window:
        """Display (or replace) a window under its name."""
        self._windows[window.name] = window
        rec = obs.RECORDER
        if rec.enabled:
            rec.gauge("screen.open_windows", len(self._windows))
        return window

    def close(self, name: str) -> Window:
        if name not in self._windows:
            raise DispatchError(f"no open window named {name!r}")
        window = self._windows.pop(name)
        window.fire("close")
        rec = obs.RECORDER
        if rec.enabled:
            rec.gauge("screen.open_windows", len(self._windows))
        return window

    def window(self, name: str) -> Window:
        if name not in self._windows:
            raise DispatchError(f"no open window named {name!r}")
        return self._windows[name]

    def find_by_kind(self, kind: str) -> list[Window]:
        return [
            w for w in self._windows.values()
            if w.get_property("window_kind") == kind
        ]

    def names(self) -> list[str]:
        return list(self._windows)

    def windows(self) -> list[Window]:
        return list(self._windows.values())

    def __len__(self) -> int:
        return len(self._windows)

    def __contains__(self, name: str) -> bool:
        return name in self._windows


class Dispatcher:
    """Routes user interactions to database events and windows to screen."""

    def __init__(self, database: GeographicDatabase,
                 builder: GenericInterfaceBuilder,
                 engine: CustomizationEngine | None = None,
                 screen: Screen | None = None,
                 auto_refresh: bool = False,
                 session_id: str | None = None,
                 managed_refresh: bool = False):
        self.database = database
        self.builder = builder
        self.engine = engine
        # `is None` rather than `or`: an empty Screen is falsy (len == 0).
        self.screen = screen if screen is not None else Screen()
        #: window name -> (kind, open-arguments) for refresh and reopen
        self._origins: dict[str, tuple[str, tuple, Context | None]] = {}
        self.interactions = 0
        self.auto_refresh = auto_refresh
        #: identity stamped on every primitive event this dispatcher raises
        self.session_id = session_id
        # A kernel-managed dispatcher does not subscribe itself: the
        # kernel holds the single bus subscription and fans mutations out
        # only to the sessions displaying the touched class.
        if auto_refresh and not managed_refresh:
            self.database.bus.subscribe(self._on_mutation, kinds=MUTATION_KINDS)

    # ------------------------------------------------------------------
    # The three interaction requests
    # ------------------------------------------------------------------

    def open_schema(self, schema_name: str,
                    context: Context | None = None) -> Window:
        """User asks to browse a schema → ``Get_Schema`` event → window."""
        rec = obs.RECORDER
        if not rec.enabled:
            return self._do_open_schema(schema_name, context)
        rec.inc("dispatcher.interactions", kind="schema")
        with rec.timed("dispatch.seconds", kind="schema"), \
                rec.span("dispatch.open_schema", schema=schema_name,
                         **self._span_tags()):
            return self._do_open_schema(schema_name, context)

    def _do_open_schema(self, schema_name: str,
                        context: Context | None = None) -> Window:
        self.interactions += 1
        schema_info = self.database.get_schema(
            schema_name, context=context, session_id=self.session_id
        )
        event = self.database.bus.last_event
        decision = (
            self.engine.schema_decision(event.event_id,
                                        session_id=self.session_id)
            if self.engine and event else None
        )
        window = self.builder.build_schema_window(schema_info, decision)
        window.set_property("context", context)
        window.set_property("event_id", event.event_id if event else None)
        self._wire_schema_window(window, schema_name, context)
        self.screen.show(window)
        self._origins[window.name] = ("schema", (schema_name,), context)
        # R1 cascade (§4): a Null schema display "originates a Get_Class
        # event for the classes defined in the customization directive".
        if decision is not None:
            for class_name in decision.cascade_classes:
                self.open_class(schema_name, class_name, context)
        return window

    def open_class(self, schema_name: str, class_name: str,
                   context: Context | None = None) -> Window:
        """User selects a class → ``Get_Class`` event → Class-set window."""
        rec = obs.RECORDER
        if not rec.enabled:
            return self._do_open_class(schema_name, class_name, context)
        rec.inc("dispatcher.interactions", kind="class")
        with rec.timed("dispatch.seconds", kind="class"), \
                rec.span("dispatch.open_class", schema=schema_name,
                         cls=class_name, **self._span_tags()):
            return self._do_open_class(schema_name, class_name, context)

    def _do_open_class(self, schema_name: str, class_name: str,
                       context: Context | None = None) -> Window:
        self.interactions += 1
        geo_class, objects = self.database.get_class(
            schema_name, class_name, context=context,
            session_id=self.session_id,
        )
        event = self.database.bus.last_event
        decision = (
            self.engine.class_decision(event.event_id,
                                       session_id=self.session_id)
            if self.engine and event else None
        )
        schema = self.database.get_schema_object(schema_name)
        attributes = schema.effective_attributes(class_name)
        scale = None
        if context is not None and context.scale_denominator:
            from ..spatial.scale import MapScale

            scale = MapScale(context.scale_denominator)
        window = self.builder.build_class_window(
            geo_class, attributes, objects, decision, scale=scale
        )
        window.set_property("context", context)
        window.set_property("event_id", event.event_id if event else None)
        window.set_property("schema_name", schema_name)
        self._wire_class_window(window, schema_name, class_name, context)
        self.screen.show(window)
        self._origins[window.name] = (
            "class", (schema_name, class_name), context
        )
        return window

    def open_instance(self, oid: str, context: Context | None = None,
                      attr_overrides: dict | None = None) -> Window:
        """User selects an instance → ``Get_Value`` event → Instance window.

        ``attr_overrides`` (attr name → :class:`AttributeCustomization`)
        layers on top of whatever the rules decide; the update-refresh
        extension uses it to re-present just-changed attributes.
        """
        rec = obs.RECORDER
        if not rec.enabled:
            return self._do_open_instance(oid, context, attr_overrides)
        rec.inc("dispatcher.interactions", kind="instance")
        with rec.timed("dispatch.seconds", kind="instance"), \
                rec.span("dispatch.open_instance", oid=oid,
                         **self._span_tags()):
            return self._do_open_instance(oid, context, attr_overrides)

    def _do_open_instance(self, oid: str, context: Context | None = None,
                          attr_overrides: dict | None = None) -> Window:
        self.interactions += 1
        obj = self.database.get_value(
            oid, context=context, session_id=self.session_id
        )
        event = self.database.bus.last_event
        attr_decisions = (
            self.engine.attribute_decisions(event.event_id,
                                            session_id=self.session_id)
            if self.engine and event else {}
        )
        if attr_overrides:
            attr_decisions = {**attr_decisions, **attr_overrides}
        schema_name, class_name = self.database.locate_object(oid)
        schema = self.database.get_schema_object(schema_name)
        geo_class = schema.get_class(class_name)
        attributes = schema.effective_attributes(class_name)
        window = self.builder.build_instance_window(
            obj, geo_class, attributes, attr_decisions,
            database=self.database,
        )
        window.set_property("context", context)
        window.set_property("event_id", event.event_id if event else None)
        self._wire_instance_window(window)
        self.screen.show(window)
        self._origins[window.name] = ("instance", (oid,), context)
        return window

    # ------------------------------------------------------------------
    # Callback wiring: interface events -> interaction requests
    # ------------------------------------------------------------------

    def _wire_schema_window(self, window: Window, schema_name: str,
                            context: Context | None) -> None:
        class_list = window.find("classes")
        if isinstance(class_list, ListWidget):
            class_list.on(
                "select",
                lambda ev: self.open_class(
                    schema_name, ev.data["key"], context
                ),
            )
        self._wire_close(window, "schema_menu", "close")

    def _wire_class_window(self, window: Window, schema_name: str,
                           class_name: str, context: Context | None) -> None:
        instance_list = window.find("instances")
        if isinstance(instance_list, ListWidget):
            instance_list.on(
                "select",
                lambda ev: self.open_instance(ev.data["key"], context),
            )
        area = window.find("map")
        if area is not None:
            area.on(
                "pick",
                lambda ev: self.open_instance(ev.data["oid"], context),
            )
            self._wire_map_operations(window, area)
        self._wire_close(window, "operations", "close")

    def _wire_map_operations(self, window: Window, area) -> None:
        """Bind the operations menu's Zoom/Pan items to the map viewport.

        Zoom halves the visible ground extent about its center; Pan shifts
        a quarter-window east (repeatable). Both fire the drawing area's
        own ``zoom``/``pan`` events so customization callbacks can stack.
        """
        menu = window.find("operations")
        if not isinstance(menu, Menu):
            return

        def do_zoom(ev) -> None:
            viewport = area.viewport.zoomed(2.0)
            area.set_viewport(viewport)
            area.fire("zoom", extent=viewport.extent.as_tuple())

        def do_pan(ev) -> None:
            viewport = area.viewport.panned(0.25, 0.0)
            area.set_viewport(viewport)
            area.fire("pan", extent=viewport.extent.as_tuple())

        try:
            menu.child("zoom").on("activate", do_zoom)
            menu.child("pan").on("activate", do_pan)
        except Exception:
            return  # a customized menu without these items is legal

    def _wire_instance_window(self, window: Window) -> None:
        pass  # instance windows currently close through the screen API

    def _wire_close(self, window: Window, menu_name: str,
                    item_name: str) -> None:
        menu = window.find(menu_name)
        if isinstance(menu, Menu):
            try:
                item = menu.child(item_name)
            except Exception:
                return
            item.on("activate", lambda ev: self.screen.close(window.name))

    def _span_tags(self) -> dict[str, str]:
        """Extra span tags; tags the session when this dispatcher has one."""
        if self.session_id is None:
            return {}
        return {"session": self.session_id}

    # ------------------------------------------------------------------
    # Extension: refresh on committed updates (Diaz et al. [3] behavior)
    # ------------------------------------------------------------------

    def interested_in(self, event: Event) -> bool:
        """Whether a committed mutation touches any window on this screen.

        The kernel's fan-out uses this to refresh only the sessions
        displaying the touched class or instance, instead of waking every
        dispatcher for every mutation.
        """
        touched_class = event.payload.get("class")
        for name, (kind, args, _context) in self._origins.items():
            if name not in self.screen:
                continue
            if kind == "class" and args[1] == touched_class:
                return True
            if kind == "instance" and args[0] == event.subject:
                return True
        return False

    def _on_mutation(self, event: Event) -> None:
        if event.payload.get("phase") != "commit" or not self.auto_refresh:
            return
        touched_class = event.payload.get("class")
        for name, (kind, args, context) in list(self._origins.items()):
            if name not in self.screen:
                self._origins.pop(name, None)
                continue
            if kind == "class" and args[1] == touched_class:
                self.open_class(args[0], args[1], context)
            elif kind == "instance" and args[0] == event.subject:
                if event.kind is EventKind.DELETE:
                    self.screen.close(name)
                    self._origins.pop(name, None)
                else:
                    overrides = self._update_overrides(event, context)
                    self.open_instance(args[0], context,
                                       attr_overrides=overrides)

    def _update_overrides(self, event: Event,
                          context: Context | None) -> dict | None:
        """`on update display as F`: changed attributes re-present as F."""
        if self.engine is None:
            return None
        class_name = event.payload.get("class")
        clause = self.engine.active_class_clause(class_name, context)
        if clause is None or clause.on_update_display is None:
            return None
        from .customization import AttributeCustomization

        changed = event.payload.get("values") or {}
        return {
            name: AttributeCustomization(name, clause.on_update_display)
            for name in changed
        }

    # ------------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        return {
            "interactions": self.interactions,
            "open_windows": len(self.screen),
            "auto_refresh": self.auto_refresh,
            "session_id": self.session_id,
        }
