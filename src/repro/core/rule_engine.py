"""The customization rule engine.

This is the paper's §3.3 mechanism: each registered
:class:`~repro.core.customization.CustomizationDirective` is expanded into
ECA rules on the generic rule manager —

* a **schema presentation rule** triggered by ``Get_Schema`` (the §4 rule
  R1), which decides the Schema window's display mode and, when the mode
  is ``null``, cascades ``Get_Class`` for the directive's classes;
* one **class presentation rule** per class clause, triggered by
  ``Get_Class`` (the §4 rule R2);
* one **instance presentation rule** per customized attribute, triggered
  by ``Get_Value`` (§3.4: "The attributes in the instances clause are
  associated with instance presentation rules").

Rule *conditions* check the event's interaction context against the
directive's pattern — "Condition does not check a database state, but a
user's working environment" — and rule *priorities* are the pattern's
specificity, so "only one rule is selected for execution — the one which
has the highest priority ... the most specific rule". Rules are
partitioned into per-target groups (one group per interface object being
customized) running under the ``HIGHEST_PRIORITY`` selection policy;
equal-specificity conflicts raise, as the paper's execution model admits
no ambiguity.

Decisions are collected per event for the dispatcher/builder to consume,
and every decision is traceable to its rule (explanation mode).
"""

from __future__ import annotations

from typing import Any

from .. import obs
from ..active.event_bus import EXPLORATORY_KINDS, Event, EventBus, EventKind
from ..active.rule_manager import Rule, RuleManager, SelectionPolicy
from ..errors import CustomizationError, RuleError
from ..geodb.catalog import KIND_CUSTOMIZATION, MetadataCatalog
from .context import Context
from .customization import (
    AttributeCustomization,
    ClassCustomization,
    CustomizationDecision,
    CustomizationDirective,
)

GROUP_PREFIX = "customization"


class CustomizationEngine:
    """Expands directives into rules and collects per-event decisions.

    One engine may serve many sessions at once (the shared-kernel
    architecture): decisions are recorded under the originating event's
    ``session_id``, and :meth:`decisions_for` can be asked to return only
    the decisions belonging to one session.

    With ``selection_cache`` (the default, only effective when the engine
    builds its own manager), rule selection for the exploratory ``Get_*``
    events is memoized on ``(event kind, subject, schema/class payload,
    context)``. Customization rule conditions depend on exactly those
    inputs (§3.3: "Condition does not check a database state, but a
    user's working environment"), so the memoization is exact; a
    generation counter bumped by every directive install/remove/toggle
    keeps cached selections from ever going stale. Callers that define
    *extra* rules directly on ``self.manager`` must keep their conditions
    within those inputs (or build the engine with
    ``selection_cache=False``).
    """

    def __init__(self, bus: EventBus, manager: RuleManager | None = None,
                 catalog: MetadataCatalog | None = None,
                 selection_cache: bool = True):
        self.bus = bus
        if manager is None:
            manager = RuleManager(
                bus,
                cache_key=self._selection_cache_key if selection_cache
                else None,
            )
        self.manager = manager
        self.catalog = catalog
        self._directives: dict[str, CustomizationDirective] = {}
        #: event_id -> decisions recorded while handling that event
        self._decisions: dict[int, list[CustomizationDecision]] = {}
        #: event_id -> session that raised the event (parallel ring)
        self._decision_sessions: dict[int, str | None] = {}
        self._decision_window = 64  # retained events

    @staticmethod
    def _selection_cache_key(event: Event):
        """Cache key for exploratory events, or None (uncacheable).

        Everything a customization rule's condition reads is in the key:
        kind, subject, the payload's schema/class, and the (hashable,
        frozen) interaction context. ``session_id`` is deliberately NOT
        part of the key — two sessions in the same context share cached
        selections, which is the point of the shared kernel.
        """
        if event.kind not in EXPLORATORY_KINDS:
            return None
        context = event.context
        if context is not None and not isinstance(context, Context):
            return None  # opaque contexts: fall back to the full scan
        return (
            event.kind,
            event.subject,
            event.payload.get("schema"),
            event.payload.get("class"),
            context,
        )

    # ------------------------------------------------------------------
    # Directive registration (the paper's "compiler output" entry point)
    # ------------------------------------------------------------------

    def register_directive(self, directive: CustomizationDirective,
                           persist: bool = True) -> list[Rule]:
        """Expand a directive into rules; returns the created rules.

        Registration is transactional: if any rule conflicts, previously
        created rules of this directive are rolled back.
        """
        if directive.name in self._directives:
            raise CustomizationError(
                f"directive {directive.name!r} is already registered"
            )
        created: list[Rule] = []
        try:
            created.append(self._schema_rule(directive))
            for clause in directive.classes:
                created.append(self._class_rule(directive, clause))
                for attr in clause.attributes:
                    created.append(self._instance_rule(directive, clause, attr))
        except RuleError:
            for rule in created:
                self.manager.remove_rule(rule.name)
            raise
        self._directives[directive.name] = directive
        rec = obs.RECORDER
        if rec.enabled:
            rec.inc("customization.directives_registered")
            rec.gauge("customization.rules_installed",
                      len(self.manager.rules()))
        if persist and self.catalog is not None:
            self.catalog.put(KIND_CUSTOMIZATION, directive.name,
                             directive.describe())
        return created

    def unregister_directive(self, name: str) -> None:
        if name not in self._directives:
            raise CustomizationError(f"no directive named {name!r}")
        prefix = f"{name}::"
        for rule in list(self.manager.rules()):
            if rule.name.startswith(prefix):
                self.manager.remove_rule(rule.name)
        del self._directives[name]
        if self.catalog is not None and self.catalog.has(KIND_CUSTOMIZATION, name):
            self.catalog.delete(KIND_CUSTOMIZATION, name)

    def directives(self) -> list[CustomizationDirective]:
        return list(self._directives.values())

    def set_directive_enabled(self, name: str, enabled: bool) -> int:
        """Enable/disable every rule of a directive without removing it.

        Lets an application designer stage or A/B a customization; returns
        the number of rules toggled.
        """
        if name not in self._directives:
            raise CustomizationError(f"no directive named {name!r}")
        prefix = f"{name}::"
        toggled = 0
        for rule in self.manager.rules():
            if rule.name.startswith(prefix):
                self.manager.set_enabled(rule.name, enabled)
                toggled += 1
        return toggled

    def load_from_catalog(self) -> int:
        """Re-register every directive persisted in the database."""
        if self.catalog is None:
            raise CustomizationError("engine was built without a catalog")
        loaded = 0
        for name, desc in self.catalog.documents(KIND_CUSTOMIZATION):
            if name in self._directives:
                continue
            self.register_directive(
                CustomizationDirective.from_description(desc), persist=False
            )
            loaded += 1
        return loaded

    # ------------------------------------------------------------------
    # Rule generation
    # ------------------------------------------------------------------

    def _group(self, level: str, target: str) -> str:
        group = f"{GROUP_PREFIX}::{level}::{target}"
        self.manager.set_policy(group, SelectionPolicy.HIGHEST_PRIORITY)
        return group

    def _condition(self, directive: CustomizationDirective, subject: str,
                   payload_class: str | None = None):
        pattern = directive.pattern
        schema_name = directive.schema_name

        def condition(event: Event) -> bool:
            if payload_class is None:
                if event.subject != subject:
                    return False
            else:
                if event.payload.get("class") != payload_class:
                    return False
            # class/instance events carry their schema: a directive only
            # customizes its own schema (same-named classes elsewhere in a
            # multi-schema database must not cross-fire)
            event_schema = event.payload.get("schema")
            if event_schema is not None and event_schema != schema_name:
                return False
            context = event.context
            if context is not None and not isinstance(context, Context):
                return False
            return pattern.matches(context)

        return condition

    def _schema_rule(self, directive: CustomizationDirective) -> Rule:
        cascade = (
            tuple(directive.class_names())
            if directive.schema_display == "null"
            else ()
        )

        def action(event: Event, _manager) -> CustomizationDecision:
            decision = CustomizationDecision(
                kind="schema",
                rule_name=f"{directive.name}::schema",
                directive_name=directive.name,
                schema_display=directive.schema_display,
                cascade_classes=cascade,
            )
            self._record(event, decision)
            return decision

        return self.manager.define(
            f"{directive.name}::schema",
            events=[EventKind.GET_SCHEMA],
            condition=self._condition(directive, directive.schema_name),
            action=action,
            priority=directive.pattern.specificity(),
            group=self._group("schema", directive.schema_name),
            doc=(
                f"On Get_Schema If {directive.pattern.describe()} Then "
                f"Build Window(Schema, {directive.schema_name}, "
                f"{directive.schema_display})"
                + (f"; Get_Class({', '.join(cascade)})" if cascade else "")
            ),
        )

    def _class_rule(self, directive: CustomizationDirective,
                    clause: ClassCustomization) -> Rule:
        def action(event: Event, _manager) -> CustomizationDecision:
            decision = CustomizationDecision(
                kind="class",
                rule_name=f"{directive.name}::class::{clause.class_name}",
                directive_name=directive.name,
                class_clause=clause,
            )
            self._record(event, decision)
            return decision

        return self.manager.define(
            f"{directive.name}::class::{clause.class_name}",
            events=[EventKind.GET_CLASS],
            condition=self._condition(directive, clause.class_name),
            action=action,
            priority=directive.pattern.specificity(),
            group=self._group("class", clause.class_name),
            doc=(
                f"On Get_Class If {directive.pattern.describe()} Then "
                f"Build Window(Class set, {clause.class_name}, "
                f"{clause.control_widget or 'default'}, "
                f"{clause.presentation_format or 'default'})"
            ),
        )

    def _instance_rule(self, directive: CustomizationDirective,
                       clause: ClassCustomization,
                       attr: AttributeCustomization) -> Rule:
        # Instance events carry the oid as subject; the class arrives in
        # the payload, which is what the condition keys on.
        def action(event: Event, _manager) -> CustomizationDecision:
            decision = CustomizationDecision(
                kind="instance",
                rule_name=(
                    f"{directive.name}::attr::{clause.class_name}."
                    f"{attr.attr_name}"
                ),
                directive_name=directive.name,
                class_clause=ClassCustomization(
                    class_name=clause.class_name, attributes=(attr,)
                ),
            )
            self._record(event, decision)
            return decision

        return self.manager.define(
            f"{directive.name}::attr::{clause.class_name}.{attr.attr_name}",
            events=[EventKind.GET_VALUE],
            condition=self._condition(
                directive, "", payload_class=clause.class_name
            ),
            action=action,
            priority=directive.pattern.specificity(),
            group=self._group(
                "attr", f"{clause.class_name}.{attr.attr_name}"
            ),
            doc=(
                f"On Get_Value If {directive.pattern.describe()} Then "
                f"display {clause.class_name}.{attr.attr_name} as "
                f"{attr.format_name}"
            ),
        )

    # ------------------------------------------------------------------
    # Decision collection
    # ------------------------------------------------------------------

    def _record(self, event: Event, decision: CustomizationDecision) -> None:
        rec = obs.RECORDER
        if rec.enabled:
            rec.inc("customization.decisions", kind=decision.kind)
        self._decisions.setdefault(event.event_id, []).append(decision)
        self._decision_sessions[event.event_id] = event.session_id
        while len(self._decisions) > self._decision_window:
            evicted = next(iter(self._decisions))
            self._decisions.pop(evicted)
            self._decision_sessions.pop(evicted, None)

    def decisions_for(self, event_id: int, session_id: str | None = None
                      ) -> list[CustomizationDecision]:
        """Decisions recorded for one event.

        With ``session_id``, the lookup is session-keyed: decisions are
        returned only when the event was raised by that session, so one
        session can never consume another session's decisions (event ids
        are global across the shared bus).
        """
        if session_id is not None and \
                self._decision_sessions.get(event_id) != session_id:
            return []
        return list(self._decisions.get(event_id, ()))

    def session_decisions(self, session_id: str | None
                          ) -> list[CustomizationDecision]:
        """Every retained decision recorded on behalf of one session."""
        return [
            decision
            for event_id, decisions in self._decisions.items()
            if self._decision_sessions.get(event_id) == session_id
            for decision in decisions
        ]

    def schema_decision(self, event_id: int, session_id: str | None = None
                        ) -> CustomizationDecision | None:
        for decision in self.decisions_for(event_id, session_id):
            if decision.kind == "schema":
                return decision
        return None

    def class_decision(self, event_id: int, session_id: str | None = None
                       ) -> CustomizationDecision | None:
        for decision in self.decisions_for(event_id, session_id):
            if decision.kind == "class":
                return decision
        return None

    def attribute_decisions(
        self, event_id: int, session_id: str | None = None
    ) -> dict[str, AttributeCustomization]:
        """attr name -> customization, merged over the instance decisions."""
        out: dict[str, AttributeCustomization] = {}
        for decision in self.decisions_for(event_id, session_id):
            if decision.kind != "instance" or decision.class_clause is None:
                continue
            for attr in decision.class_clause.attributes:
                out[attr.attr_name] = attr
        return out

    # ------------------------------------------------------------------
    # Direct lookup (no event): used by the update-refresh extension
    # ------------------------------------------------------------------

    def active_class_clause(self, class_name: str,
                            context: Context | None) -> ClassCustomization | None:
        """The class clause the most specific matching directive gives.

        Mirrors rule selection, but answered synchronously against the
        directive registry — the dispatcher's refresh path (triggered by
        system-side UPDATE events, which carry no interaction context)
        uses this to find the ``on update`` customization for the window's
        own context.
        """
        best: tuple[int, str, ClassCustomization] | None = None
        for directive in self._directives.values():
            clause = directive.class_clause(class_name)
            if clause is None or not directive.pattern.matches(context):
                continue
            key = (directive.pattern.specificity(), directive.name)
            if best is None or key[0] > best[0]:
                best = (key[0], key[1], clause)
            elif key[0] == best[0] and key[1] != best[1]:
                raise RuleError(
                    f"ambiguous class customization for {class_name!r}: "
                    f"directives {best[1]!r} and {key[1]!r} share "
                    f"specificity {key[0]}"
                )
        return best[2] if best else None

    # ------------------------------------------------------------------
    # Explanation mode
    # ------------------------------------------------------------------

    def explain(self, event_id: int) -> str:
        """Why the interface looks the way it does for one event."""
        decisions = self.decisions_for(event_id)
        if not decisions:
            return (
                "no customization rule fired; the generic (default) "
                "presentation was used"
            )
        lines = []
        for decision in decisions:
            rule = self.manager.get_rule(decision.rule_name)
            lines.append(f"{decision.describe()}\n    rule: {rule.doc}")
        return "\n".join(lines)

    def stats(self) -> dict[str, Any]:
        return {
            "directives": len(self._directives),
            "rules": len(self.manager.rules()),
            "firings": len(self.manager.trace),
            "generation": self.manager.generation,
            "cached_selections": len(self.manager._selection_cache),
        }
