"""Live queries: delta-maintained standing results with targeted push.

The result cache (:mod:`repro.core.query_cache`) invalidates a whole
entry on *any* commit to a closure class — correct, but for standing
queries it means constant re-execution of barely-changed windows. A
:class:`LiveQueryManager` keeps the results of **watched** queries
(``session.watch(schema, text)``) incrementally correct instead:

* every commit's structured write-set
  (:class:`~repro.geodb.database.CommitWriteSet`) is run through the
  standing query's *compiled predicate* — the same closure chain the
  engine refines with;
* row deltas are applied to the maintained result: ordered results
  re-merge through the engine's total order ``(value is None, value,
  oid)``, aggregates recombine from per-object contributions, projected
  rows recompute only for the touched oids;
* the cached entry's versions advance in step
  (:meth:`~repro.core.query_cache.QueryResultCache.put_maintained`), so
  plain ``kernel.query`` lookups keep hitting;
* a ``live_update`` is delivered *only* to the watches whose result
  content actually changed — an insert that misses the predicate, or an
  update that leaves the projected row identical, is silent.

Fallback to a full re-execution happens only when a delta is
inapplicable:

* the entry missed a commit (version discontinuity — e.g. a commit
  landed while the watch was being registered);
* the class closure itself changed (a subclass appeared);
* the result was truncated by a ``LIMIT`` horizon and the delta moves a
  member out of (or reorders it within an unknowable part of) the
  window;
* an unordered ``LIMIT`` result's membership changes (its row order is
  plan-dependent, so no maintained order can be proven equal).

A scatter reshard (``shard_extent`` with a new grid) needs no fallback:
shard layout changes execution, never content, and the maintained
result is content.

Correctness under races: write-set listeners run on committing threads
*outside* the commit lock, so deliveries can arrive out of order. The
manager serializes on its own lock and applies a write-set only when
the maintained versions equal the commit's ``prev_versions`` for every
touched class; newer state skips the (already-covered) commit, anything
else re-executes against current versions. Application is idempotent
per oid — membership is consulted before every mutation, and match
re-evaluation reads the *live* object — so the maintained result always
converges to what a fresh execution would return.
"""

from __future__ import annotations

import itertools
import threading
from typing import TYPE_CHECKING, Any, Callable

from .. import obs
from ..errors import SessionError
from ..geodb.database import CommitWriteSet, GeographicDatabase, WriteOp
from ..geodb.instances import GeoObject
from ..geodb.query import MISSING, Query, compile_path
from ..geodb.query_engine import QueryEngine, QueryResult

if TYPE_CHECKING:  # pragma: no cover - import cycle with kernel/session
    from .kernel import GISKernel
    from .session import GISSession

_watch_ids = itertools.count(1)


class _Fallback(Exception):
    """Raised inside delta application when the delta is inapplicable."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class LiveUpdate:
    """One delivered change of a watched result."""

    __slots__ = ("watch_id", "session_id", "schema_name", "query_text",
                 "reason", "result", "commit_ts")

    def __init__(self, watch_id: str, session_id: str, schema_name: str,
                 query_text: str, reason: str, result: QueryResult,
                 commit_ts: int):
        self.watch_id = watch_id
        self.session_id = session_id
        self.schema_name = schema_name
        self.query_text = query_text
        #: ``"delta"`` (patched in place) or ``"reexec"`` (fallback)
        self.reason = reason
        self.result = result
        self.commit_ts = commit_ts


class Watch:
    """One session's registration on a standing query."""

    __slots__ = ("watch_id", "session_id", "schema_name", "query",
                 "callback", "updates", "active", "_state", "_manager")

    def __init__(self, watch_id: str, session_id: str, schema_name: str,
                 query: Query, state: "_LiveState",
                 manager: "LiveQueryManager",
                 callback: Callable[[LiveUpdate], None] | None):
        self.watch_id = watch_id
        self.session_id = session_id
        self.schema_name = schema_name
        self.query = query
        self.callback = callback
        #: undelivered updates, appended in commit order (drain with
        #: :meth:`pop_updates`)
        self.updates: list[LiveUpdate] = []
        self.active = True
        self._state = state
        self._manager = manager

    def result(self) -> QueryResult:
        """The current maintained result (shared, immutable)."""
        return self._state.result

    def pop_updates(self) -> list[LiveUpdate]:
        updates, self.updates = self.updates, []
        return updates

    def unwatch(self) -> None:
        self._manager.unregister(self)


class _LiveState:
    """The maintained result of one (schema, query fingerprint)."""

    __slots__ = (
        "schema_name", "query", "key", "geo_class", "closure",
        "closure_keys", "versions", "matcher", "order", "proj_accessors",
        "agg_specs", "membership", "objects", "keys", "rows", "contribs",
        "agg_row", "complete", "base_report", "result", "watches",
        "deltas", "fallbacks", "last_reason", "last_commit_ts",
    )

    def __init__(self, schema_name: str, query: Query, key: tuple):
        self.schema_name = schema_name
        self.query = query
        self.key = key
        self.watches: dict[str, Watch] = {}
        self.deltas = 0
        self.fallbacks = 0
        self.last_reason = "build"
        self.last_commit_ts = 0

    # -- build / rebuild -------------------------------------------------

    def load(self, engine: QueryEngine, result: QueryResult,
             versions: dict[str, int]) -> None:
        """(Re)derive every maintained structure from a fresh execution."""
        db = engine.database
        schema = db.get_schema_object(self.schema_name)
        self.geo_class = schema.get_class(self.query.class_name)
        self.closure = engine.planner.class_closure(self.schema_name,
                                                    self.query)
        self.closure_keys = {(self.schema_name, c) for c in self.closure}
        self.versions = dict(versions)
        self.matcher = self.query.where.compile(self.geo_class)
        if self.query.order_by and not self.query.aggregates:
            self.order = QueryEngine._order_key(self.geo_class, self.query)
        else:
            self.order = None
        if self.query.projection is not None:
            self.proj_accessors = [
                (path, compile_path(path, self.geo_class))
                for path in self.query.projection
            ]
        else:
            self.proj_accessors = None
        self.agg_specs = []
        if self.query.aggregates:
            for op, path in self.query.aggregates:
                accessor = (compile_path(path, self.geo_class)
                            if path is not None else None)
                self.agg_specs.append(
                    (op, path, f"{op}({path or '*'})", accessor))

        self.objects = list(result.objects)
        if self.agg_specs:
            self.membership = {obj.oid: True for obj in self.objects}
            self.keys = None
            self.rows = None
            self.contribs = [
                ({obj.oid: value for obj in self.objects
                  if (value := spec[3](obj)) is not MISSING
                  and value is not None}
                 if spec[3] is not None else None)
                for spec in self.agg_specs
            ]
            self.agg_row = dict(result.rows[0])
            self.complete = True
        else:
            key_fn = self.order[0] if self.order else None
            self.keys = ([key_fn(obj) for obj in self.objects]
                         if key_fn else None)
            self.membership = (
                {obj.oid: k for obj, k in zip(self.objects, self.keys)}
                if self.keys is not None
                else {obj.oid: True for obj in self.objects})
            self.rows = (list(result.rows)
                         if result.rows is not None else None)
            self.contribs = None
            self.agg_row = None
            # a result truncated at the LIMIT horizon cannot know what
            # lies beyond it; membership-shrinking deltas must re-execute
            self.complete = (self.query.limit is None
                             or len(self.objects) < self.query.limit)
        self.base_report = dict(result.report)
        self.result = result

    # -- publishing ------------------------------------------------------

    def publish(self, reason: str, commit_ts: int) -> None:
        """Build a fresh immutable :class:`QueryResult` snapshot."""
        limit = self.query.limit
        if self.agg_specs:
            objects = list(self.objects)
            rows: list[dict[str, Any]] | None = [dict(self.agg_row)]
        else:
            objects = (list(self.objects[:limit]) if limit is not None
                       else list(self.objects))
            rows = (list(self.rows[:limit]) if limit is not None
                    else list(self.rows)) if self.rows is not None else None
        report = dict(self.base_report)
        report["live"] = {
            "reason": reason,
            "deltas": self.deltas,
            "fallbacks": self.fallbacks,
            "commit_ts": commit_ts,
        }
        report["matches"] = len(objects)
        self.result = QueryResult(self.query, objects, rows, report)
        self.last_reason = reason
        self.last_commit_ts = commit_ts

    # -- delta application ----------------------------------------------

    def apply(self, ws: CommitWriteSet,
              db: GeographicDatabase) -> tuple[bool, bool]:
        """Apply one applicable write-set.

        Returns ``(changed, republish)``: ``changed`` when the published
        *content* changed (a push is owed), ``republish`` when the
        internal state mutated at all — an aggregate's membership can
        churn while its row stays identical (one member leaves, another
        enters), and the published snapshot's object set must still be
        refreshed even though no update is delivered. Raises
        :class:`_Fallback` when the delta cannot be proven equal to a
        re-execution.
        """
        changed = False
        agg_dirty = False
        for op in ws.ops:
            if (op.schema_name, op.class_name) not in self.closure_keys:
                continue
            if self.agg_specs:
                agg_dirty |= self._apply_aggregate_op(op, db)
            else:
                changed |= self._apply_row_op(op, db)
        if agg_dirty:
            old_row = self.agg_row
            self.agg_row = self._aggregate_row()
            changed = self.agg_row != old_row
        return changed, changed or agg_dirty

    def _resolve(self, op: WriteOp, db: GeographicDatabase):
        """(object, matches_now) for an insert/update op.

        The live extent object is the source of truth: if a later,
        already-applied commit deleted it the op degrades to a removal,
        and re-processing that later commit finds nothing left to do —
        idempotent convergence.
        """
        if op.op == "delete":
            return None, False
        obj = db.find_object(op.oid)
        if obj is None:
            return None, False
        return obj, bool(self.matcher(obj))

    # .. plain / ordered / projected results ..

    def _apply_row_op(self, op: WriteOp, db: GeographicDatabase) -> bool:
        obj, now_match = self._resolve(op, db)
        was_member = op.oid in self.membership
        if not was_member and not now_match:
            return False
        if was_member and not now_match:
            return self._remove_member(op.oid)
        if not was_member:
            return self._add_member(obj)
        return self._update_member(obj)

    def _add_member(self, obj: GeoObject) -> bool:
        limit = self.query.limit
        if self.order is None:
            if limit is not None and len(self.objects) + 1 > limit:
                # unordered LIMIT: which rows a fresh execution keeps is
                # plan-dependent; no maintained choice is provably equal
                raise _Fallback("unordered-limit-overflow")
            self.objects.append(obj)
            if self.rows is not None:
                self.rows.append(self._project_row(obj))
            self.membership[obj.oid] = True
            return True
        key = self.order[0](obj)
        pos = self._insert_pos(key)
        if not self.complete and limit is not None and pos >= limit:
            # beyond the truncation horizon of a known-incomplete
            # result: the stored top-k is unchanged
            return False
        self.objects.insert(pos, obj)
        self.keys.insert(pos, key)
        if self.rows is not None:
            self.rows.insert(pos, self._project_row(obj))
        self.membership[obj.oid] = key
        if not self.complete and limit is not None \
                and len(self.objects) > limit:
            dropped = self.objects.pop()
            self.keys.pop()
            if self.rows is not None:
                self.rows.pop()
            del self.membership[dropped.oid]
        # visible only when it lands inside the published window
        return limit is None or pos < limit

    def _remove_member(self, oid: str) -> bool:
        if not self.complete:
            raise _Fallback("limit-horizon-removal")
        pos = self._member_pos(oid)
        self.objects.pop(pos)
        if self.keys is not None:
            self.keys.pop(pos)
        if self.rows is not None:
            self.rows.pop(pos)
        del self.membership[oid]
        limit = self.query.limit
        return limit is None or pos < limit

    def _update_member(self, obj: GeoObject) -> bool:
        pos = self._member_pos(obj.oid)
        if self.order is not None:
            new_key = self.order[0](obj)
            if new_key != self.membership[obj.oid]:
                if not self.complete:
                    # the member may sink below the horizon and an
                    # unseen row take its place — only a re-execution
                    # can know
                    raise _Fallback("limit-horizon-reorder")
                self.objects.pop(pos)
                self.keys.pop(pos)
                row = self.rows.pop(pos) if self.rows is not None else None
                new_pos = self._insert_pos(new_key)
                self.objects.insert(new_pos, obj)
                self.keys.insert(new_pos, new_key)
                if self.rows is not None:
                    self.rows[new_pos:new_pos] = [row]
                self.membership[obj.oid] = new_key
                limit = self.query.limit
                if limit is not None and pos >= limit and new_pos >= limit:
                    return self._refresh_row(obj, new_pos)
                self._refresh_row(obj, new_pos)
                return True
        if self.rows is not None:
            return self._refresh_row(obj, pos)
        # bare-object result: the shared object's values changed in
        # place, so the content a session displays changed
        return True

    def _refresh_row(self, obj: GeoObject, pos: int) -> bool:
        if self.rows is None:
            return True
        new_row = self._project_row(obj)
        if new_row == self.rows[pos]:
            return False
        self.rows[pos] = new_row
        limit = self.query.limit
        return limit is None or pos < limit

    def _project_row(self, obj: GeoObject) -> dict[str, Any]:
        row: dict[str, Any] = {"oid": obj.oid}
        for path, accessor in self.proj_accessors:
            value = accessor(obj)
            row[path] = None if value is MISSING else value
        return row

    def _insert_pos(self, key) -> int:
        """Leftmost position for ``key`` in the (total) result order."""
        keys, descending = self.keys, self.order[1]
        lo, hi = 0, len(keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if (keys[mid] < key) != descending:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _member_pos(self, oid: str) -> int:
        if self.keys is not None:
            pos = self._insert_pos(self.membership[oid])
            if pos < len(self.objects) and self.objects[pos].oid == oid:
                return pos
        for i, obj in enumerate(self.objects):
            if obj.oid == oid:
                return i
        raise _Fallback("membership-desync")   # pragma: no cover

    # .. aggregates ..

    def _apply_aggregate_op(self, op: WriteOp,
                            db: GeographicDatabase) -> bool:
        obj, now_match = self._resolve(op, db)
        was_member = op.oid in self.membership
        if not was_member and not now_match:
            return False
        if was_member and not now_match:
            pos = next(i for i, o in enumerate(self.objects)
                       if o.oid == op.oid)
            self.objects.pop(pos)
            del self.membership[op.oid]
            for contrib in self.contribs:
                if contrib is not None:
                    contrib.pop(op.oid, None)
            return True
        if not was_member:
            self.objects.append(obj)
            self.membership[obj.oid] = True
        dirty = not was_member
        for spec, contrib in zip(self.agg_specs, self.contribs):
            if contrib is None:
                continue
            value = spec[3](obj)
            if value is MISSING or value is None:
                dirty |= contrib.pop(obj.oid, None) is not None
            else:
                dirty |= contrib.get(obj.oid, MISSING) != value
                contrib[obj.oid] = value
        return dirty

    def _aggregate_row(self) -> dict[str, Any]:
        """Recombine the per-object contributions into one row.

        Matches :meth:`QueryEngine._aggregate` exactly, including the
        SQL-style empty-input conventions. (Float ``sum``/``avg`` are
        recombined over the contribution set, so with non-associative
        float addition the last bits may differ from one specific
        execution order; integer attributes are exact.)
        """
        row: dict[str, Any] = {}
        for (op, path, label, _accessor), contrib in zip(self.agg_specs,
                                                         self.contribs):
            if op == "count" and path is None:
                row[label] = len(self.membership)
                continue
            values = contrib.values()
            if op == "count":
                row[label] = len(values)
            elif not values:
                row[label] = None
            elif op == "min":
                row[label] = min(values)
            elif op == "max":
                row[label] = max(values)
            elif op == "sum":
                row[label] = sum(values)
            else:   # avg
                row[label] = sum(values) / len(values)
        return row


class LiveQueryManager:
    """Kernel-owned registry of watched queries and their maintenance.

    Owned by one :class:`~repro.core.kernel.GISKernel`; states are
    shared per (schema, fingerprint), so a thousand sessions watching
    the same window cost one maintained result. The manager subscribes
    to the database's write-set listener hook only while at least one
    watch exists.
    """

    def __init__(self, kernel: "GISKernel"):
        self.kernel = kernel
        self.database: GeographicDatabase = kernel.database
        self.cache = kernel.query_cache
        self._lock = threading.RLock()
        self._states: dict[tuple, _LiveState] = {}
        self._watches: dict[str, Watch] = {}
        #: server-side listeners fanning updates out over the wire
        self._listeners: list[Callable[[LiveUpdate], None]] = []
        self._attached = False
        self._closed = False
        self.registered = 0
        self.delta_applied = 0
        self.fallback_reexec = 0
        self.pushes = 0
        self.callback_errors = 0

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def watch(self, session: "GISSession", schema_name: str, query,
              callback: Callable[[LiveUpdate], None] | None = None
              ) -> Watch:
        """Register a standing query for ``session``.

        ``query`` is query-language text or a
        :class:`~repro.geodb.query.Query`. Returns a :class:`Watch`
        whose :meth:`~Watch.result` is kept delta-maintained; every
        content change appends a :class:`LiveUpdate` to
        ``watch.updates`` (and invokes ``callback``, when given).
        """
        if self._closed:
            raise SessionError("live query manager is shut down")
        if isinstance(query, str):
            from ..geodb.query_language import parse_query

            query = parse_query(query)
        key = self.cache.make_key(schema_name, query)
        rec = obs.RECORDER
        with self._lock:
            state = self._states.get(key)
            if state is None:
                state = _LiveState(schema_name, query, key)
                self._execute_into(state)
                self._states[key] = state
                if not self._attached:
                    self.database.add_write_set_listener(self._on_write_set)
                    self._attached = True
            watch = Watch(f"w{next(_watch_ids)}", session.session_id,
                          schema_name, query, state, self, callback)
            state.watches[watch.watch_id] = watch
            self._watches[watch.watch_id] = watch
            self.registered += 1
            if rec.enabled:
                rec.inc("live.registered")
                rec.gauge("live.watches", len(self._watches))
            return watch

    def unregister(self, watch: Watch) -> None:
        """Drop one watch; the state dies with its last watcher."""
        with self._lock:
            if self._watches.pop(watch.watch_id, None) is None:
                return
            watch.active = False
            state = self._states.get(watch._state.key)
            if state is not None:
                state.watches.pop(watch.watch_id, None)
                if not state.watches:
                    del self._states[state.key]
            self._maybe_detach()
            rec = obs.RECORDER
            if rec.enabled:
                rec.gauge("live.watches", len(self._watches))

    def get_watch(self, watch_id: str) -> Watch | None:
        with self._lock:
            return self._watches.get(watch_id)

    def drop_session(self, session_id: str) -> None:
        """Release every watch a (closing) session still holds."""
        with self._lock:
            doomed = [w for w in self._watches.values()
                      if w.session_id == session_id]
        for watch in doomed:
            self.unregister(watch)

    def _maybe_detach(self) -> None:
        if self._attached and not self._states:
            self.database.remove_write_set_listener(self._on_write_set)
            self._attached = False

    def add_listener(self, listener: Callable[[LiveUpdate], None]) -> None:
        """Subscribe to every delivered update (server push fan-out)."""
        with self._lock:
            if listener not in self._listeners:
                self._listeners.append(listener)

    def remove_listener(self, listener: Callable[[LiveUpdate], None]
                        ) -> None:
        with self._lock:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

    # ------------------------------------------------------------------
    # Maintenance (runs on committing threads)
    # ------------------------------------------------------------------

    def _on_write_set(self, ws: CommitWriteSet) -> None:
        with self._lock:
            for state in list(self._states.values()):
                self._maintain(state, ws)

    def _maintain(self, state: _LiveState, ws: CommitWriteSet) -> None:
        touched = [c for (s, c) in ws.prev_versions
                   if (s, c) in state.closure_keys]
        if not touched:
            return
        rec = obs.RECORDER
        # the closure itself may have grown (a subclass created by this
        # very commit); recompute and compare before trusting the delta
        closure = self.cache.engine.planner.class_closure(
            state.schema_name, state.query)
        if closure != state.closure:
            self._reexecute(state, ws, "closure-change", rec)
            return
        if all(state.versions.get(c, 0) >= ws.commit_ts for c in touched):
            return      # already covered by a rebuild past this commit
        if any(state.versions.get(c, 0)
               != ws.prev_versions[(state.schema_name, c)]
               for c in touched):
            # discontinuity: this entry missed a commit in between
            self._reexecute(state, ws, "version-gap", rec)
            return
        try:
            changed, republish = state.apply(ws, self.database)
        except _Fallback as exc:
            self._reexecute(state, ws, exc.reason, rec)
            return
        for class_name in touched:
            state.versions[class_name] = ws.commit_ts
        state.deltas += 1
        self.delta_applied += 1
        if rec.enabled:
            rec.inc("live.delta_applied")
        if republish:
            state.publish("delta", ws.commit_ts)
        self.cache.put_maintained(state.key, state.result,
                                  dict(state.versions))
        if changed:
            self._notify(state, "delta", ws.commit_ts, rec)

    def _execute_into(self, state: _LiveState) -> None:
        """Full execution + state load, at pre-read versions.

        Versions are observed *before* executing, so the loaded content
        is at least as new as its claim — a concurrent commit then
        triggers a harmless re-execution rather than a silent skip.
        """
        versions = self.cache.observed_versions(state.schema_name,
                                                state.query)
        result = self.cache.engine.execute(state.schema_name, state.query)
        state.load(self.cache.engine, result, versions)
        self.cache.put_maintained(state.key, result, versions)

    def _reexecute(self, state: _LiveState, ws: CommitWriteSet,
                   reason: str, rec) -> None:
        old = state.result
        self._execute_into(state)
        state.fallbacks += 1
        self.fallback_reexec += 1
        if rec.enabled:
            rec.inc("live.fallback_reexec", reason=reason)
        changed = not self._content_equal(state.query, old, state.result)
        if not changed:
            # membership and rows agree — but an in-place update to a
            # member of a bare-object result is invisible to that
            # comparison (old and new share the mutated objects)
            oids = set(old.oids())
            changed = old.rows is None and any(
                op.op == "update" and op.oid in oids
                for op in ws.ops
                if (op.schema_name, op.class_name) in state.closure_keys)
        if changed:
            state.publish(f"reexec:{reason}", ws.commit_ts)
            self.cache.put_maintained(state.key, state.result,
                                      dict(state.versions))
            self._notify(state, "reexec", ws.commit_ts, rec)

    @staticmethod
    def _content_equal(query: Query, a: QueryResult,
                       b: QueryResult) -> bool:
        if query.order_by and not query.aggregates:
            return a.oids() == b.oids() and a.rows == b.rows
        if sorted(a.oids()) != sorted(b.oids()):
            return False
        if a.rows is None or query.aggregates:
            return a.rows == b.rows
        return ({r["oid"]: r for r in a.rows}
                == {r["oid"]: r for r in b.rows})

    def _notify(self, state: _LiveState, reason: str, commit_ts: int,
                rec) -> None:
        for watch in list(state.watches.values()):
            update = LiveUpdate(watch.watch_id, watch.session_id,
                                state.schema_name, state.query.describe(),
                                reason, state.result, commit_ts)
            watch.updates.append(update)
            self.pushes += 1
            if rec.enabled:
                rec.inc("live.push", reason=reason)
            if watch.callback is not None:
                try:
                    watch.callback(update)
                except Exception:
                    self.callback_errors += 1
            for listener in list(self._listeners):
                try:
                    listener(update)
                except Exception:
                    self.callback_errors += 1

    # ------------------------------------------------------------------
    # Introspection & lifecycle
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "watches": len(self._watches),
                "queries": len(self._states),
                "registered": self.registered,
                "delta_applied": self.delta_applied,
                "fallback_reexec": self.fallback_reexec,
                "pushes": self.pushes,
                "callback_errors": self.callback_errors,
            }

    def watch_status(self) -> list[dict[str, Any]]:
        """One row per live watch (CLI ``watch-status``)."""
        with self._lock:
            return [
                {
                    "watch": watch.watch_id,
                    "session": watch.session_id,
                    "schema": watch.schema_name,
                    "query": state.query.describe(),
                    "rows": len(state.result),
                    "deltas": state.deltas,
                    "fallbacks": state.fallbacks,
                    "last": state.last_reason,
                    "pending": len(watch.updates),
                }
                for state in self._states.values()
                for watch in state.watches.values()
            ]

    def shutdown(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for watch in self._watches.values():
                watch.active = False
            self._watches.clear()
            self._states.clear()
            self._listeners.clear()
            self._maybe_detach()
