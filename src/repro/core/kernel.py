"""The shared multi-session server core.

The paper's architecture (§3, Figure 1) has *one* active DBMS serving
*many* interactive users: "the control of the application is made by the
active mechanism of the DBMS" while each user carries only their own
interaction context. A :class:`GISKernel` is that server side — it owns
the read-mostly state every session shares:

* the database handle and its event bus,
* the :class:`~repro.uilib.library.InterfaceObjectLibrary` of interface
  objects (§3.4),
* the :class:`~repro.uilib.presentation.PresentationRegistry`,
* one :class:`~repro.core.rule_engine.CustomizationEngine` holding the
  customization rule set,
* one :class:`~repro.core.builder.GenericInterfaceBuilder`.

Sessions created through :meth:`GISKernel.session` are lightweight: a
:class:`~repro.core.context.Context`, a private
:class:`~repro.core.dispatcher.Screen`, and a
:class:`~repro.core.dispatcher.Dispatcher` stamped with a ``session_id``.
Every primitive event a session raises carries that id, so the shared
engine records customization decisions *per session* and the kernel can
fan committed mutations out only to the sessions actually displaying the
touched class.

``GISSession(db, ...)`` without a kernel still works — it creates a
private single-session kernel, preserving the historical one-stack-per-
session behavior (and its engine isolation) for existing callers.
"""

from __future__ import annotations

import itertools
import time
from typing import TYPE_CHECKING, Any

from .. import obs
from ..active.event_bus import Event, MUTATION_KINDS
from ..errors import ReplicationError, SessionError
from ..geodb.catalog import MetadataCatalog
from ..geodb.database import GeographicDatabase
from ..uilib.composite import install_standard_composites
from ..uilib.library import InterfaceObjectLibrary
from ..uilib.presentation import PresentationRegistry
from .builder import GenericInterfaceBuilder
from .customization import CustomizationDirective
from .live_queries import LiveQueryManager
from .query_cache import QueryResultCache
from .rule_engine import CustomizationEngine

if TYPE_CHECKING:  # pragma: no cover - import cycle with session.py
    from .session import GISSession

_session_ids = itertools.count(1)


class GISKernel:
    """Shared customization stack for many concurrent sessions.

    One kernel per database (or per isolated tenant); any number of
    sessions. The kernel is *read-mostly*: sessions only read the library,
    builder and rule set, while installs of new directives go through
    :meth:`install_directive` / :meth:`install_program` and invalidate the
    engine's decision cache via the rule manager's generation counter.
    """

    def __init__(
        self,
        database: GeographicDatabase,
        *,
        library: InterfaceObjectLibrary | None = None,
        engine: CustomizationEngine | None = None,
        presentations: PresentationRegistry | None = None,
        catalog: MetadataCatalog | None = None,
        selection_cache: bool = True,
    ):
        self.database = database
        self.catalog = catalog
        if library is None:
            library = InterfaceObjectLibrary(catalog)
            install_standard_composites(library, persist=catalog is not None)
        self.library = library
        self._owns_engine = engine is None
        self.engine = engine if engine is not None else CustomizationEngine(
            database.bus, catalog=catalog, selection_cache=selection_cache
        )
        self.presentations = presentations or PresentationRegistry()
        self.builder = GenericInterfaceBuilder(library, self.presentations)
        self.query_cache = QueryResultCache(database)
        self.live = LiveQueryManager(self)
        self._sessions: dict[str, "GISSession"] = {}
        #: read replicas: name -> (follower db, its private result cache)
        self._replicas: dict[str, tuple[GeographicDatabase,
                                        QueryResultCache]] = {}
        self._replica_rr = 0
        self._refresh_subscribed = False
        self._closed = False

    # ------------------------------------------------------------------
    # Session management
    # ------------------------------------------------------------------

    def session(
        self,
        user: str | None = None,
        category: str | None = None,
        application: str | None = None,
        scale_denominator: float | None = None,
        time_tag: str | None = None,
        auto_refresh: bool = False,
    ) -> "GISSession":
        """Open a lightweight session sharing this kernel's stack."""
        from .session import GISSession

        return GISSession(
            self.database,
            user=user,
            category=category,
            application=application,
            scale_denominator=scale_denominator,
            time_tag=time_tag,
            auto_refresh=auto_refresh,
            kernel=self,
        )

    def _attach(self, session: "GISSession") -> str:
        """Register a session and hand out its identity (called by
        ``GISSession.__init__``)."""
        if self._closed:
            raise SessionError("kernel is shut down")
        session_id = f"s{next(_session_ids)}"
        self._sessions[session_id] = session
        self._gauge_sessions()
        return session_id

    def _session_ready(self, session: "GISSession") -> None:
        """Second attach phase, once the session's dispatcher exists."""
        if session.dispatcher.auto_refresh and not self._refresh_subscribed:
            self.database.bus.subscribe(self._on_mutation,
                                        kinds=MUTATION_KINDS)
            self._refresh_subscribed = True

    def _detach(self, session: "GISSession") -> None:
        self._sessions.pop(session.session_id, None)
        self.live.drop_session(session.session_id)
        self._gauge_sessions()
        if self._refresh_subscribed and not any(
            s.dispatcher.auto_refresh for s in self._sessions.values()
        ):
            self.database.bus.unsubscribe(self._on_mutation)
            self._refresh_subscribed = False

    def _gauge_sessions(self) -> None:
        rec = obs.RECORDER
        if rec.enabled:
            rec.gauge("kernel.sessions", len(self._sessions),
                      database=self.database.name)

    @property
    def session_count(self) -> int:
        return len(self._sessions)

    def sessions(self) -> list["GISSession"]:
        """The currently attached sessions, in attach order."""
        return list(self._sessions.values())

    # ------------------------------------------------------------------
    # Transactions: isolated snapshots per session
    # ------------------------------------------------------------------

    def transaction(self, session: "GISSession | None" = None):
        """Open a snapshot-isolated transaction, optionally for a session.

        Each call takes an independent snapshot, so concurrent sessions
        read consistent (and mutually invisible) states until commit.
        When ``session`` is given, the commit's mutation events carry its
        ``session_id``, and the kernel's refresh fan-out — which only
        fires for *committed* versions (``phase="commit"``) — can route
        session-scoped events accordingly.
        """
        if self._closed:
            raise SessionError("kernel is shut down")
        session_id = None
        if session is not None:
            if self._sessions.get(session.session_id) is not session:
                raise SessionError(
                    f"session {session.session_id!r} is not attached to "
                    "this kernel"
                )
            session_id = session.session_id
        txn = self.database.transaction(session_id=session_id)
        if session is not None:
            # Read-your-writes: the session remembers its newest commit
            # LSN, and replica-routed queries wait for it (see `query`).
            txn._on_commit = session._note_commit
        return txn

    # ------------------------------------------------------------------
    # Read replicas: attach followers, route reads
    # ------------------------------------------------------------------

    def attach_replica(self, replica: GeographicDatabase,
                       name: str | None = None) -> str:
        """Register a follower database as a read target.

        ``replica`` must be in follower mode (created by
        :meth:`GeographicDatabase.follow` against this kernel's leader).
        Replica-routed queries get their own snapshot-consistent result
        cache, validated against the *follower's* class versions — the
        replay path bumps them exactly like leader commits do.
        """
        if self._closed:
            raise SessionError("kernel is shut down")
        status = replica.replication_status()
        if status.get("role") != "follower":
            raise ReplicationError(
                f"database {replica.name!r} is not a follower — only "
                "follower-mode databases can serve as read replicas"
            )
        name = name or replica.name
        if name in self._replicas:
            raise ReplicationError(f"replica {name!r} is already attached")
        self._replicas[name] = (replica, QueryResultCache(replica))
        rec = obs.RECORDER
        if rec.enabled:
            rec.gauge("kernel.replicas", len(self._replicas),
                      database=self.database.name)
        return name

    def detach_replica(self, name: str) -> None:
        self._replicas.pop(name, None)
        rec = obs.RECORDER
        if rec.enabled:
            rec.gauge("kernel.replicas", len(self._replicas),
                      database=self.database.name)

    def replicas(self) -> list[str]:
        return list(self._replicas)

    def replication_status(self) -> dict[str, Any]:
        """Leader status plus per-replica LSN/lag (CLI ``repl-status``)."""
        return {
            "leader": self.database.replication_status(),
            "replicas": [db.replication_status()
                         for db, _cache in self._replicas.values()],
        }

    def _pick_replica(self) -> tuple[GeographicDatabase, QueryResultCache]:
        names = list(self._replicas)
        name = names[self._replica_rr % len(names)]
        self._replica_rr += 1
        return self._replicas[name]

    @staticmethod
    def _await_lsn(replica: GeographicDatabase, min_lsn: int | None,
                   timeout: float) -> None:
        """Catch the follower up to ``min_lsn`` (read-your-writes wait).

        Always polls at least once, so even an unconstrained replica
        read reflects everything the leader had shipped when the query
        arrived.
        """
        deadline = time.monotonic() + timeout
        while True:
            replica.poll_replication()
            if min_lsn is None or replica.replication_lsn >= min_lsn:
                return
            if time.monotonic() >= deadline:
                raise ReplicationError(
                    f"replica {replica.name!r} did not reach LSN "
                    f"{min_lsn} within {timeout:.1f}s "
                    f"(at {replica.replication_lsn})"
                )
            time.sleep(0.002)

    # ------------------------------------------------------------------
    # Queries: shared, snapshot-consistent result cache
    # ------------------------------------------------------------------

    def query(self, schema_name: str, query, *, use_cache: bool = True,
              read_preference: str = "leader", min_lsn: int | None = None,
              replica_wait_timeout: float = 5.0):
        """Execute an analysis-mode query against the latest commit.

        ``query`` is a :class:`~repro.geodb.query.Query` or query-language
        text. Results come from the kernel-wide
        :class:`~repro.core.query_cache.QueryResultCache`, so repeated
        queries from any session are served without re-scanning until a
        commit touches one of the classes they read
        (``report["cache"]`` says which happened). ``use_cache=False``
        bypasses the cache without populating it.

        ``read_preference="replica"`` routes the read to an attached
        follower (round-robin), falling back to the leader when none is
        attached. ``min_lsn`` is the read-your-writes bound: the chosen
        follower first catches up to that LSN (sessions pass their last
        commit LSN automatically), raising
        :class:`~repro.errors.ReplicationError` if it cannot within
        ``replica_wait_timeout`` seconds.
        """
        if self._closed:
            raise SessionError("kernel is shut down")
        if read_preference not in ("leader", "replica"):
            raise SessionError(
                f"unknown read preference {read_preference!r} "
                "(expected 'leader' or 'replica')"
            )
        if isinstance(query, str):
            from ..geodb.query_language import parse_query

            query = parse_query(query)
        cache = self.query_cache
        if read_preference == "replica" and self._replicas:
            replica, cache = self._pick_replica()
            self._await_lsn(replica, min_lsn, replica_wait_timeout)
            rec = obs.RECORDER
            if rec.enabled:
                rec.inc("query.routed", target="replica")
        if not use_cache:
            return cache.engine.execute(schema_name, query)
        return cache.execute(schema_name, query)

    # ------------------------------------------------------------------
    # Customization installation (shared rule set)
    # ------------------------------------------------------------------

    def install_directive(self, directive: CustomizationDirective,
                          persist: bool | None = None) -> None:
        """Register a compiled directive with the shared engine."""
        if persist is None:
            persist = self.catalog is not None
        self.engine.register_directive(directive, persist=persist)

    def install_program(self, source: str, persist: bool | None = None
                        ) -> list[CustomizationDirective]:
        """Compile customization-language source into the shared engine."""
        from ..lang.compiler import compile_program

        directives = compile_program(
            source, self.database, self.library, self.presentations
        )
        for directive in directives:
            self.install_directive(directive, persist=persist)
        return directives

    # ------------------------------------------------------------------
    # Mutation fan-out: refresh only the sessions that display the class
    # ------------------------------------------------------------------

    def _on_mutation(self, event: Event) -> None:
        if event.payload.get("phase") != "commit":
            return
        for session in list(self._sessions.values()):
            # A session mid-shutdown (another thread flipped _closed but
            # has not finished detaching) must not have windows reopened
            # under it — refreshing would re-register interest the close
            # path just released.
            if session._closed:
                continue
            dispatcher = session.dispatcher
            if dispatcher.auto_refresh and dispatcher.interested_in(event):
                dispatcher._on_mutation(event)

    # ------------------------------------------------------------------
    # Introspection & lifecycle
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        return {
            "database": self.database.name,
            "sessions": len(self._sessions),
            "replicas": list(self._replicas),
            "engine": self.engine.stats(),
            "events_published": self.database.bus.published_count,
            "query_cache": self.query_cache.stats(),
            "live": self.live.stats(),
        }

    def shutdown(self) -> None:
        """End every attached session and detach from the database bus.

        Idempotent; also runs via the context manager protocol::

            with GISKernel(db) as kernel:
                session = kernel.session(user="ana")
        """
        if self._closed:
            return
        for session in list(self._sessions.values()):
            session.shutdown()
        self.live.shutdown()
        if self._refresh_subscribed:
            self.database.bus.unsubscribe(self._on_mutation)
            self._refresh_subscribed = False
        if self._owns_engine:
            self.engine.manager.detach()
        self._closed = True

    def __enter__(self) -> "GISKernel":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()
