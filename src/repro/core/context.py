"""Interaction contexts and context patterns.

§3.3: "we restrict context definition to the tuple
``<user class, application domain>``, where user class and application
domain belong to well defined partitions created by the application
designer. This context information can conceivably be extended to other
contextual data (e.g., geographic scale, time framework)."

Two types live here:

* :class:`Context` — the *concrete* working environment of a session:
  which user, which user category, which application, plus the optional
  extension dimensions (current map scale, current time).
* :class:`ContextPattern` — the *condition* side of a customization rule:
  a partial description that matches a family of contexts. ``None``
  fields are wildcards. Patterns have a **specificity** score implementing
  the paper's priority policy: "the rule whose condition (context) part is
  more restrictive" wins, with the worked ordering "a rule for generic
  users, for a particular category of users, and for a particular user
  within the category".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CustomizationError

#: Specificity weights. A named user outranks any category+application
#: combination; a category outranks application-only; the extension
#: dimensions (scale/time) are tie-breakers below all of those.
WEIGHT_USER = 16
WEIGHT_CATEGORY = 8
WEIGHT_APPLICATION = 4
WEIGHT_SCALE = 2
WEIGHT_TIME = 1


@dataclass(frozen=True)
class Context:
    """A concrete user working environment.

    Attributes
    ----------
    user:
        Login of the interacting user (``"juliano"`` in §4).
    category:
        The user class/partition the designer assigned (e.g.
        ``"field_engineer"``). Optional — a user may be uncategorized.
    application:
        The application domain (``"pole_manager"`` in §4).
    scale_denominator:
        Current map scale denominator (extension dimension, §3.3).
    time_tag:
        Current time frame label, e.g. ``"planning"`` vs ``"as_built"``
        (extension dimension, §3.3).
    """

    user: str | None = None
    category: str | None = None
    application: str | None = None
    scale_denominator: float | None = None
    time_tag: str | None = None

    def describe(self) -> str:
        parts = []
        if self.user:
            parts.append(f"user={self.user}")
        if self.category:
            parts.append(f"category={self.category}")
        if self.application:
            parts.append(f"application={self.application}")
        if self.scale_denominator:
            parts.append(f"scale=1:{self.scale_denominator:g}")
        if self.time_tag:
            parts.append(f"time={self.time_tag}")
        return "<" + ", ".join(parts) + ">" if parts else "<anonymous>"


@dataclass(frozen=True)
class ContextPattern:
    """A partial context used as a rule condition.

    Every non-``None`` field must match the concrete context exactly,
    except ``scale_range`` which brackets the context's scale denominator
    (inclusive).
    """

    user: str | None = None
    category: str | None = None
    application: str | None = None
    scale_range: tuple[float, float] | None = None
    time_tag: str | None = None

    def __post_init__(self) -> None:
        if self.scale_range is not None:
            low, high = self.scale_range
            if low > high or low <= 0:
                raise CustomizationError(
                    f"invalid scale range {self.scale_range!r}"
                )

    def matches(self, context: Context | None) -> bool:
        """Does this pattern accept the concrete context?

        A fully wildcard pattern matches anything, including ``None``
        (events raised outside any user session).
        """
        if context is None:
            return self.is_generic()
        if self.user is not None and context.user != self.user:
            return False
        if self.category is not None and context.category != self.category:
            return False
        if self.application is not None and context.application != self.application:
            return False
        if self.scale_range is not None:
            if context.scale_denominator is None:
                return False
            low, high = self.scale_range
            if not low <= context.scale_denominator <= high:
                return False
        if self.time_tag is not None and context.time_tag != self.time_tag:
            return False
        return True

    def is_generic(self) -> bool:
        return self.specificity() == 0

    def specificity(self) -> int:
        """The priority score: more restrictive patterns score higher."""
        score = 0
        if self.user is not None:
            score += WEIGHT_USER
        if self.category is not None:
            score += WEIGHT_CATEGORY
        if self.application is not None:
            score += WEIGHT_APPLICATION
        if self.scale_range is not None:
            score += WEIGHT_SCALE
        if self.time_tag is not None:
            score += WEIGHT_TIME
        return score

    def describe(self) -> str:
        parts = []
        if self.user:
            parts.append(f"user {self.user}")
        if self.category:
            parts.append(f"category {self.category}")
        if self.application:
            parts.append(f"application {self.application}")
        if self.scale_range:
            parts.append(f"scale 1:{self.scale_range[0]:g}..1:{self.scale_range[1]:g}")
        if self.time_tag:
            parts.append(f"time {self.time_tag}")
        return "for " + " ".join(parts) if parts else "for any context"

    @classmethod
    def generic(cls) -> "ContextPattern":
        return cls()
