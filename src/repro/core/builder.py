"""The generic interface builder.

§3.2: "The generic interface builder uses objects from the interface
library to build an interface specification. The choice of appropriate
objects is done at run time (as opposed of pre-compiled interfaces)."

The builder produces the three §3.2 interaction-window types:

* :meth:`GenericInterfaceBuilder.build_schema_window` — "Schema windows
  assume the user just wants to look at the available class names in the
  spatial database to select the desired phenomena for browsing";
* :meth:`~GenericInterfaceBuilder.build_class_window` — "Class set windows
  comprise a control and a presentation area, where the presentation area
  shows the extension of each selected class in some format (typically
  allowing the user to grasp the spatial relationships among class
  instances)";
* :meth:`~GenericInterfaceBuilder.build_instance_window` — "Instance
  windows let the user define display properties for each attribute of a
  given instance."

Each method takes the *data* (what the database returned for the event)
plus the *presentation* (the :class:`CustomizationDecision` the rule
engine produced, or ``None``) — the paper's ``(Q1, Q2) = (data,
presentation)`` pair — and assembles a window from library objects.
Without a decision, the generic (default) presentation code runs.
"""

from __future__ import annotations

from typing import Any

from .. import obs
from ..errors import CustomizationError
from ..geodb.database import GeographicDatabase
from ..geodb.instances import GeoObject
from ..geodb.query import _resolve_path
from ..geodb.schema import Attribute, GeoClass
from ..spatial.scale import MapScale
from ..uilib.base import InterfaceObject
from ..uilib.library import InterfaceObjectLibrary
from ..uilib.presentation import PresentationRegistry
from ..uilib.widgets import (
    Button,
    DrawingArea,
    ListWidget,
    Menu,
    Panel,
    Text,
    Window,
)
from .customization import (
    AttributeCustomization,
    ClassCustomization,
    CustomizationDecision,
)


class GenericInterfaceBuilder:
    """Builds Schema / Class-set / Instance windows from library objects."""

    def __init__(self, library: InterfaceObjectLibrary,
                 presentations: PresentationRegistry | None = None,
                 map_width: int = 48, map_height: int = 12):
        self.library = library
        self.presentations = presentations or PresentationRegistry()
        self.map_width = map_width
        self.map_height = map_height
        #: Application hook for the ``user-defined`` schema display mode
        #: (§3.4): a callable ``fn(window, schema_info)`` that reworks the
        #: generically built Schema window. The language names the mode;
        #: the code behind it is, per the paper, "out of the scope of the
        #: language" — it is registered here.
        self.user_defined_schema_formatter = None

    # ------------------------------------------------------------------
    # Schema window
    # ------------------------------------------------------------------

    def build_schema_window(self, schema_info: dict[str, Any],
                            decision: CustomizationDecision | None = None
                            ) -> Window:
        """Build the Schema window for a ``Get_Schema`` result.

        ``decision.schema_display``:

        * ``default`` — flat class list with instance counts;
        * ``hierarchy`` — indented inheritance tree;
        * ``user_defined`` — the generic list plus a marker property that a
          bound callback may rework;
        * ``null`` — the window is built ("since it defines the windows
          hierarchy", §4) but not shown (``visible=False``).
        """
        rec = obs.RECORDER
        if not rec.enabled:
            return self._build_schema_window(schema_info, decision)
        rec.inc("builder.windows_built", kind="schema")
        with rec.span("builder.build", kind="schema",
                      target=schema_info["name"]):
            return self._build_schema_window(schema_info, decision)

    def _build_schema_window(self, schema_info: dict[str, Any],
                             decision: CustomizationDecision | None = None
                             ) -> Window:
        mode = decision.schema_display if decision else "default"
        window = Window(
            f"schema_{schema_info['name']}",
            title=f"Schema: {schema_info['name']}",
        )
        window.set_property("window_kind", "schema")
        window.set_property("display_mode", mode)
        control = Panel("control")
        window.add_child(control)
        menu = Menu("schema_menu", label="Schema")
        menu.add_item("open", "Open")
        menu.add_item("refresh", "Refresh")
        menu.add_item("close", "Close")
        control.add_child(menu)

        class_list = ListWidget("classes", label="Classes")
        if mode == "hierarchy":
            for name, depth in _hierarchy_order(schema_info["hierarchy"]):
                count = _class_count(schema_info, name)
                class_list.add_item(name, "  " * depth + f"{name} ({count})")
        else:
            for entry in schema_info["classes"]:
                class_list.add_item(
                    entry["name"],
                    f"{entry['name']} ({entry['instance_count']})",
                )
        control.add_child(class_list)
        if mode == "user_defined":
            window.set_property("user_defined_hook", True)
            if callable(self.user_defined_schema_formatter):
                self.user_defined_schema_formatter(window, schema_info)
        if mode == "null":
            window.set_property("visible", False)
        return window

    # ------------------------------------------------------------------
    # Class-set window
    # ------------------------------------------------------------------

    def build_class_window(self, geo_class: GeoClass,
                           attributes: list[Attribute],
                           objects: list[GeoObject],
                           decision: CustomizationDecision | None = None,
                           scale: MapScale | None = None) -> Window:
        """Build the Class-set window for a ``Get_Class`` result.

        Control area: operations menu, the class schema summary, the class
        control widget (default: a labelled button; customized: any
        library widget, e.g. ``poleWidget``), and the instance list.
        Presentation area: a drawing area populated through the class
        presentation format (default ``defaultFormat``; customized e.g.
        ``pointFormat``).
        """
        rec = obs.RECORDER
        if not rec.enabled:
            return self._build_class_window(geo_class, attributes, objects,
                                            decision, scale)
        rec.inc("builder.windows_built", kind="class_set")
        with rec.span("builder.build", kind="class_set",
                      target=geo_class.name):
            return self._build_class_window(geo_class, attributes, objects,
                                            decision, scale)

    def _build_class_window(self, geo_class: GeoClass,
                            attributes: list[Attribute],
                            objects: list[GeoObject],
                            decision: CustomizationDecision | None = None,
                            scale: MapScale | None = None) -> Window:
        clause = decision.class_clause if decision else None
        window = Window(
            f"classset_{geo_class.name}",
            title=f"Class set: {geo_class.name}",
        )
        window.set_property("window_kind", "class_set")
        control = Panel("control")
        window.add_child(control)

        menu = Menu("operations", label="Operations")
        for op in ("zoom", "pan", "select", "close"):
            menu.add_item(op, op.capitalize())
        control.add_child(menu)

        spec_lines = "; ".join(
            f"{a.name}: {a.type.spec()}" for a in attributes
        )
        control.add_child(
            Text("class_schema", label="Class schema", value=spec_lines)
        )

        control.add_child(self._class_control_widget(geo_class, clause))

        instance_list = ListWidget("instances", label="Instances")
        for obj in objects:
            instance_list.add_item(obj.oid, obj.oid)
        control.add_child(instance_list)

        presentation = Panel("presentation")
        window.add_child(presentation)
        area = DrawingArea("map", width=self.map_width, height=self.map_height)
        presentation.add_child(area)

        format_name = (
            clause.presentation_format
            if clause and clause.presentation_format
            else "defaultFormat"
        )
        class_format = self.presentations.class_format(format_name)
        window.set_property("presentation_format", format_name)
        spatial = [a for a in attributes if a.is_spatial()]
        if spatial:
            geometry_attr = spatial[0].name
            class_format.place(area, objects, geometry_attr, scale=scale)
            window.set_property("geometry_attribute", geometry_attr)
        return window

    def _class_control_widget(self, geo_class: GeoClass,
                              clause: ClassCustomization | None
                              ) -> InterfaceObject:
        """The widget representing the class in the control area."""
        if clause is not None and clause.control_widget:
            if not self.library.has(clause.control_widget):
                raise CustomizationError(
                    f"control widget {clause.control_widget!r} for class "
                    f"{geo_class.name!r} is not in the interface library"
                )
            widget = self.library.create(
                clause.control_widget, f"class_widget_{geo_class.name}"
            )
            widget.set_property("represents_class", geo_class.name)
            return widget
        button = Button(
            f"class_widget_{geo_class.name}", label=geo_class.name
        )
        button.set_property("represents_class", geo_class.name)
        return button

    # ------------------------------------------------------------------
    # Instance window
    # ------------------------------------------------------------------

    def build_instance_window(
        self,
        obj: GeoObject,
        geo_class: GeoClass,
        attributes: list[Attribute],
        attr_decisions: dict[str, AttributeCustomization] | None = None,
        database: GeographicDatabase | None = None,
    ) -> Window:
        """Build the Instance window for a ``Get_Value`` result.

        One panel per effective attribute, in declaration order. Each
        attribute uses its customized format when one was decided, else
        the generic presentation ("the omitted attributes ... are
        represented with the default presentation defined in the generic
        interface", §4).
        """
        rec = obs.RECORDER
        if not rec.enabled:
            return self._build_instance_window(obj, geo_class, attributes,
                                               attr_decisions, database)
        rec.inc("builder.windows_built", kind="instance")
        with rec.span("builder.build", kind="instance", target=obj.oid):
            return self._build_instance_window(obj, geo_class, attributes,
                                               attr_decisions, database)

    def _build_instance_window(
        self,
        obj: GeoObject,
        geo_class: GeoClass,
        attributes: list[Attribute],
        attr_decisions: dict[str, AttributeCustomization] | None = None,
        database: GeographicDatabase | None = None,
    ) -> Window:
        attr_decisions = attr_decisions or {}
        window = Window(f"instance_{obj.oid}", title=f"Instance: {obj.oid}")
        window.set_property("window_kind", "instance")
        window.set_property("class_name", geo_class.name)
        body = Panel("attributes")
        window.add_child(body)

        for attribute in attributes:
            custom = attr_decisions.get(attribute.name)
            widget = self._attribute_widget(
                obj, geo_class, attribute, custom, database
            )
            if widget is None:
                continue  # format "null": attribute hidden (§4 line (12))
            panel = Panel(f"panel_{attribute.name}")
            panel.add_child(widget)
            body.add_child(panel)
        return window

    def _attribute_widget(
        self,
        obj: GeoObject,
        geo_class: GeoClass,
        attribute: Attribute,
        custom: AttributeCustomization | None,
        database: GeographicDatabase | None,
    ) -> InterfaceObject | None:
        value = obj.get(attribute.name, geo_class)
        if custom is None:
            fmt = self.presentations.attribute_format("default")
            return fmt.build(self.library, attribute.name, value)

        fmt = self.presentations.attribute_format(custom.format_name)
        options = dict(custom.options)
        if custom.sources:
            resolved = {
                _source_label(source): resolve_source(
                    database, obj, geo_class, source
                )
                for source in custom.sources
            }
            if custom.format_name == "composed_text":
                options.setdefault("fields", list(resolved))
                widget = fmt.build(self.library, attribute.name, resolved,
                                   **options)
            else:
                # Single-source formats display the first resolved value.
                first = next(iter(resolved.values())) if resolved else value
                widget = fmt.build(self.library, attribute.name, first,
                                   **options)
        else:
            widget = fmt.build(self.library, attribute.name, value, **options)
        if widget is not None and custom.using:
            apply_using_binding(widget, custom.using)
        return widget


# ---------------------------------------------------------------------------
# `from` clause source resolution and `using` clause bindings
# ---------------------------------------------------------------------------


def _source_label(source: str) -> str:
    """Display label of a source: last path segment or the method name."""
    if "(" in source:
        return source.split("(", 1)[0]
    return source.rsplit(".", 1)[-1]


def resolve_source(database: GeographicDatabase | None, obj: GeoObject,
                   geo_class: GeoClass, source: str) -> Any:
    """Resolve a ``from`` clause source against one instance.

    Two forms (both appear in paper Figure 6):

    * a dotted attribute path, e.g. ``pole_composition.pole_material``
      (the paper abbreviates the owning attribute: ``pole.material``; the
      compiler normalizes to full paths);
    * a method call ``name(arg, ...)`` where each argument is itself a
      path, e.g. ``get_supplier_name(pole_supplier)`` — requires a
      database to dispatch the method.
    """
    source = source.strip()
    if "(" in source:
        if not source.endswith(")"):
            raise CustomizationError(f"malformed source call {source!r}")
        method_name, arg_text = source[:-1].split("(", 1)
        method_name = method_name.strip()
        if database is None:
            raise CustomizationError(
                f"source {source!r} needs a database for method dispatch"
            )
        args = [
            resolve_source(database, obj, geo_class, arg.strip())
            for arg in arg_text.split(",")
            if arg.strip()
        ]
        return database.call_method(obj, method_name, *args)
    try:
        return _resolve_path(obj, geo_class, source)
    except Exception as exc:
        raise CustomizationError(
            f"cannot resolve source {source!r} on {obj.oid}: {exc}"
        ) from exc


def apply_using_binding(widget: InterfaceObject, binding: str) -> None:
    """Apply a ``using`` clause like ``composed_text.notify()``.

    The binding names a widget behavior (an event or a Python method of
    the widget) to invoke once the widget is populated — §3.4: the
    language provides "the binding of new functionality to the interface
    objects".
    """
    binding = binding.strip()
    if not binding.endswith("()"):
        raise CustomizationError(
            f"using binding {binding!r} must be a call like 'widget.event()'"
        )
    target = binding[:-2]
    __, __, behavior = target.rpartition(".")
    behavior = behavior or target
    method = getattr(widget, behavior, None)
    if callable(method):
        method()
        return
    results = widget.fire(behavior)
    if not results and behavior not in widget.bound_events():
        raise CustomizationError(
            f"widget {widget.name!r} has no behavior {behavior!r} "
            f"for binding {binding!r}"
        )


# ---------------------------------------------------------------------------
# Schema hierarchy ordering
# ---------------------------------------------------------------------------


def _hierarchy_order(tree: dict[str, list[str]]) -> list[tuple[str, int]]:
    """Flatten the superclass tree to (name, depth), roots first."""
    out: list[tuple[str, int]] = []

    def visit(name: str, depth: int) -> None:
        out.append((name, depth))
        for child in tree.get(name, ()):
            visit(child, depth + 1)

    for root in tree.get("", ()):
        visit(root, 0)
    return out


def _class_count(schema_info: dict[str, Any], class_name: str) -> int:
    for entry in schema_info["classes"]:
        if entry["name"] == class_name:
            return entry["instance_count"]
    return 0
