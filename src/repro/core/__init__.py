"""The paper's primary contribution: active customization of GIS UIs.

Contexts, customization directives, the customization rule engine, the
generic interface builder, the dispatcher, and the session façade.
"""

from .context import Context, ContextPattern
from .customization import (
    AttributeCustomization,
    ClassCustomization,
    CustomizationDecision,
    CustomizationDirective,
)
from .rule_engine import CustomizationEngine, GROUP_PREFIX
from .builder import (
    GenericInterfaceBuilder,
    apply_using_binding,
    resolve_source,
)
from .dispatcher import Dispatcher, Screen
from .kernel import GISKernel
from .query_cache import QueryResultCache
from .session import GISSession

__all__ = [
    "Context", "ContextPattern",
    "CustomizationDirective", "ClassCustomization", "AttributeCustomization",
    "CustomizationDecision",
    "CustomizationEngine", "GROUP_PREFIX",
    "GenericInterfaceBuilder", "resolve_source", "apply_using_binding",
    "Dispatcher", "Screen",
    "GISKernel",
    "GISSession",
    "QueryResultCache",
]
