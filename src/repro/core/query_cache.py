"""Snapshot-consistent query result cache for the shared kernel.

Analysis-mode panels re-issue the same queries constantly (the paper's
§2.2 explanation mode literally replays the query that produced a
window). A :class:`QueryResultCache` memoizes whole
:class:`~repro.geodb.query_engine.QueryResult` objects keyed by
``(schema, query fingerprint)`` and validates every lookup against the
MVCC commit state of the classes the query touches:

* ``GeographicDatabase._commit_locked`` bumps a per-class commit
  version (``class_version``) for every class a commit writes;
* an entry stores the version of *every class in the query's closure*
  at execution time;
* a lookup recomputes the closure (so a newly created subclass is
  noticed) and compares versions — any drift evicts the entry and
  re-executes.

Because versions only move inside the commit critical section, a cached
result is exactly the result a fresh execution against the latest
committed state would produce: the cache can never serve a read that an
MVCC snapshot opened *now* would not also see. Results are shared
objects — callers must treat them as immutable.

The cache is owned by the :class:`~repro.core.kernel.GISKernel`, so all
sessions of one kernel share hits (and all of them see invalidations,
whichever session committed).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any

from .. import obs
from ..geodb.database import GeographicDatabase
from ..geodb.query import Query
from ..geodb.query_engine import QueryEngine, QueryResult


class _Entry:
    __slots__ = ("result", "versions")

    def __init__(self, result: QueryResult, versions: dict[str, int]):
        self.result = result
        #: class name -> commit version observed when the entry was built
        self.versions = versions


class QueryResultCache:
    """LRU of query results, validated against per-class commit versions."""

    def __init__(self, database: GeographicDatabase, capacity: int = 128):
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.database = database
        self.engine = QueryEngine(database)
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, _Entry]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def execute(self, schema_name: str, query: Query) -> QueryResult:
        """The query's result — cached when still commit-consistent."""
        key = (schema_name, query.fingerprint())
        planner = self.engine.planner
        closure = planner.class_closure(schema_name, query)
        db = self.database
        versions = {
            class_name: db.class_version(schema_name, class_name)
            for class_name in closure
        }
        rec = obs.RECORDER
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                if entry.versions == versions:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    if rec.enabled:
                        rec.inc("query.cache.hit")
                    entry.result.report["cache"] = "hit"
                    return entry.result
                # A commit moved one of the touched classes (or the
                # closure itself changed): the entry is stale.
                del self._entries[key]
                self.invalidations += 1
                if rec.enabled:
                    rec.inc("query.cache.invalidation")

        self.misses += 1
        if rec.enabled:
            rec.inc("query.cache.miss")
        result = self.engine.execute(schema_name, query)
        result.report["cache"] = "miss"
        with self._lock:
            self._entries[key] = _Entry(result, versions)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        return result

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict[str, Any]:
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
        }
