"""Snapshot-consistent query result cache for the shared kernel.

Analysis-mode panels re-issue the same queries constantly (the paper's
§2.2 explanation mode literally replays the query that produced a
window). A :class:`QueryResultCache` memoizes whole
:class:`~repro.geodb.query_engine.QueryResult` objects keyed by
``(schema, query fingerprint)`` and validates every lookup against the
MVCC commit state of the classes the query touches:

* ``GeographicDatabase._commit_locked`` bumps a per-class commit
  version (``class_version``) for every class a commit writes;
* an entry stores the version of *every class in the query's closure*
  at execution time;
* a lookup recomputes the closure (so a newly created subclass is
  noticed) and compares versions — any drift evicts the entry and
  re-executes.

Because versions only move inside the commit critical section, a cached
result is exactly the result a fresh execution against the latest
committed state would produce: the cache can never serve a read that an
MVCC snapshot opened *now* would not also see. Results are shared,
immutable objects; per-call metadata (``report["cache"]``) is returned
on a shallow :meth:`~repro.geodb.query_engine.QueryResult.with_report`
view, never written into the stored result.

Concurrency:

* every counter update and every stats read happens under the cache
  lock, so ``hits + misses == lookups`` holds exactly under churn;
* concurrent identical misses are **coalesced**: the first thread
  executes, followers with the *same* observed versions wait on its
  flight and share the result (a follower that already observed newer
  versions — e.g. it just committed — starts a fresh flight instead,
  preserving read-your-own-commit);
* entry installs are freshness-guarded: an install never replaces an
  entry whose versions are strictly newer (a slow single-flight leader
  cannot clobber a delta-maintained entry the
  :class:`~repro.core.live_queries.LiveQueryManager` advanced past it).

The cache is owned by the :class:`~repro.core.kernel.GISKernel`, so all
sessions of one kernel share hits (and all of them see invalidations,
whichever session committed).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any

from .. import obs
from ..geodb.database import GeographicDatabase
from ..geodb.query import Query
from ..geodb.query_engine import QueryEngine, QueryResult


class _Entry:
    __slots__ = ("result", "versions")

    def __init__(self, result: QueryResult, versions: dict[str, int]):
        self.result = result
        #: class name -> commit version observed when the entry was built
        self.versions = versions


class _Flight:
    """One in-progress execution that identical misses can join."""

    __slots__ = ("versions", "done", "result")

    def __init__(self, versions: dict[str, int]):
        self.versions = versions
        self.done = threading.Event()
        #: set by the leader before ``done``; None means the leader
        #: failed and followers must execute for themselves
        self.result: QueryResult | None = None


class QueryResultCache:
    """LRU of query results, validated against per-class commit versions."""

    def __init__(self, database: GeographicDatabase, capacity: int = 128):
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.database = database
        self.engine = QueryEngine(database)
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, _Entry]" = OrderedDict()
        self._inflight: dict[tuple, _Flight] = {}
        self._lock = threading.Lock()
        self.lookups = 0
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        #: misses served by joining another thread's in-flight execution
        self.coalesced = 0

    @staticmethod
    def make_key(schema_name: str, query: Query) -> tuple:
        """The entry key for one query (shared with the live manager)."""
        return (schema_name, query.fingerprint())

    def observed_versions(self, schema_name: str,
                          query: Query) -> dict[str, int]:
        """Current per-class commit versions over the query's closure."""
        closure = self.engine.planner.class_closure(schema_name, query)
        db = self.database
        return {
            class_name: db.class_version(schema_name, class_name)
            for class_name in closure
        }

    def execute(self, schema_name: str, query: Query) -> QueryResult:
        """The query's result — cached when still commit-consistent.

        The returned object is a per-call view: it shares the (immutable)
        rows/objects of the stored result but owns its report, where
        ``report["cache"]`` says whether this call hit or missed.
        """
        key = self.make_key(schema_name, query)
        versions = self.observed_versions(schema_name, query)
        rec = obs.RECORDER
        with self._lock:
            self.lookups += 1
            entry = self._entries.get(key)
            if entry is not None:
                if entry.versions == versions:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    if rec.enabled:
                        rec.inc("query.cache.hit")
                    return entry.result.with_report(cache="hit")
                # A commit moved one of the touched classes (or the
                # closure itself changed): the entry is stale.
                del self._entries[key]
                self.invalidations += 1
                if rec.enabled:
                    rec.inc("query.cache.invalidation")
            self.misses += 1
            if rec.enabled:
                rec.inc("query.cache.miss")
            flight = self._inflight.get(key)
            if flight is not None and flight.versions == versions:
                # Same key, same observed commit state: join the
                # in-progress execution instead of duplicating it.
                self.coalesced += 1
                if rec.enabled:
                    rec.inc("query.cache.coalesced")
            else:
                # Lead a fresh flight. A stale flight (older versions)
                # is replaced as the join target — its leader still
                # finishes and installs behind the freshness guard.
                flight = None
                leader_flight = _Flight(versions)
                self._inflight[key] = leader_flight
        if flight is not None:
            flight.done.wait()
            if flight.result is not None:
                return flight.result.with_report(cache="coalesced")
            # The leader failed; fall through and execute independently
            # (its exception already propagated on the leading thread).
            return self.engine.execute(schema_name, query) \
                .with_report(cache="miss")

        try:
            result = self.engine.execute(schema_name, query)
        except Exception:
            with self._lock:
                if self._inflight.get(key) is leader_flight:
                    del self._inflight[key]
            leader_flight.done.set()
            raise
        leader_flight.result = result
        with self._lock:
            self._install_locked(key, _Entry(result, versions))
            if self._inflight.get(key) is leader_flight:
                del self._inflight[key]
        leader_flight.done.set()
        return result.with_report(cache="miss")

    # ------------------------------------------------------------------
    # Maintained entries (live query manager)
    # ------------------------------------------------------------------

    def put_maintained(self, key: tuple, result: QueryResult,
                       versions: dict[str, int]) -> None:
        """Install a delta-maintained result at its advanced versions.

        Subject to the same freshness guard as miss installs, so a
        racing full execution and a delta application converge on the
        newer of the two.
        """
        with self._lock:
            self._install_locked(key, _Entry(result, versions))

    def entry_versions(self, key: tuple) -> dict[str, int] | None:
        """The stored versions for ``key`` (None when absent)."""
        with self._lock:
            entry = self._entries.get(key)
            return dict(entry.versions) if entry is not None else None

    def _install_locked(self, key: tuple, entry: _Entry) -> None:
        """Insert/replace behind the freshness guard; caller holds lock."""
        existing = self._entries.get(key)
        if existing is not None and self._strictly_fresher(
                existing.versions, entry.versions):
            return
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    @staticmethod
    def _strictly_fresher(a: dict[str, int], b: dict[str, int]) -> bool:
        """True when ``a`` covers every class of ``b`` at >= versions and
        is newer somewhere — i.e. replacing ``a`` with ``b`` would move
        the entry backwards in commit time."""
        if a == b:
            return False
        return all(cls in a and a[cls] >= ver for cls, ver in b.items())

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "lookups": self.lookups,
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "coalesced": self.coalesced,
            }
