"""Scenario sandboxes for the *simulation* interaction mode.

§2.2: "Other common interaction modes include simulation, where users
build scenarios to test their hypotheses." A :class:`Scenario` is a
hypothetical overlay on a database: updates applied inside it are visible
to scenario reads and scenario queries, but the underlying database is
untouched until (and unless) the scenario is committed.

Implementation: the scenario keeps an overlay of staged object states
(the same values-dict model transactions use) and answers reads by
merging overlay over base. Committing replays the staged operations as
one real transaction (so integrity rules and events fire normally);
discarding simply drops the overlay.

Example::

    with db.scenario() as what_if:
        what_if.update(pole, {"pole_location": Point(500, 500)})
        hits = what_if.run_query("phone_net",
            "select * from Pole where within(pole_location, bbox(...))")
        ...  # inspect the hypothetical world
        what_if.discard()       # or what_if.commit()
"""

from __future__ import annotations

from typing import Any, Iterator

from ..errors import ObjectNotFoundError, SessionError
from .instances import GeoObject, fresh_oid
from .query import Query
from .query_engine import QueryResult


class Scenario:
    """A hypothetical, discardable view over a database schema's data."""

    def __init__(self, database, schema_name: str):
        self.database = database
        self.schema_name = schema_name
        self.database.get_schema_object(schema_name)  # fail fast
        #: oid -> staged values dict, or None for hypothetically deleted
        self._overlay: dict[str, dict[str, Any] | None] = {}
        #: (op, class_name, oid, values) replay log for commit
        self._log: list[tuple[str, str, str, dict[str, Any] | None]] = []
        self._closed = False

    # -- guards ------------------------------------------------------------------

    def _require_open(self) -> None:
        if self._closed:
            raise SessionError("this scenario is already closed")

    # -- hypothetical mutations -----------------------------------------------------

    def insert(self, class_name: str, values: dict[str, Any],
               oid: str | None = None) -> str:
        self._require_open()
        schema = self.database.get_schema_object(self.schema_name)
        GeoObject.create(schema, class_name, values, oid="staged#0")
        new_oid = oid or fresh_oid(class_name)
        if self.exists(new_oid):
            raise SessionError(f"oid {new_oid} already exists in scenario")
        self._overlay[new_oid] = dict(values)
        self._log.append(("insert", class_name, new_oid, dict(values)))
        return new_oid

    def update(self, oid: str, changes: dict[str, Any]) -> None:
        self._require_open()
        current = self.values_of(oid)
        if current is None:
            raise ObjectNotFoundError(f"object {oid} does not exist "
                                      f"in this scenario")
        class_name = self._class_of(oid)
        schema = self.database.get_schema_object(self.schema_name)
        probe = GeoObject(oid, class_name, current)
        probe.update(schema, changes)   # validate types/required
        self._overlay[oid] = probe.values()
        self._log.append(("update", class_name, oid, dict(changes)))

    def delete(self, oid: str) -> None:
        self._require_open()
        if not self.exists(oid):
            raise ObjectNotFoundError(f"object {oid} does not exist "
                                      f"in this scenario")
        class_name = self._class_of(oid)
        self._overlay[oid] = None
        self._log.append(("delete", class_name, oid, None))

    # -- hypothetical reads ------------------------------------------------------------

    def _class_of(self, oid: str) -> str:
        location = self.database.locate_object(oid)
        if location is not None:
            return location[1]
        for op, class_name, logged_oid, __ in self._log:
            if logged_oid == oid and op == "insert":
                return class_name
        raise ObjectNotFoundError(f"object {oid} is unknown to the scenario")

    def exists(self, oid: str) -> bool:
        if oid in self._overlay:
            return self._overlay[oid] is not None
        return self.database.find_object(oid) is not None

    def values_of(self, oid: str) -> dict[str, Any] | None:
        """Attribute values in the hypothetical world (None if absent)."""
        if oid in self._overlay:
            staged = self._overlay[oid]
            return dict(staged) if staged is not None else None
        obj = self.database.find_object(oid)
        return obj.values() if obj is not None else None

    def get_object(self, oid: str) -> GeoObject:
        values = self.values_of(oid)
        if values is None:
            raise ObjectNotFoundError(f"object {oid} does not exist "
                                      f"in this scenario")
        return GeoObject(oid, self._class_of(oid), values)

    def extent(self, class_name: str) -> Iterator[GeoObject]:
        """The class extension as the hypothetical world sees it."""
        self._require_open()
        seen: set[str] = set()
        for obj in self.database.extent(self.schema_name, class_name):
            seen.add(obj.oid)
            staged = self._overlay.get(obj.oid, "absent")
            if staged is None:
                continue  # hypothetically deleted
            if staged == "absent":
                yield obj
            else:
                yield GeoObject(obj.oid, class_name, staged)
        for oid, staged in self._overlay.items():
            if oid in seen or staged is None:
                continue
            if self._class_of(oid) == class_name:
                yield GeoObject(oid, class_name, staged)

    def execute(self, query: Query) -> QueryResult:
        """Run a declarative query against the hypothetical extension.

        Always a full scan over the scenario view (the base indexes do not
        know about the overlay) — correct, and fine at simulation scales.
        """
        self._require_open()
        schema = self.database.get_schema_object(self.schema_name)
        geo_class = schema.get_class(query.class_name)
        class_names = [query.class_name]
        if query.include_subclasses:
            pending = [query.class_name]
            class_names = []
            while pending:
                current = pending.pop()
                class_names.append(current)
                pending.extend(schema.subclasses(current))
        candidates: list[GeoObject] = []
        for name in class_names:
            candidates.extend(self.extent(name))
        matches = [o for o in candidates if query.where.matches(o, geo_class)]
        from .query_engine import QueryEngine

        engine = QueryEngine(self.database)
        matches = engine._order(matches, geo_class, query)
        if query.limit is not None:
            matches = matches[: query.limit]
        rows = engine._project(matches, geo_class, query)
        report = {"plan": "scenario-scan", "index": None,
                  "candidates": len(candidates), "matches": len(matches)}
        return QueryResult(query, matches, rows, report)

    def run_query(self, text: str) -> QueryResult:
        """Textual analysis query evaluated in the hypothetical world."""
        from .query_language import parse_query

        return self.execute(parse_query(text))

    # -- resolution ---------------------------------------------------------------------

    def commit(self) -> int:
        """Make the hypothesis real: replay the log as one transaction.

        Integrity rules and events fire as for any other transaction; a
        veto aborts the whole scenario application. Returns the number of
        operations applied.
        """
        self._require_open()
        with self.database.transaction() as txn:
            for op, __, oid, values in self._log:
                if op == "insert":
                    txn.insert(self.schema_name, self._class_of(oid),
                               values or {}, oid=oid)
                elif op == "update":
                    txn.update(oid, values or {})
                else:
                    txn.delete(oid)
        applied = len(self._log)
        self._closed = True
        return applied

    def discard(self) -> None:
        """Drop the hypothesis; the database was never touched."""
        self._require_open()
        self._overlay.clear()
        self._log.clear()
        self._closed = True

    @property
    def pending_operations(self) -> int:
        return len(self._log)

    def __enter__(self) -> "Scenario":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self._closed:
            self.discard()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (f"<Scenario on {self.schema_name!r}, "
                f"{len(self._log)} ops, {state}>")
