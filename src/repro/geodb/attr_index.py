"""Attribute (hash) indexes for equality predicates.

The spatial R-trees accelerate the map-display path; analysis-mode
queries also filter on conventional attributes (``pole_type = 1``,
``status = 'maintenance'``). A :class:`HashIndex` maps attribute values
to oid sets and is maintained by the database on every commit; the query
engine consults it for top-level (or conjunctive) ``=`` / ``in``
predicates.

Only hashable scalar values are indexed; ``None`` (attribute unset) is
not an index key — equality with ``None`` falls back to scanning, which
matches the predicate semantics (absent attributes never match ``=``).
"""

from __future__ import annotations

from typing import Any, Iterable

from ..errors import IndexError_


def _indexable(value: Any) -> bool:
    return isinstance(value, (int, float, str, bool)) and value is not None


#: Shared empty bucket returned by :meth:`HashIndex.lookup_view` misses;
#: frozen so an accidental mutation raises instead of corrupting state.
_EMPTY_BUCKET: frozenset = frozenset()


class HashIndex:
    """value -> set of oids, for one attribute of one class."""

    def __init__(self, attr: str):
        self.attr = attr
        self._buckets: dict[Any, set[str]] = {}
        self._size = 0

    def insert(self, value: Any, oid: str) -> None:
        if not _indexable(value):
            return
        bucket = self._buckets.setdefault(value, set())
        if oid in bucket:
            raise IndexError_(
                f"oid {oid} already indexed under {self.attr}={value!r}"
            )
        bucket.add(oid)
        self._size += 1

    def delete(self, value: Any, oid: str) -> None:
        if not _indexable(value):
            return
        bucket = self._buckets.get(value)
        if bucket is None or oid not in bucket:
            raise IndexError_(
                f"oid {oid} not indexed under {self.attr}={value!r}"
            )
        bucket.discard(oid)
        if not bucket:
            del self._buckets[value]
        self._size -= 1

    def lookup(self, value: Any) -> set[str]:
        """A **copy** of the bucket for ``value`` (safe to mutate)."""
        if not _indexable(value):
            return set()
        return set(self._buckets.get(value, ()))

    def lookup_view(self, value: Any) -> "frozenset[str] | set[str]":
        """The bucket for ``value`` without copying it.

        This is the executor's path: the query engine iterates the
        bucket once per probe and materializing a per-call copy showed
        up in the C11 profile. The returned object is the index's
        **live internal set** (or a shared empty frozenset) — callers
        must not mutate it and must not hold it across index mutations;
        external code should use :meth:`lookup` instead.
        """
        if not _indexable(value):
            return _EMPTY_BUCKET
        return self._buckets.get(value, _EMPTY_BUCKET)

    def lookup_many(self, values: Iterable[Any]) -> set[str]:
        out: set[str] = set()
        for value in values:
            out |= self.lookup_view(value)
        return out

    def __len__(self) -> int:
        return self._size

    def distinct_values(self) -> int:
        return len(self._buckets)

    def stats(self) -> dict[str, Any]:
        sizes = [len(b) for b in self._buckets.values()]
        return {
            "attr": self.attr,
            "entries": self._size,
            "distinct_values": len(sizes),
            "max_bucket": max(sizes) if sizes else 0,
        }
