"""Transactions over the geographic database.

Every transaction runs under **snapshot isolation**: at begin it takes a
snapshot timestamp from the database, and all of its reads
(:meth:`Transaction.read`, :meth:`Transaction.query`,
:meth:`Transaction.staged_value`) observe the database exactly as of
that timestamp — concurrent commits stay invisible — merged with the
transaction's *own* staged writes (read-your-writes).

Updates are buffered as *write intents* and applied atomically at commit:

1. **first-committer-wins validation**: if any transaction that
   committed after this one's snapshot wrote an overlapping oid, commit
   raises :class:`~repro.errors.TransactionConflictError` and the
   transaction aborts (callers retry with a fresh snapshot);
2. every intent is validated against schema types and referential
   integrity;
3. *pre-commit* mutation events (``phase="validate"``) are published so
   active integrity rules — the paper's [11] prototype "maintaining
   topological constraints in the gis" — can veto the transaction by
   raising :class:`~repro.errors.ConstraintViolationError`;
4. intents are applied to extents, the heap file and the spatial
   indexes, a new version per touched oid is recorded at the commit
   timestamp, and the write-ahead log's commit record carries that
   timestamp;
5. *post-commit* mutation events (``phase="commit"``, tagged with the
   commit timestamp and the originating session) are published for
   customization and refresh rules.

Aborting simply drops the intent buffer; nothing was applied.
"""

from __future__ import annotations

import threading
import weakref
from enum import Enum
from typing import Any

from ..errors import ObjectNotFoundError, TransactionError
from .instances import GeoObject, fresh_oid

# Transaction ids must stay unique when sessions commit from worker
# threads; a plain ``itertools.count`` offers no such guarantee across
# implementations, so allocation takes a (tiny) explicit lock.
_txn_id_lock = threading.Lock()
_next_txn_id = 0


def _allocate_txn_id() -> int:
    global _next_txn_id
    with _txn_id_lock:
        _next_txn_id += 1
        return _next_txn_id


class TxnState(Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class _Intent:
    """One buffered mutation."""

    __slots__ = ("op", "schema_name", "class_name", "oid", "values")

    def __init__(self, op: str, schema_name: str, class_name: str, oid: str,
                 values: dict[str, Any] | None):
        self.op = op  # "insert" | "update" | "delete"
        self.schema_name = schema_name
        self.class_name = class_name
        self.oid = oid
        self.values = values

    def __repr__(self) -> str:
        return f"<{self.op} {self.oid}>"


class Transaction:
    """A unit of atomic mutation against a :class:`GeographicDatabase`.

    Usable as a context manager: the block commits on normal exit and
    aborts on exception::

        with db.transaction() as txn:
            txn.insert("phone_net", "Pole", {...})

    ``snapshot_ts`` is the commit timestamp the transaction's reads are
    pinned to; ``session_id`` (set by
    :meth:`repro.core.kernel.GISKernel.transaction`) tags the commit's
    mutation events with the originating session.
    """

    __slots__ = ("database", "txn_id", "session_id", "state", "_intents",
                 "snapshot_ts", "_fast", "_chains", "_db_locations",
                 "_db_extents", "_finalizer", "_durable_ticket",
                 "commit_ts", "_on_commit", "__weakref__")

    def __init__(self, database, session_id: str | None = None):
        self.database = database
        self.txn_id = _allocate_txn_id()
        self.session_id = session_id
        self.state = TxnState.ACTIVE
        self._intents: list[_Intent] = []
        #: group-commit ticket of a commit(wait_durable=False), until waited
        self._durable_ticket = None
        #: commit timestamp (the replication LSN) once committed; the
        #: kernel's read-your-writes routing waits for a replica to reach
        #: it before serving the session's next replica read
        self.commit_ts: int | None = None
        #: optional callable(commit_ts) invoked right after a successful
        #: commit (set by GISKernel.transaction to track session LSNs)
        self._on_commit = None
        #: all reads observe the database as of this commit timestamp
        self.snapshot_ts: int = database._begin_snapshot(self)
        # A transaction abandoned without commit()/abort() must not pin
        # the GC watermark forever: release the snapshot when the object
        # is collected. commit()/abort() call the finalizer explicitly
        # (it runs once, whichever comes first).
        self._finalizer = weakref.finalize(
            self, database._release_snapshot_id, self.txn_id
        )
        # Hot-path read support: ``_fast`` is True exactly while the
        # transaction is ACTIVE with no staged writes (the read-only
        # common case); the dict references let :meth:`read` skip the
        # attribute chains through the database. All three dicts are
        # mutated in place, never replaced, so the aliases stay valid.
        self._fast = True
        self._chains = database._mvcc._chains
        self._db_locations = database._locations
        self._db_extents = database._extents

    # -- protocol guards ------------------------------------------------------

    def _require_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionError(
                f"transaction {self.txn_id} is {self.state.value}; "
                "no further operations are allowed"
            )

    # -- snapshot + staged view ------------------------------------------------

    def read(self, oid: str) -> dict[str, Any] | None:
        """The attribute values of ``oid`` as this transaction sees them.

        Snapshot-consistent: concurrent commits are invisible; the
        transaction's own staged writes are visible (read-your-writes).
        ``None`` when the object does not exist in this view.
        """
        # Hot path — a read-only transaction over chain-less (stable)
        # objects must stay within 1.5x of the raw extent read, so the
        # common case is inlined: active, no staged writes (one flag
        # check), no version chain — answer from the current committed
        # state, which chain-lessness proves equals the snapshot state.
        # The extent fall-through is bracketed by the database's
        # mutation seqlock (sampled *before* the chain check): a commit
        # seeds chains for its write set before going odd, so either
        # the chain routes the read to the snapshot version, or the
        # re-check sees the seqlock move and retries; a persistent
        # commit stream degrades to a locked read.
        if self._fast:
            db = self.database
            seq = db._mutation_seq
            if oid in self._chains:
                return db._snapshot_values(oid, self.snapshot_ts)
            location = self._db_locations.get(oid)
            if location is None:
                values = None
            else:
                obj = self._db_extents[location].get(oid)
                values = None if obj is None else obj.values()
            if db._mutation_seq == seq:
                return values
            # Contended: a commit moved the seqlock mid-read. Resolve
            # through the database's retrying snapshot read.
            return db._snapshot_values(oid, self.snapshot_ts)
        self._require_active()
        return self.staged_value(oid)

    def exists(self, oid: str) -> bool:
        """Whether ``oid`` exists in this transaction's view."""
        return self.read(oid) is not None

    def query(self, schema_name: str, class_name: str
              ) -> dict[str, dict[str, Any]]:
        """All live objects of one class in this transaction's view.

        Returns ``oid -> values`` over the snapshot, overlaid with this
        transaction's staged inserts/updates/deletes of that class.
        Subclass extents are not merged in; query each class explicitly.
        """
        self._require_active()
        db = self.database
        db.get_schema_object(schema_name).get_class(class_name)
        # Candidate collection scans the live extent dict, which a
        # concurrent commit may be mutating: validate the scan with the
        # mutation seqlock (retrying on a change or a mid-resize
        # RuntimeError), falling back to the commit lock. Per-oid value
        # resolution below is snapshot-safe on its own.
        for __ in range(8):
            seq = db._mutation_seq
            try:
                candidates = set(db.extent(schema_name, class_name).oids())
                candidates |= db._mvcc.class_oids(schema_name, class_name)
            except RuntimeError:
                continue
            if db._mutation_seq == seq:
                break
        else:
            with db._commit_lock:
                candidates = set(db.extent(schema_name, class_name).oids())
                candidates |= db._mvcc.class_oids(schema_name, class_name)
        out: dict[str, dict[str, Any]] = {}
        for oid in candidates:
            values = db._snapshot_values(oid, self.snapshot_ts)
            if values is not None:
                out[oid] = values
        for intent in self._intents:
            if (intent.schema_name, intent.class_name) != (schema_name,
                                                           class_name):
                continue
            merged = self.staged_value(intent.oid)
            if merged is None:
                out.pop(intent.oid, None)
            else:
                out[intent.oid] = merged
        return out

    def staged_value(self, oid: str) -> dict[str, Any] | None:
        """The attribute values ``oid`` would have after this transaction.

        ``None`` when the object would not exist (deleted, or never
        created). Reads through to the transaction's *snapshot* for
        untouched objects — never to state committed after begin.
        """
        values = self.database._snapshot_values(oid, self.snapshot_ts)
        for intent in self._intents:
            if intent.oid != oid:
                continue
            if intent.op == "insert":
                values = dict(intent.values or {})
            elif intent.op == "update" and values is not None:
                for name, val in (intent.values or {}).items():
                    if val is None:
                        values.pop(name, None)
                    else:
                        values[name] = val
            elif intent.op == "delete":
                values = None
        return values

    def staged_exists(self, oid: str) -> bool:
        return self.staged_value(oid) is not None

    # -- mutations -------------------------------------------------------------

    def insert(self, schema_name: str, class_name: str,
               values: dict[str, Any], oid: str | None = None) -> str:
        """Stage the creation of a new object; returns its oid."""
        self._require_active()
        self.database._require_writable("insert")
        schema = self.database.get_schema_object(schema_name)
        schema.get_class(class_name)  # existence check, raises SchemaError
        # Validate types eagerly so errors surface at the call site.
        GeoObject.create(schema, class_name, values, oid="staged#0")
        new_oid = oid or fresh_oid(class_name)
        if self.staged_exists(new_oid):
            raise TransactionError(f"oid {new_oid} already exists")
        self._fast = False
        self._intents.append(
            _Intent("insert", schema_name, class_name, new_oid, dict(values))
        )
        return new_oid

    def update(self, oid: str, changes: dict[str, Any]) -> None:
        """Stage attribute changes; ``None`` values unset optional attributes."""
        self._require_active()
        self.database._require_writable("update")
        if not changes:
            raise TransactionError("update needs at least one change")
        location = self._locate(oid)
        if location is None:
            raise ObjectNotFoundError(f"object {oid} does not exist")
        if not self.staged_exists(oid):
            # Staged-deleted earlier in this transaction: fail at the call
            # site instead of blowing up (half-applied) at commit.
            raise ObjectNotFoundError(
                f"object {oid} is deleted in this transaction"
            )
        schema_name, class_name = location
        schema = self.database.get_schema_object(schema_name)
        merged = self.staged_value(oid) or {}
        probe = GeoObject(oid, class_name, merged)
        probe.update(schema, changes)  # type-checks and required-attr checks
        self._fast = False
        self._intents.append(
            _Intent("update", schema_name, class_name, oid, dict(changes))
        )

    def delete(self, oid: str) -> None:
        self._require_active()
        self.database._require_writable("delete")
        location = self._locate(oid)
        if location is None:
            raise ObjectNotFoundError(f"object {oid} does not exist")
        schema_name, class_name = location
        if not self.staged_exists(oid):
            raise ObjectNotFoundError(f"object {oid} is already deleted")
        self._fast = False
        self._intents.append(_Intent("delete", schema_name, class_name, oid, None))

    def _locate(self, oid: str) -> tuple[str, str] | None:
        """(schema, class) of an object in this transaction's view."""
        for intent in reversed(self._intents):
            if intent.oid == oid and intent.op == "insert":
                return (intent.schema_name, intent.class_name)
        return self.database._snapshot_locate(oid, self.snapshot_ts)

    # -- termination -------------------------------------------------------------

    def commit(self, wait_durable: bool = True) -> None:
        """Apply the staged intents atomically.

        ``wait_durable=False`` returns as soon as the commit is applied
        and its log batch is *staged* in the write-ahead log, without
        waiting for the group-commit barrier; call :meth:`wait_durable`
        afterwards to block until the batch is on stable storage. The
        serving layer uses this to overlap one connection's fsync wait
        with other connections' commits.
        """
        self._require_active()
        self._fast = False
        self._durable_ticket = None
        try:
            self._durable_ticket = self.database._commit_transaction(
                self, wait_durable=wait_durable
            )
        except Exception:
            # Match abort(): an ABORTED transaction holds no staged writes,
            # so staged_value()/intents never report phantom state.
            self._intents.clear()
            self.state = TxnState.ABORTED
            self._finalizer()
            raise
        self.state = TxnState.COMMITTED
        self._finalizer()

    def wait_durable(self) -> None:
        """Block until a ``commit(wait_durable=False)`` is on disk.

        No-op for a transaction committed with the default blocking
        commit, without a WAL, or already waited on. Raises
        :class:`~repro.errors.WALError` if the log was damaged before
        the batch could be covered by a barrier.
        """
        ticket, self._durable_ticket = self._durable_ticket, None
        if ticket is not None:
            self.database.wal.wait_durable(ticket)

    def abort(self) -> None:
        self._require_active()
        self._fast = False
        self._intents.clear()
        self.state = TxnState.ABORTED
        self._finalizer()

    @property
    def intents(self) -> list[_Intent]:
        return list(self._intents)

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.state is not TxnState.ACTIVE:
            return
        if exc_type is None:
            self.commit()
        else:
            self.abort()

    def __repr__(self) -> str:
        return (
            f"<Transaction {self.txn_id} {self.state.value} "
            f"snap={self.snapshot_ts}, {len(self._intents)} intents>"
        )
