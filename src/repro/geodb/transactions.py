"""Transactions over the geographic database.

Updates are buffered as *write intents* and applied atomically at commit:

1. every intent is validated against schema types and referential
   integrity;
2. *pre-commit* mutation events (``phase="validate"``) are published so
   active integrity rules — the paper's [11] prototype "maintaining
   topological constraints in the gis" — can veto the transaction by
   raising :class:`~repro.errors.ConstraintViolationError`;
3. intents are applied to extents, the heap file and the spatial indexes;
4. *post-commit* mutation events (``phase="commit"``) are published for
   customization and refresh rules.

Aborting simply drops the intent buffer; nothing was applied.
"""

from __future__ import annotations

import itertools
from enum import Enum
from typing import Any

from ..errors import ObjectNotFoundError, TransactionError
from .instances import GeoObject, fresh_oid

_txn_ids = itertools.count(1)


class TxnState(Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class _Intent:
    """One buffered mutation."""

    __slots__ = ("op", "schema_name", "class_name", "oid", "values")

    def __init__(self, op: str, schema_name: str, class_name: str, oid: str,
                 values: dict[str, Any] | None):
        self.op = op  # "insert" | "update" | "delete"
        self.schema_name = schema_name
        self.class_name = class_name
        self.oid = oid
        self.values = values

    def __repr__(self) -> str:
        return f"<{self.op} {self.oid}>"


class Transaction:
    """A unit of atomic mutation against a :class:`GeographicDatabase`.

    Usable as a context manager: the block commits on normal exit and
    aborts on exception::

        with db.transaction() as txn:
            txn.insert("phone_net", "Pole", {...})
    """

    def __init__(self, database):
        self.database = database
        self.txn_id = next(_txn_ids)
        self.state = TxnState.ACTIVE
        self._intents: list[_Intent] = []

    # -- protocol guards ------------------------------------------------------

    def _require_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionError(
                f"transaction {self.txn_id} is {self.state.value}; "
                "no further operations are allowed"
            )

    # -- staged view -----------------------------------------------------------

    def staged_value(self, oid: str) -> dict[str, Any] | None:
        """The attribute values ``oid`` would have after this transaction.

        ``None`` when the object would not exist (deleted, or never created).
        Reads through to committed state for untouched objects.
        """
        values: dict[str, Any] | None = None
        committed = self.database.find_object(oid)
        if committed is not None:
            values = committed.values()
        for intent in self._intents:
            if intent.oid != oid:
                continue
            if intent.op == "insert":
                values = dict(intent.values or {})
            elif intent.op == "update" and values is not None:
                for name, val in (intent.values or {}).items():
                    if val is None:
                        values.pop(name, None)
                    else:
                        values[name] = val
            elif intent.op == "delete":
                values = None
        return values

    def staged_exists(self, oid: str) -> bool:
        return self.staged_value(oid) is not None

    # -- mutations -------------------------------------------------------------

    def insert(self, schema_name: str, class_name: str,
               values: dict[str, Any], oid: str | None = None) -> str:
        """Stage the creation of a new object; returns its oid."""
        self._require_active()
        schema = self.database.get_schema_object(schema_name)
        schema.get_class(class_name)  # existence check, raises SchemaError
        # Validate types eagerly so errors surface at the call site.
        GeoObject.create(schema, class_name, values, oid="staged#0")
        new_oid = oid or fresh_oid(class_name)
        if self.staged_exists(new_oid):
            raise TransactionError(f"oid {new_oid} already exists")
        self._intents.append(
            _Intent("insert", schema_name, class_name, new_oid, dict(values))
        )
        return new_oid

    def update(self, oid: str, changes: dict[str, Any]) -> None:
        """Stage attribute changes; ``None`` values unset optional attributes."""
        self._require_active()
        if not changes:
            raise TransactionError("update needs at least one change")
        location = self._locate(oid)
        if location is None:
            raise ObjectNotFoundError(f"object {oid} does not exist")
        if not self.staged_exists(oid):
            # Staged-deleted earlier in this transaction: fail at the call
            # site instead of blowing up (half-applied) at commit.
            raise ObjectNotFoundError(
                f"object {oid} is deleted in this transaction"
            )
        schema_name, class_name = location
        schema = self.database.get_schema_object(schema_name)
        merged = self.staged_value(oid) or {}
        probe = GeoObject(oid, class_name, merged)
        probe.update(schema, changes)  # type-checks and required-attr checks
        self._intents.append(
            _Intent("update", schema_name, class_name, oid, dict(changes))
        )

    def delete(self, oid: str) -> None:
        self._require_active()
        location = self._locate(oid)
        if location is None:
            raise ObjectNotFoundError(f"object {oid} does not exist")
        schema_name, class_name = location
        if not self.staged_exists(oid):
            raise ObjectNotFoundError(f"object {oid} is already deleted")
        self._intents.append(_Intent("delete", schema_name, class_name, oid, None))

    def _locate(self, oid: str) -> tuple[str, str] | None:
        """(schema, class) of an object, considering staged inserts."""
        for intent in reversed(self._intents):
            if intent.oid == oid and intent.op == "insert":
                return (intent.schema_name, intent.class_name)
        return self.database.locate_object(oid)

    # -- termination -------------------------------------------------------------

    def commit(self) -> None:
        self._require_active()
        try:
            self.database._commit_transaction(self)
        except Exception:
            # Match abort(): an ABORTED transaction holds no staged writes,
            # so staged_value()/intents never report phantom state.
            self._intents.clear()
            self.state = TxnState.ABORTED
            raise
        self.state = TxnState.COMMITTED

    def abort(self) -> None:
        self._require_active()
        self._intents.clear()
        self.state = TxnState.ABORTED

    @property
    def intents(self) -> list[_Intent]:
        return list(self._intents)

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.state is not TxnState.ACTIVE:
            return
        if exc_type is None:
            self.commit()
        else:
            self.abort()

    def __repr__(self) -> str:
        return (
            f"<Transaction {self.txn_id} {self.state.value}, "
            f"{len(self._intents)} intents>"
        )
