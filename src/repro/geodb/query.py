"""Query model: declarative predicates over class extents.

§2.1: "Database queries may be standard or return data on spatial
properties and relationships." The model mirrors that split:

* :class:`Comparison` — standard attribute predicates (``=``, ``<``,
  ``like`` ...), including dotted paths into tuple attributes
  (``pole_composition.pole_material = 'wood'``).
* :class:`SpatialPredicate` — a named topological relation against a probe
  geometry (``touches``, ``within`` ...), and :class:`WithinDistance` for
  metric proximity.
* :class:`And` / :class:`Or` / :class:`Not` — boolean combinators.

Predicates are pure descriptions; execution (and index selection) lives in
:mod:`repro.geodb.query_engine`.

Each predicate also **compiles** (:meth:`Predicate.compile`) into a
plain ``obj -> bool`` closure for the executor's refine loop: attribute
paths are resolved, operator dispatch is bound, and ``like`` needles are
lowercased *once per query* instead of once per row. The interpreted
:meth:`Predicate.matches` path is kept for external callers and as the
compilation fallback for predicate subclasses that do not override
``compile``; both paths implement identical semantics (unresolvable
paths and uncomparable values are non-matches, never errors).

For column-eligible scans there is a third form:
:meth:`Predicate.compile_columns` fuses the predicate tree into a
**column kernel** — ``rows -> surviving rows`` over the position lists
of a :class:`~repro.geodb.columns.ClassColumns` snapshot. Kernels never
touch a :class:`~repro.geodb.instances.GeoObject`: comparisons run as
list comprehensions over pre-resolved value columns, conjunctions
narrow the row list term by term, and spatial predicates reject on a
packed bbox column before evaluating any geometry. Semantics are
identical to the row closures by construction (the property suite in
``tests/test_properties_columns.py`` pins the equivalence).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from ..errors import QueryError
from ..spatial.geometry import BBox, Geometry
from ..spatial.topology import PREDICATES
from ..spatial.algorithms import geometry_distance
from .instances import GeoObject
from .schema import GeoClass


class _Missing:
    """Sentinel for "the attribute path does not resolve on this object"."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<missing>"


#: Returned by compiled accessors where the interpreted path would have
#: raised :class:`~repro.errors.QueryError` (dotted path into a
#: non-tuple, or a missing tuple field).
MISSING = _Missing()


def match_all(obj: GeoObject) -> bool:
    """The compiled form of :class:`TruePredicate`.

    Exposed as a well-known function object so the executor can detect
    "no filtering needed" (``compiled is match_all``) and skip the
    refine loop entirely on browse queries.
    """
    return True


def compile_path(path: str, geo_class: GeoClass):
    """Compile an attribute path into an ``obj -> value`` accessor.

    The path is parsed and the class-level default lookup is resolved
    **once**; the returned closure does one dict probe per call. Where
    :func:`_resolve_path` raises :class:`~repro.errors.QueryError`
    (dotted path through a non-tuple value, missing tuple field) the
    accessor returns :data:`MISSING` instead — callers translate that to
    "no match" / ``None`` exactly like their interpreted counterparts.
    """
    head, __, rest = path.partition(".")
    if geo_class.has_attribute(head):
        default = geo_class.attribute(head).type.default
    else:
        default = None
    if not rest:
        if default is None:
            def accessor(obj: GeoObject):
                return obj._values.get(head)
        else:
            def accessor(obj: GeoObject):
                values = obj._values
                if head in values:
                    return values[head]
                return default()
        return accessor

    fields = rest.split(".")

    def dotted(obj: GeoObject):
        values = obj._values
        if head in values:
            value = values[head]
        elif default is not None:
            value = default()
        else:
            value = None
        for field in fields:
            if not isinstance(value, dict) or field not in value:
                return MISSING
            value = value[field]
        return value

    return dotted


class Predicate:
    """Base class for all predicate nodes."""

    def matches(self, obj: GeoObject, geo_class: GeoClass) -> bool:
        raise NotImplementedError

    def compile(self, geo_class: GeoClass) -> Callable[[GeoObject], bool]:
        """An ``obj -> bool`` closure with paths/operators pre-resolved.

        The base implementation falls back to the interpreted
        :meth:`matches`, so predicate subclasses defined outside this
        module keep working unchanged.
        """
        matches = self.matches

        def fallback(obj: GeoObject) -> bool:
            return matches(obj, geo_class)

        return fallback

    def compile_columns(self, geo_class: GeoClass, columns):
        """A fused column kernel: ``rows -> surviving row positions``.

        ``columns`` is a :class:`~repro.geodb.columns.ClassColumns`
        snapshot; the returned kernel takes an iterable of row positions
        and returns the order-preserved subsequence that satisfies the
        predicate. Column lookups happen here, at compile time, so
        kernels are safe to run from scatter worker threads.

        The base implementation evaluates the row closure against the
        aligned object snapshot, so predicate subclasses defined outside
        this module stay correct on the column path too.
        """
        row_match = self.compile(geo_class)
        objects = columns.objects

        def fallback(rows):
            return [i for i in rows if row_match(objects[i])]

        return fallback

    def spatial_prefilter(self) -> "tuple[str, BBox] | None":
        """``(attr_name, bbox)`` usable as an index prefilter, or None.

        A conjunction returns the first prefilter of any branch; other
        combinators return None (they cannot guarantee the filter is
        necessary).
        """
        return None

    def equality_prefilter(self) -> "tuple[str, list] | None":
        """``(attr_name, candidate_values)`` for a hash-index lookup.

        Only exposed by ``=`` / ``in`` comparisons on plain (non-dotted)
        attribute names, and propagated through conjunctions.
        """
        return None

    def describe(self) -> str:
        raise NotImplementedError

    def __and__(self, other: "Predicate") -> "And":
        return And([self, other])

    def __or__(self, other: "Predicate") -> "Or":
        return Or([self, other])

    def __invert__(self) -> "Not":
        return Not(self)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.describe()}>"


def _resolve_path(obj: GeoObject, geo_class: GeoClass, path: str) -> Any:
    """Value of a possibly dotted attribute path on ``obj``."""
    head, __, rest = path.partition(".")
    value = obj.get(head, geo_class)
    if not rest:
        return value
    if not isinstance(value, dict):
        raise QueryError(
            f"path {path!r}: attribute {head!r} is not a tuple value"
        )
    for field in rest.split("."):
        if not isinstance(value, dict) or field not in value:
            raise QueryError(f"path {path!r}: no field {field!r}")
        value = value[field]
    return value


_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a is not None and a < b,
    "<=": lambda a, b: a is not None and a <= b,
    ">": lambda a, b: a is not None and a > b,
    ">=": lambda a, b: a is not None and a >= b,
    "in": lambda a, b: a in b,
    "like": lambda a, b: isinstance(a, str) and isinstance(b, str) and b.lower() in a.lower(),
}


def _bbox_overlap_kernel(boxes, min_x, min_y, max_x, max_y):
    """``rows -> rows`` whose packed bbox interacts with the window.

    Conservative pre-reject for contact-requiring spatial kernels: a
    geometry can only satisfy such a relation when its bounds touch the
    probe bounds (inclusive edges), so dropping the rest never changes
    the answer. Rows without a geometry (``box is None``) are dropped
    too — the row closures return False for them unconditionally.
    """

    def pre(rows):
        return [
            i for i in rows
            if (box := boxes[i]) is not None
            and box[0] <= max_x and box[2] >= min_x
            and box[1] <= max_y and box[3] >= min_y
        ]

    return pre


class Comparison(Predicate):
    """``<attr path> <op> <literal>`` over conventional attributes."""

    def __init__(self, path: str, op: str, value: Any):
        if op not in _OPS:
            raise QueryError(f"unknown comparison operator {op!r}; known: {sorted(_OPS)}")
        if not path:
            raise QueryError("comparison needs an attribute path")
        self.path = path
        self.op = op
        self.value = value

    def matches(self, obj: GeoObject, geo_class: GeoClass) -> bool:
        try:
            actual = _resolve_path(obj, geo_class, self.path)
        except QueryError:
            return False
        try:
            return _OPS[self.op](actual, self.value)
        except TypeError:
            return False

    def compile(self, geo_class: GeoClass) -> Callable[[GeoObject], bool]:
        value = self.value
        if self.op == "like":
            accessor = compile_path(self.path, geo_class)
            # Needle lowercasing happens here, once — not per row.
            if not isinstance(value, str):
                return lambda obj: False
            needle = value.lower()

            def like(obj: GeoObject) -> bool:
                actual = accessor(obj)
                return isinstance(actual, str) and needle in actual.lower()

            return like

        op = _OPS[self.op]
        head, __, rest = self.path.partition(".")
        if not rest:
            # Plain path: inline the dict probe into the comparison —
            # one closure call per candidate instead of two. The class
            # default is evaluated once; comparisons only read it.
            if geo_class.has_attribute(head):
                default_value = geo_class.attribute(head).type.default()
            else:
                default_value = None
            if self.op == "=":
                def eq(obj: GeoObject) -> bool:
                    return obj._values.get(head, default_value) == value

                return eq
            if self.op == "!=":
                def ne(obj: GeoObject) -> bool:
                    return obj._values.get(head, default_value) != value

                return ne

            def plain(obj: GeoObject) -> bool:
                try:
                    return op(obj._values.get(head, default_value), value)
                except TypeError:
                    return False

            return plain

        accessor = compile_path(self.path, geo_class)

        def compare(obj: GeoObject) -> bool:
            actual = accessor(obj)
            if actual is MISSING:
                return False
            try:
                return op(actual, value)
            except TypeError:
                return False

        return compare

    def compile_columns(self, geo_class: GeoClass, columns):
        value = self.value
        column = columns.path_column(self.path, geo_class)
        if self.op == "like":
            if not isinstance(value, str):
                return lambda rows: []
            needle = value.lower()

            def like(rows):
                return [
                    i for i in rows
                    if isinstance((actual := column[i]), str)
                    and needle in actual.lower()
                ]

            return like

        plain = "." not in self.path
        if plain and self.op == "=":
            # Plain columns never hold MISSING (the accessor always
            # resolves), so ==/!= run as bare comprehensions — same
            # unguarded semantics as the row path's inlined eq/ne.
            return lambda rows: [i for i in rows if column[i] == value]
        if plain and self.op == "!=":
            return lambda rows: [i for i in rows if column[i] != value]

        op = _OPS[self.op]
        # Fast path: an unguarded comprehension with the comparison
        # inlined (ordering ops) or one call per row (dotted =/!=, in).
        # A TypeError — None or a mixed-type value meeting an ordering
        # op — aborts the comprehension and re-runs the guarded loop,
        # which skips exactly the rows the row path's ``matches`` skips.
        if self.op == "<":
            def fast(rows):
                return [i for i in rows
                        if (a := column[i]) is not MISSING and a < value]
        elif self.op == "<=":
            def fast(rows):
                return [i for i in rows
                        if (a := column[i]) is not MISSING and a <= value]
        elif self.op == ">":
            def fast(rows):
                return [i for i in rows
                        if (a := column[i]) is not MISSING and a > value]
        elif self.op == ">=":
            def fast(rows):
                return [i for i in rows
                        if (a := column[i]) is not MISSING and a >= value]
        else:
            def fast(rows):
                return [i for i in rows
                        if (a := column[i]) is not MISSING and op(a, value)]

        def kernel(rows):
            try:
                return fast(rows)
            except TypeError:
                out = []
                append = out.append
                for i in rows:
                    actual = column[i]
                    if actual is MISSING:
                        continue
                    try:
                        if op(actual, value):
                            append(i)
                    except TypeError:
                        continue
                return out

        return kernel

    def equality_prefilter(self) -> tuple[str, list] | None:
        if "." in self.path:
            return None
        if self.op == "=":
            return (self.path, [self.value])
        if self.op == "in" and isinstance(self.value, (list, tuple, set)):
            return (self.path, list(self.value))
        return None

    def describe(self) -> str:
        return f"{self.path} {self.op} {self.value!r}"


class SpatialPredicate(Predicate):
    """``<relation>(<geometry attr>, <probe geometry>)``.

    ``relation`` is one of the names in
    :data:`repro.spatial.topology.PREDICATES`.
    """

    def __init__(self, attr: str, relation: str, probe: Geometry):
        if relation not in PREDICATES:
            raise QueryError(
                f"unknown spatial relation {relation!r}; known: {sorted(PREDICATES)}"
            )
        if not isinstance(probe, Geometry):
            raise QueryError("spatial predicate needs a probe Geometry")
        self.attr = attr
        self.relation = relation
        self.probe = probe

    def matches(self, obj: GeoObject, geo_class: GeoClass) -> bool:
        geom = obj.geometry(self.attr)
        if geom is None:
            return False
        return PREDICATES[self.relation](geom, self.probe)

    def compile(self, geo_class: GeoClass) -> Callable[[GeoObject], bool]:
        attr, probe = self.attr, self.probe
        relation = PREDICATES[self.relation]

        def spatial(obj: GeoObject) -> bool:
            geom = obj._values.get(attr)
            if not isinstance(geom, Geometry):
                return False
            return relation(geom, probe)

        return spatial

    def compile_columns(self, geo_class: GeoClass, columns):
        probe = self.probe
        relation = PREDICATES[self.relation]
        geoms, boxes = columns.geometry_column(self.attr)
        if self.relation == "disjoint":
            # Disjointness cannot be bbox-prefiltered; evaluate exactly
            # (non-Geometry values never match, like the row closure).
            return lambda rows: [
                i for i in rows
                if boxes[i] is not None and relation(geoms[i], probe)
            ]
        pbox = probe.bbox()
        pre = _bbox_overlap_kernel(boxes, pbox.min_x, pbox.min_y,
                                   pbox.max_x, pbox.max_y)

        def kernel(rows):
            return [i for i in pre(rows) if relation(geoms[i], probe)]

        return kernel

    def spatial_prefilter(self) -> tuple[str, BBox] | None:
        # Everything but 'disjoint' implies bbox interaction with the probe.
        if self.relation == "disjoint":
            return None
        return (self.attr, self.probe.bbox())

    def describe(self) -> str:
        return f"{self.relation}({self.attr}, {self.probe.wkt()})"


class RelateMask(Predicate):
    """``relate(<geometry attr>, <probe>, '<DE-9IM mask>')``.

    Matches when the boolean DE-9IM pattern between the attribute
    geometry and the probe satisfies the mask (``T``/``F``/``*`` per
    cell) — the escape hatch for relations the named predicates do not
    cover.
    """

    def __init__(self, attr: str, probe: Geometry, mask: str):
        from ..spatial.de9im import matches as _matches  # validates masks

        if not isinstance(probe, Geometry):
            raise QueryError("relate predicate needs a probe Geometry")
        try:
            _matches("F" * 9, mask)
        except Exception as exc:
            raise QueryError(f"invalid DE-9IM mask {mask!r}: {exc}") from exc
        self.attr = attr
        self.probe = probe
        self.mask = mask

    def matches(self, obj: GeoObject, geo_class: GeoClass) -> bool:
        from ..spatial.de9im import relate_with_mask

        geom = obj.geometry(self.attr)
        if geom is None:
            return False
        return relate_with_mask(geom, self.probe, self.mask)

    def compile(self, geo_class: GeoClass) -> Callable[[GeoObject], bool]:
        from ..spatial.de9im import relate_with_mask

        attr, probe, mask = self.attr, self.probe, self.mask

        def relate(obj: GeoObject) -> bool:
            geom = obj._values.get(attr)
            if not isinstance(geom, Geometry):
                return False
            return relate_with_mask(geom, probe, mask)

        return relate

    def compile_columns(self, geo_class: GeoClass, columns):
        from ..spatial.de9im import relate_with_mask

        probe, mask = self.probe, self.mask
        geoms, boxes = columns.geometry_column(self.attr)

        def exact(rows):
            return [
                i for i in rows
                if boxes[i] is not None
                and relate_with_mask(geoms[i], probe, mask)
            ]

        # Only masks that demand interior/boundary contact may reject on
        # bounds — the same condition spatial_prefilter() uses.
        if self.spatial_prefilter() is None:
            return exact
        pbox = probe.bbox()
        pre = _bbox_overlap_kernel(boxes, pbox.min_x, pbox.min_y,
                                   pbox.max_x, pbox.max_y)
        return lambda rows: exact(pre(rows))

    def spatial_prefilter(self) -> tuple[str, BBox] | None:
        # A mask requiring any interior/boundary intersection implies the
        # bboxes interact; masks that *permit* disjointness cannot be
        # prefiltered safely.
        requires_contact = any(c == "T" for c in self.mask[:2] + self.mask[3:5])
        if requires_contact:
            return (self.attr, self.probe.bbox())
        return None

    def describe(self) -> str:
        return f"relate({self.attr}, {self.probe.wkt()}, '{self.mask}')"


class WithinDistance(Predicate):
    """``distance(<geometry attr>, <probe>) <= radius``."""

    def __init__(self, attr: str, probe: Geometry, radius: float):
        if radius < 0:
            raise QueryError("distance radius must be non-negative")
        if not isinstance(probe, Geometry):
            raise QueryError("distance predicate needs a probe Geometry")
        self.attr = attr
        self.probe = probe
        self.radius = float(radius)

    def matches(self, obj: GeoObject, geo_class: GeoClass) -> bool:
        geom = obj.geometry(self.attr)
        if geom is None:
            return False
        return geometry_distance(geom, self.probe) <= self.radius

    def compile(self, geo_class: GeoClass) -> Callable[[GeoObject], bool]:
        attr, probe, radius = self.attr, self.probe, self.radius

        def within(obj: GeoObject) -> bool:
            geom = obj._values.get(attr)
            if not isinstance(geom, Geometry):
                return False
            return geometry_distance(geom, probe) <= radius

        return within

    def compile_columns(self, geo_class: GeoClass, columns):
        probe, radius = self.probe, self.radius
        geoms, boxes = columns.geometry_column(self.attr)
        # Bounds further than `radius` from the probe bounds (per axis)
        # cannot hold a geometry within `radius` — the same expansion
        # the R-tree prefilter uses.
        pbox = probe.bbox().expanded(radius)
        pre = _bbox_overlap_kernel(boxes, pbox.min_x, pbox.min_y,
                                   pbox.max_x, pbox.max_y)

        def kernel(rows):
            return [
                i for i in pre(rows)
                if geometry_distance(geoms[i], probe) <= radius
            ]

        return kernel

    def spatial_prefilter(self) -> tuple[str, BBox] | None:
        return (self.attr, self.probe.bbox().expanded(self.radius))

    def describe(self) -> str:
        return f"distance({self.attr}, {self.probe.wkt()}) <= {self.radius}"


class And(Predicate):
    def __init__(self, parts: Iterable[Predicate]):
        self.parts = list(parts)
        if len(self.parts) < 2:
            raise QueryError("And needs at least two operands")

    def matches(self, obj: GeoObject, geo_class: GeoClass) -> bool:
        return all(p.matches(obj, geo_class) for p in self.parts)

    def compile(self, geo_class: GeoClass) -> Callable[[GeoObject], bool]:
        compiled = [p.compile(geo_class) for p in self.parts]
        if len(compiled) == 2:
            first, second = compiled
            return lambda obj: first(obj) and second(obj)

        def conjunction(obj: GeoObject) -> bool:
            for part in compiled:
                if not part(obj):
                    return False
            return True

        return conjunction

    def compile_columns(self, geo_class: GeoClass, columns):
        compiled = [p.compile_columns(geo_class, columns)
                    for p in self.parts]

        def conjunction(rows):
            # Fusion: each term narrows the survivor list of the last,
            # so later (often costlier) terms see only the rows that
            # still matter.
            for kernel in compiled:
                rows = kernel(rows)
                if not rows:
                    return []
            return rows

        return conjunction

    def spatial_prefilter(self) -> tuple[str, BBox] | None:
        for part in self.parts:
            pre = part.spatial_prefilter()
            if pre is not None:
                return pre
        return None

    def equality_prefilter(self) -> tuple[str, list] | None:
        for part in self.parts:
            pre = part.equality_prefilter()
            if pre is not None:
                return pre
        return None

    def describe(self) -> str:
        return "(" + " and ".join(p.describe() for p in self.parts) + ")"


class Or(Predicate):
    def __init__(self, parts: Iterable[Predicate]):
        self.parts = list(parts)
        if len(self.parts) < 2:
            raise QueryError("Or needs at least two operands")

    def matches(self, obj: GeoObject, geo_class: GeoClass) -> bool:
        return any(p.matches(obj, geo_class) for p in self.parts)

    def compile(self, geo_class: GeoClass) -> Callable[[GeoObject], bool]:
        compiled = [p.compile(geo_class) for p in self.parts]
        if len(compiled) == 2:
            first, second = compiled
            return lambda obj: first(obj) or second(obj)

        def disjunction(obj: GeoObject) -> bool:
            for part in compiled:
                if part(obj):
                    return True
            return False

        return disjunction

    def compile_columns(self, geo_class: GeoClass, columns):
        compiled = [p.compile_columns(geo_class, columns)
                    for p in self.parts]

        def disjunction(rows):
            rows = list(rows)
            keep: set = set()
            for kernel in compiled:
                keep.update(kernel(rows))
                if len(keep) == len(rows):
                    break
            return [i for i in rows if i in keep]

        return disjunction

    def describe(self) -> str:
        return "(" + " or ".join(p.describe() for p in self.parts) + ")"


class Not(Predicate):
    def __init__(self, inner: Predicate):
        self.inner = inner

    def matches(self, obj: GeoObject, geo_class: GeoClass) -> bool:
        return not self.inner.matches(obj, geo_class)

    def compile(self, geo_class: GeoClass) -> Callable[[GeoObject], bool]:
        inner = self.inner.compile(geo_class)
        return lambda obj: not inner(obj)

    def compile_columns(self, geo_class: GeoClass, columns):
        inner = self.inner.compile_columns(geo_class, columns)

        def negation(rows):
            rows = list(rows)
            matched = set(inner(rows))
            return [i for i in rows if i not in matched]

        return negation

    def describe(self) -> str:
        return f"not {self.inner.describe()}"


class TruePredicate(Predicate):
    """Matches everything — the default ``where`` of a browse query."""

    def matches(self, obj: GeoObject, geo_class: GeoClass) -> bool:
        return True

    def compile(self, geo_class: GeoClass) -> Callable[[GeoObject], bool]:
        return match_all

    def compile_columns(self, geo_class: GeoClass, columns):
        return lambda rows: list(rows)

    def describe(self) -> str:
        return "true"


#: Aggregate operators usable in projections: op -> reducer over values.
AGGREGATE_OPS = ("count", "min", "max", "sum", "avg")


class Query:
    """A declarative query over one class extent.

    Parameters
    ----------
    class_name:
        Target class.
    where:
        Root predicate (defaults to :class:`TruePredicate`).
    projection:
        Attribute paths to keep in result rows; ``None`` keeps whole objects.
    aggregates:
        ``(op, path)`` pairs (op in :data:`AGGREGATE_OPS`; path ``None``
        for ``count(*)``). When given, the result is a single row of
        aggregate values over the matching set; mutually exclusive with
        ``projection``.
    order_by:
        Attribute path to sort by (ascending; prefix with ``-`` for
        descending).
    limit:
        Maximum number of results.
    include_subclasses:
        When True the extents of subclasses are searched too (OO semantics).
    """

    def __init__(
        self,
        class_name: str,
        where: Predicate | None = None,
        projection: list[str] | None = None,
        aggregates: list[tuple[str, str | None]] | None = None,
        order_by: str | None = None,
        limit: int | None = None,
        include_subclasses: bool = False,
    ):
        if not class_name:
            raise QueryError("query needs a class name")
        if limit is not None and limit < 0:
            raise QueryError("limit must be non-negative")
        if aggregates:
            if projection is not None:
                raise QueryError(
                    "a query selects either aggregates or attribute paths, "
                    "not both")
            for op, path in aggregates:
                if op not in AGGREGATE_OPS:
                    raise QueryError(
                        f"unknown aggregate {op!r}; known: {AGGREGATE_OPS}")
                if path is None and op != "count":
                    raise QueryError(f"{op}(*) is not defined; give a path")
        self.class_name = class_name
        self.where = where if where is not None else TruePredicate()
        self.projection = list(projection) if projection is not None else None
        self.aggregates = list(aggregates) if aggregates else None
        self.order_by = order_by
        self.limit = limit
        self.include_subclasses = include_subclasses

    def fingerprint(self) -> tuple:
        """A hashable identity for result caching.

        Two queries with equal fingerprints request the same rows:
        :meth:`describe` covers the predicate tree (operator + literal
        reprs), projection/aggregates, ordering and limit;
        ``include_subclasses`` changes the scanned closure, so it is
        keyed explicitly (``describe`` omits it).
        """
        return (self.class_name, self.include_subclasses, self.describe())

    def describe(self) -> str:
        text = f"from {self.class_name} where {self.where.describe()}"
        if self.aggregates is not None:
            rendered = ", ".join(
                f"{op}({path or '*'})" for op, path in self.aggregates)
            text = f"select {rendered} " + text
        elif self.projection is not None:
            text = f"select {', '.join(self.projection)} " + text
        if self.order_by:
            text += f" order by {self.order_by}"
        if self.limit is not None:
            text += f" limit {self.limit}"
        return text

    def __repr__(self) -> str:
        return f"<Query {self.describe()}>"
