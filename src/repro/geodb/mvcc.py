"""Multi-version concurrency control: per-oid version chains.

The geodb promises each :class:`~repro.geodb.transactions.Transaction` a
*consistent snapshot*: every read inside the transaction observes the
database exactly as it stood at the transaction's begin, no matter what
other transactions commit meanwhile. This module supplies the storage
side of that promise — a :class:`VersionStore` mapping oids to *version
chains*, each version stamped with the commit timestamp that produced
it.

Design notes
------------
* Versions are only materialized for objects that have actually been
  written since the process started (or since the last garbage
  collection). An oid without a chain is *stable*: its current committed
  state is the answer for every live snapshot, so reads fall through to
  the extent. This keeps snapshot reads on untouched data at pointer-
  chase cost and bounds memory by write traffic, not database size.
* A version with ``values=None`` is a **tombstone** — the object was
  deleted at that timestamp.
* Garbage collection runs at a *watermark* (the oldest snapshot still
  live). Any chain whose newest version is at or below the watermark is
  dropped entirely (the extent fallback gives the same answer); chains
  with newer versions keep exactly one base version at or below the
  watermark.
* Readers are **lock-free** while commits and GC run under the
  database's commit lock, so every chain mutation here must be safe
  against a concurrent reader holding a reference to the chain list:
  chains are installed fully built (never empty), same-timestamp
  rewrites replace ``chain[-1]`` in place instead of pop-then-append,
  and GC publishes a trimmed *copy* rather than deleting slices out of
  a list a reader may be iterating.
"""

from __future__ import annotations

from typing import Any


class Version:
    """One committed state of one object."""

    __slots__ = ("ts", "values", "schema_name", "class_name")

    def __init__(self, ts: int, values: dict[str, Any] | None,
                 schema_name: str, class_name: str):
        self.ts = ts
        #: attribute values at ``ts``; ``None`` marks a tombstone (deleted)
        self.values = values
        self.schema_name = schema_name
        self.class_name = class_name

    @property
    def is_tombstone(self) -> bool:
        return self.values is None

    def __repr__(self) -> str:
        state = "tombstone" if self.is_tombstone else f"{len(self.values)} values"
        return f"<Version ts={self.ts} {state}>"


class _Unknown:
    """Sentinel: the store holds no history for the oid (fall through)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - repr only
        return "<UNKNOWN>"


class VersionStore:
    """Per-oid version chains, ordered by commit timestamp (ascending)."""

    #: returned by :meth:`visible` when no chain exists for the oid; the
    #: caller resolves the read against the current committed state.
    UNKNOWN = _Unknown()

    def __init__(self) -> None:
        self._chains: dict[str, list[Version]] = {}
        #: (schema, class) -> oids with at least one version of that class
        self._by_class: dict[tuple[str, str], set[str]] = {}
        self._version_count = 0

    # -- recording -------------------------------------------------------------

    def seed_base(self, oid: str, values: dict[str, Any] | None,
                  schema_name: str, class_name: str) -> None:
        """Install a timestamp-0 pre-image for a previously unversioned oid.

        Called *before* a commit's first versioned write of a chain-less
        oid mutates the extents, so concurrent snapshot readers resolve
        through the chain instead of the mid-mutation extent. ``values``
        is the pre-commit state: the existing object's attributes, or
        ``None`` (a base tombstone) when the commit is inserting an oid
        that did not exist — older snapshots must keep reading "absent".
        """
        if oid in self._chains:
            return
        self._append(
            oid,
            Version(0, None if values is None else dict(values),
                    schema_name, class_name),
        )

    def record(self, oid: str, ts: int, values: dict[str, Any] | None,
               schema_name: str, class_name: str) -> None:
        """Append the state of ``oid`` as of commit timestamp ``ts``."""
        chain = self._chains.get(oid)
        version = Version(ts, None if values is None else dict(values),
                          schema_name, class_name)
        if chain and chain[-1].ts == ts:
            # One transaction may touch an oid several times; the final
            # state per commit wins. Replace in place — a pop would
            # momentarily shrink the list under a lock-free reader's
            # reverse iterator, which could then miss older versions.
            chain[-1] = version
            self._by_class.setdefault(
                (schema_name, class_name), set()
            ).add(oid)
            return
        self._append(oid, version)

    def _append(self, oid: str, version: Version) -> None:
        chain = self._chains.get(oid)
        if chain is None:
            # Install fully built: a reader must never observe an empty
            # chain (it would read as "object did not exist at ts").
            self._chains[oid] = [version]
        else:
            chain.append(version)
        self._by_class.setdefault(
            (version.schema_name, version.class_name), set()
        ).add(oid)
        self._version_count += 1

    # -- reading ---------------------------------------------------------------

    def visible(self, oid: str, ts: int) -> Version | _Unknown | None:
        """The version of ``oid`` a snapshot at ``ts`` observes.

        Returns :data:`UNKNOWN` when no history exists (caller falls
        through to the live extent), ``None`` when the chain proves the
        object did not exist at ``ts`` (created later), or the newest
        :class:`Version` with ``version.ts <= ts`` (possibly a
        tombstone).
        """
        chain = self._chains.get(oid)
        if chain is None:
            return self.UNKNOWN
        for version in reversed(chain):
            if version.ts <= ts:
                return version
        return None

    def has_chain(self, oid: str) -> bool:
        return oid in self._chains

    def class_oids(self, schema_name: str, class_name: str) -> set[str]:
        """Oids holding any version of the given class (for snapshot scans)."""
        return set(self._by_class.get((schema_name, class_name), ()))

    # -- garbage collection -----------------------------------------------------

    def gc(self, watermark: int) -> int:
        """Drop versions no live snapshot can observe; returns the count.

        ``watermark`` is the oldest snapshot timestamp still live (or the
        current commit timestamp when no snapshot is open). A chain whose
        newest version is ``<= watermark`` matches the live extent and is
        removed wholesale; otherwise everything below the newest
        at-or-below-watermark version goes.
        """
        reclaimed = 0
        for oid in list(self._chains):
            chain = self._chains[oid]
            if chain[-1].ts <= watermark:
                reclaimed += len(chain)
                self._drop_chain(oid, chain)
                continue
            keep_from = 0
            for index in range(len(chain) - 1, -1, -1):
                if chain[index].ts <= watermark:
                    keep_from = index
                    break
            if keep_from:
                removed = chain[:keep_from]
                # Publish a trimmed copy instead of deleting in place: a
                # lock-free reader still iterating the old list keeps a
                # consistent (if stale-but-visible) chain.
                remaining = chain[keep_from:]
                self._chains[oid] = remaining
                reclaimed += len(removed)
                self._version_count -= len(removed)
                self._unindex(oid, removed, remaining)
        return reclaimed

    def _drop_chain(self, oid: str, chain: list[Version]) -> None:
        self._version_count -= len(chain)
        del self._chains[oid]
        self._unindex(oid, chain, [])

    def _unindex(self, oid: str, removed: list[Version],
                 remaining: list[Version]) -> None:
        still = {(v.schema_name, v.class_name) for v in remaining}
        for version in removed:
            key = (version.schema_name, version.class_name)
            if key in still:
                continue
            oids = self._by_class.get(key)
            if oids is not None:
                oids.discard(oid)
                if not oids:
                    del self._by_class[key]

    # -- introspection ---------------------------------------------------------

    @property
    def total_versions(self) -> int:
        return self._version_count

    def chain_length(self, oid: str) -> int:
        return len(self._chains.get(oid, ()))

    def stats(self) -> dict[str, Any]:
        return {
            "chains": len(self._chains),
            "versions": self._version_count,
            "tombstones": sum(
                1 for chain in self._chains.values()
                for v in chain if v.is_tombstone
            ),
        }

    def __repr__(self) -> str:
        return (f"VersionStore(chains={len(self._chains)}, "
                f"versions={self._version_count})")
