"""Replication sources: how a follower reaches its leader.

:meth:`GeographicDatabase.follow` is deliberately transport-agnostic —
it talks to a *source* object with three methods:

``snapshot()``
    A full bootstrap document (see
    :meth:`GeographicDatabase.replication_snapshot`), also used for the
    snapshot handoff when the follower falls behind the shipper's
    retention window.
``poll(cursor, max_batches=...)``
    Shipped batch envelopes with LSN > cursor, in commit order, plus the
    shipped head LSN and the ``snapshot_required`` signal (the
    :meth:`LogShipper.poll` contract).
``head_lsn()``
    The newest shipped LSN, for lag reporting.

Two implementations cover the deployment shapes:

* :class:`LocalReplicationSource` — leader and follower share a process
  (scatter-gather over local shards, tests, benchmarks). Wraps the
  leader's :class:`~repro.geodb.wal.LogShipper` directly.
* :class:`RemoteReplicationSource` — the follower lives in another
  process and pulls over the wire through a
  :class:`~repro.net.client.GISClient` using the ``repl_snapshot`` /
  ``repl_poll`` / ``repl_status`` contracts. Snapshots travel in chunks
  so large databases fit under the protocol's frame cap.
"""

from __future__ import annotations

from typing import Any

from ..errors import ReplicationError


class LocalReplicationSource:
    """In-process source: ship straight from the leader's WAL."""

    def __init__(self, leader, retain: int = 256):
        self.leader = leader
        self.shipper = leader.enable_shipping(retain=retain)

    def snapshot(self) -> dict[str, Any]:
        return self.leader.replication_snapshot()

    def poll(self, cursor: int, max_batches: int = 64) -> dict[str, Any]:
        return self.shipper.poll(cursor, max_batches=max_batches)

    def head_lsn(self) -> int:
        return self.shipper.head_lsn

    def __repr__(self) -> str:
        return f"LocalReplicationSource({self.leader.name!r})"


class RemoteReplicationSource:
    """Wire source: pull snapshots and batches from a serving daemon."""

    def __init__(self, client):
        self.client = client

    def snapshot(self) -> dict[str, Any]:
        """Fetch and assemble a chunked snapshot."""
        first = self.client.repl_snapshot(chunk=0)
        doc = first["snapshot"]
        chunks = first["chunks"]
        for index in range(1, chunks):
            part = self.client.repl_snapshot(chunk=index)
            doc["objects"].extend(part["snapshot"]["objects"])
        if len(doc["objects"]) != first["total_objects"]:
            raise ReplicationError(
                f"chunked snapshot reassembly mismatch: got "
                f"{len(doc['objects'])} objects, leader announced "
                f"{first['total_objects']}"
            )
        return doc

    def poll(self, cursor: int, max_batches: int = 64) -> dict[str, Any]:
        return self.client.repl_poll(cursor, max_batches=max_batches)

    def head_lsn(self) -> int:
        return self.client.repl_status()["lsn"]

    def __repr__(self) -> str:
        return f"RemoteReplicationSource({self.client!r})"
