"""Write-ahead logging and crash recovery for the geographic database.

The paper moves GIS data management *into* the DBMS (§2.1), so the geodb
has to behave like one: a transaction that reports ABORTED must leave no
observable change, and a committed transaction must survive a process
crash. This module supplies the durability half of that contract:

* :class:`WriteAheadLog` — an append-only, checksummed redo log in front
  of any :class:`~repro.geodb.storage.Pager`. A transaction's records
  (``begin``, one ``intent`` per staged mutation, ``commit``) are
  buffered in memory while the transaction applies and are forced to the
  log — packed into whole pages, then flushed and fsynced once — at the
  commit point. The commit-record fsync *is* the durability point: a
  crash before it loses the transaction entirely (the buffer manager's
  no-steal mode guarantees no half-applied heap page reached disk), a
  crash after it loses nothing because recovery replays the log tail.
* :class:`FaultInjectingPager` — a pager wrapper that simulates a crash
  after N successful page writes (optionally tearing the failing write),
  used by the recovery test matrix and available to any chaos harness.

Log format
----------
The log is a sequence of fixed-size pages. Each flush appends one
*batch* — all records of one committed transaction — as a contiguous run
of freshly allocated pages, zero-padded to a page boundary. A page never
mixes records from two batches, so a torn write can only damage the
batch being flushed, never an earlier committed one. Within a batch,
records are framed as::

    [4-byte payload length][4-byte CRC32 of payload][payload JSON]

Recovery walks the frames in order; a zero length skips to the next page
boundary (batch padding) or, at a page boundary, ends the log. A frame
that is truncated, fails its checksum, or does not decode ends the scan:
everything before it is the stable prefix, everything after is a torn
tail from the crash and is discarded. Only transactions whose ``commit``
record survives inside that prefix are replayed.

Group commit
------------
Commit throughput under many concurrent committers is bounded by the
fsync, not the page writes. :meth:`WriteAheadLog.log_commit_staged`
therefore splits the commit barrier in two: under the log lock it
appends the batch's pages (cheap) and hands back a monotonically
increasing *ticket*; :meth:`WriteAheadLog.wait_durable` then blocks
until a barrier covering that ticket has run. The first waiter to find
undone work becomes the **group leader** — it snapshots the highest
staged ticket, runs one barrier for every batch staged so far, and
wakes the whole group. Committers that arrive while a barrier is in
flight queue up and are covered by the *next* barrier, so the fsync
count scales with disk latency, not with committer count.

Because batches reach the log pages strictly in ticket order, a crash
always leaves a *prefix* of whole batches: a barrier covering ticket N
necessarily made every earlier ticket durable too. Recovery semantics
are unchanged — the damaged-tail scan applies verbatim.

Log shipping
------------
:class:`LogShipper` turns the log into a replication stream. Attached via
:meth:`WriteAheadLog.attach_shipper`, it retains every committed batch —
keyed by its LSN, which is the MVCC commit timestamp carried in the
commit record — and hands them to followers through :meth:`LogShipper.poll`.
Two rules keep the stream safe:

* **Durable-only shipping.** A staged batch is parked until a barrier
  covering its ticket completes; only then does it become pollable. A
  follower can therefore never apply a transaction the leader could still
  lose in a crash.
* **Bounded retention with snapshot handoff.** The shipper keeps the last
  ``retain`` durable batches in memory, independent of checkpoint
  truncation of the log pages. A cursor that has fallen behind the
  retained window (slow follower, or a fresh follower attaching mid-life)
  gets ``snapshot_required`` instead of a gap — the follower re-bootstraps
  from :meth:`GeographicDatabase.replication_snapshot` and resumes polling
  from the snapshot's LSN.

Each shipped batch travels inside an envelope carrying a CRC32 over the
canonical JSON of its records; followers re-verify it before replaying,
so a frame damaged in transit (or tampered with) is refused, mirroring
the log's own torn-tail refusal.
"""

from __future__ import annotations

import json
import threading
import zlib
from collections import deque
from typing import Any, Iterator

from .. import obs
from ..errors import CrashError, ReplicationError, WALError
from .storage import PAGE_SIZE, FilePager, Pager

#: frame header: 4-byte payload length + 4-byte CRC32 of the payload
FRAME_HEADER = 8

REC_BEGIN = "B"
REC_INTENT = "I"
REC_COMMIT = "C"
#: redo record for one raster tile write (multi-page tile payloads ride
#: the same batch as the object intents that reference them)
REC_RASTER = "R"

#: durability ladder for the commit-point barrier (cf. SQLite synchronous):
#: ``fsync`` survives power loss, ``flush`` survives a process crash only
#: (data reached the OS cache), ``none`` is for tests and benchmarks.
SYNC_MODES = ("fsync", "flush", "none")


def _frame(payload: bytes) -> bytes:
    return (
        len(payload).to_bytes(4, "big")
        + (zlib.crc32(payload) & 0xFFFFFFFF).to_bytes(4, "big")
        + payload
    )


def batch_checksum(records: list[dict[str, Any]]) -> int:
    """CRC32 over the canonical JSON of a batch's records.

    Canonical means compact separators and sorted keys, so leader and
    follower — and both sides of a JSON wire hop — compute the same value
    for the same logical records.
    """
    payload = json.dumps(records, separators=(",", ":"),
                         sort_keys=True).encode("utf-8")
    return zlib.crc32(payload) & 0xFFFFFFFF


def make_envelope(lsn: int, records: list[dict[str, Any]]) -> dict[str, Any]:
    """Wrap one committed batch for shipping (LSN + integrity checksum)."""
    return {"lsn": lsn, "records": records, "crc": batch_checksum(records)}


def verify_envelope(envelope: dict[str, Any]) -> list[dict[str, Any]]:
    """Validate a shipped envelope; returns its records or raises.

    Refuses anything a follower must not replay: a malformed envelope, a
    checksum mismatch (damaged frame), a batch without exactly one commit
    record, or a commit record without a timestamp (the LSN).
    """
    if not isinstance(envelope, dict):
        raise ReplicationError("shipped batch is not an envelope object")
    records = envelope.get("records")
    lsn = envelope.get("lsn")
    crc = envelope.get("crc")
    if not isinstance(records, list) or not all(
            isinstance(rec, dict) for rec in records):
        raise ReplicationError("shipped batch has no record list")
    if not isinstance(lsn, int) or not isinstance(crc, int):
        raise ReplicationError("shipped batch is missing its lsn or checksum")
    if batch_checksum(records) != crc:
        raise ReplicationError(
            f"shipped batch at lsn {lsn} failed its checksum — damaged "
            "frame refused (the follower keeps its last applied state)"
        )
    commits = [rec for rec in records if rec.get("t") == REC_COMMIT]
    if len(commits) != 1:
        raise ReplicationError(
            f"shipped batch at lsn {lsn} does not contain exactly one "
            f"commit record ({len(commits)} found)"
        )
    if commits[0].get("ts") != lsn:
        raise ReplicationError(
            f"shipped batch envelope lsn {lsn} disagrees with its commit "
            f"record timestamp {commits[0].get('ts')!r}"
        )
    return records


class LogShipper:
    """Subscribable stream of committed *and durable* log batches.

    One shipper serves any number of followers: each follower keeps its
    own cursor (the LSN of the last batch it applied) and calls
    :meth:`poll` to fetch everything newer. The shipper never pushes —
    pull keeps slow followers from back-pressuring the commit path.

    Thread-safety: every method takes the shipper's own lock; the WAL
    calls the ``on_*`` hooks from inside its commit paths, while
    followers poll from arbitrary threads.
    """

    def __init__(self, base_lsn: int = 0, retain: int = 256):
        if retain < 1:
            raise ReplicationError(f"shipper retention must be >= 1 "
                                   f"(got {retain})")
        self._lock = threading.Lock()
        #: staged but not yet durable: (ticket, envelope), ticket order
        self._staged: deque[tuple[int, dict[str, Any]]] = deque()
        #: durable and pollable envelopes, LSN order
        self._durable: deque[dict[str, Any]] = deque()
        #: cursors strictly below this need a snapshot handoff
        self.base_lsn = base_lsn
        #: LSN of the newest durable batch
        self.head_lsn = base_lsn
        self.retain = retain
        self.shipped_batches = 0
        self.polls = 0
        self.snapshot_handoffs = 0

    # -- WAL-side hooks (called by WriteAheadLog) -----------------------------

    def on_staged(self, ticket: int, lsn: int | None,
                  records: list[dict[str, Any]]) -> None:
        """Park a staged batch until a barrier covers ``ticket``."""
        if lsn is None:
            raise ReplicationError(
                "cannot ship a commit without a timestamp: log shipping "
                "requires commit_ts (the replication LSN) on every commit"
            )
        with self._lock:
            self._staged.append((ticket, make_envelope(lsn, records)))

    def on_durable(self, ticket: int) -> None:
        """Release parked batches covered by a completed barrier."""
        with self._lock:
            while self._staged and self._staged[0][0] <= ticket:
                _, envelope = self._staged.popleft()
                self._release(envelope)

    def on_batch(self, lsn: int | None, records: list[dict[str, Any]]) -> None:
        """Ship a batch that is already durable (inline-barrier commit)."""
        if lsn is None:
            raise ReplicationError(
                "cannot ship a commit without a timestamp: log shipping "
                "requires commit_ts (the replication LSN) on every commit"
            )
        with self._lock:
            self._release(make_envelope(lsn, records))

    def on_damaged(self) -> None:
        """Drop staged batches after a failed barrier — never shipped, so
        followers simply never see the transactions the leader lost."""
        with self._lock:
            self._staged.clear()

    def _release(self, envelope: dict[str, Any]) -> None:
        self._durable.append(envelope)
        self.head_lsn = max(self.head_lsn, envelope["lsn"])
        self.shipped_batches += 1
        while len(self._durable) > self.retain:
            evicted = self._durable.popleft()
            self.base_lsn = max(self.base_lsn, evicted["lsn"])

    # -- follower-side API ----------------------------------------------------

    def poll(self, cursor: int, max_batches: int = 64) -> dict[str, Any]:
        """Fetch durable batches with LSN > ``cursor``.

        Returns ``{"batches": [...], "lsn": head, "base_lsn": base,
        "snapshot_required": bool}``. ``snapshot_required`` means the
        cursor predates the retained window — the follower must
        re-bootstrap from a full snapshot before polling again.
        """
        with self._lock:
            self.polls += 1
            if cursor < self.base_lsn:
                self.snapshot_handoffs += 1
                return {"batches": [], "lsn": self.head_lsn,
                        "base_lsn": self.base_lsn, "snapshot_required": True}
            batches = []
            for envelope in self._durable:
                if envelope["lsn"] > cursor:
                    batches.append(envelope)
                    if len(batches) >= max_batches:
                        break
            result = {"batches": batches, "lsn": self.head_lsn,
                      "base_lsn": self.base_lsn, "snapshot_required": False}
        if batches and obs.RECORDER.enabled:
            obs.RECORDER.inc("repl.ship_batches", len(batches))
        return result

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "head_lsn": self.head_lsn,
                "base_lsn": self.base_lsn,
                "retained": len(self._durable),
                "staged": len(self._staged),
                "retain": self.retain,
                "shipped_batches": self.shipped_batches,
                "polls": self.polls,
                "snapshot_handoffs": self.snapshot_handoffs,
            }

    def __repr__(self) -> str:
        return (f"LogShipper(head={self.head_lsn}, base={self.base_lsn}, "
                f"retained={len(self._durable)})")


class WriteAheadLog:
    """Append-only, checksummed, page-framed redo log over a pager.

    Parameters
    ----------
    pager:
        Page backend holding the log (usually a dedicated
        :class:`~repro.geodb.storage.FilePager` next to the data file).
    sync_mode:
        ``"fsync"`` (default), ``"flush"`` or ``"none"`` — how hard the
        commit barrier pushes the batch toward stable storage.
    """

    def __init__(self, pager: Pager, sync_mode: str = "fsync",
                 group_commit: bool = True):
        if sync_mode not in SYNC_MODES:
            raise WALError(f"unknown sync mode {sync_mode!r}; "
                           f"expected one of {SYNC_MODES}")
        self.pager = pager
        self.sync_mode = sync_mode
        #: when True the database stages commits via
        #: :meth:`log_commit_staged` and groups their barriers through
        #: :meth:`wait_durable`; False forces one barrier per commit.
        self.group_commit = group_commit
        # Serializes buffering, batch flushes and checkpoints so commits
        # from concurrent sessions append whole batches in order (the log
        # tail — allocate_page + write_page — is not atomic by itself).
        # Reentrant because log_commit buffers its own commit record.
        self._lock = threading.RLock()
        #: txn_id -> framed records not yet forced to the log
        self._pending: dict[int, list[bytes]] = {}
        #: txn_id -> decoded record docs, kept alongside the frames so an
        #: attached shipper can hand whole batches to followers without
        #: re-reading (and re-parsing) the log pages
        self._pending_docs: dict[int, list[dict[str, Any]]] = {}
        #: attached :class:`LogShipper`, or None when not replicating
        self.shipper: LogShipper | None = None
        #: set when a log write failed part-way; the log tail may be torn,
        #: so further logging is refused until recovery truncates it.
        self.damaged = False
        self.appends = 0
        self.flushes = 0
        self.fsyncs = 0
        self.recovered_txns = 0
        # -- group-commit state (guarded by _group_cond's lock) ---------
        self._group_cond = threading.Condition()
        #: highest ticket whose pages are written (in ticket order)
        self._staged_ticket = 0
        #: highest ticket covered by a completed barrier
        self._durable_ticket = 0
        #: True while one leader's barrier is in flight
        self._flushing = False
        #: barriers run through wait_durable
        self.group_commits = 0
        #: batches made durable through those barriers
        self.group_commit_batches = 0

    @classmethod
    def open(cls, path: str, page_size: int = PAGE_SIZE,
             sync_mode: str = "fsync",
             group_commit: bool = True) -> "WriteAheadLog":
        """Open (or create) a file-backed log at ``path``."""
        return cls(FilePager(path, page_size=page_size), sync_mode=sync_mode,
                   group_commit=group_commit)

    # -- logging ---------------------------------------------------------------

    def _buffer(self, txn_id: int, doc: dict[str, Any]) -> None:
        with self._lock:
            if self.damaged:
                raise WALError(
                    "write-ahead log is damaged (a flush failed part-way); "
                    "reopen and recover the database before committing again"
                )
            payload = json.dumps(doc, separators=(",", ":")).encode("utf-8")
            self._pending.setdefault(txn_id, []).append(_frame(payload))
            self._pending_docs.setdefault(txn_id, []).append(doc)
            self.appends += 1
        if obs.RECORDER.enabled:
            obs.RECORDER.inc("wal.appends", type=doc["t"])

    def log_begin(self, txn_id: int) -> None:
        self._buffer(txn_id, {"t": REC_BEGIN, "txn": txn_id})

    def log_intent(self, txn_id: int, intent_doc: dict[str, Any]) -> None:
        """Record one staged mutation (already schema-encoded)."""
        doc = {"t": REC_INTENT, "txn": txn_id}
        doc.update(intent_doc)
        self._buffer(txn_id, doc)

    def log_raster(self, txn_id: int, tile_doc: dict[str, Any]) -> None:
        """Record one raster tile write (base64 payload, identity header).

        Logged before the tile's data pages are dirtied, like any other
        intent: recovery replays the whole tile set or none of it, so a
        crash can never surface a half-written raster.
        """
        doc = {"t": REC_RASTER, "txn": txn_id}
        doc.update(tile_doc)
        self._buffer(txn_id, doc)

    def log_commit(self, txn_id: int, commit_ts: int | None = None) -> None:
        """Force the transaction's batch to the log — the durability point.

        Appends the commit record (carrying ``commit_ts`` when given, so
        recovery can rebuild the version store at the original
        timestamps), packs the batch into freshly allocated pages and
        pushes it down with a single barrier. Raises (and marks the log
        damaged) if the underlying pager fails part-way.
        """
        with self._lock:
            lsn, docs = self._stage_batch(txn_id, commit_ts)
            try:
                self._barrier()
            except Exception:
                self.damaged = True
                if self.shipper is not None:
                    self.shipper.on_damaged()
                raise
            # The inline barrier covered every staged batch, including
            # any a concurrent staged committer wrote before us; let
            # their wait_durable return without a second barrier.
            with self._group_cond:
                covered = self._staged_ticket
                self._durable_ticket = max(self._durable_ticket, covered)
                self._group_cond.notify_all()
            if self.shipper is not None:
                # Earlier staged batches became durable under our barrier;
                # release them first so the stream stays in LSN order.
                self.shipper.on_durable(covered)
                self.shipper.on_batch(lsn, docs)

    def log_commit_staged(self, txn_id: int,
                          commit_ts: int | None = None) -> int:
        """Append the transaction's batch to the log pages *without* a
        barrier; returns the durability ticket for :meth:`wait_durable`.

        The page writes run under the log lock, so batches land in
        strictly increasing ticket order — the prefix property group
        commit's crash semantics rest on. The batch is **not durable**
        until a barrier covering the returned ticket has completed.
        """
        with self._lock:
            lsn, docs = self._stage_batch(txn_id, commit_ts)
            with self._group_cond:
                self._staged_ticket += 1
                ticket = self._staged_ticket
            if self.shipper is not None:
                # Parked (not pollable) until a barrier covers the ticket;
                # staging under the log lock keeps the park in LSN order.
                self.shipper.on_staged(ticket, lsn, docs)
            return ticket

    def _stage_batch(self, txn_id: int, commit_ts: int | None
                     ) -> tuple[int | None, list[dict[str, Any]]]:
        """Write one commit's batch onto fresh log pages (caller locks).

        Returns ``(lsn, record docs)`` so the commit paths can hand the
        batch to an attached shipper without re-reading the pages.
        """
        doc: dict[str, Any] = {"t": REC_COMMIT, "txn": txn_id}
        if commit_ts is not None:
            doc["ts"] = commit_ts
        self._buffer(txn_id, doc)
        frames = self._pending.pop(txn_id)
        docs = self._pending_docs.pop(txn_id)
        blob = b"".join(frames)
        try:
            size = self.pager.page_size
            for start in range(0, len(blob), size):
                page_no = self.pager.allocate_page()
                self.pager.write_page(page_no, blob[start:start + size])
        except Exception:
            self.damaged = True
            raise
        self.flushes += 1
        return commit_ts, docs

    def wait_durable(self, ticket: int) -> None:
        """Block until a barrier has covered ``ticket`` (group commit).

        The first waiter to find its ticket uncovered while no barrier
        is in flight becomes the leader: it snapshots the highest staged
        ticket, runs one barrier outside the condition lock, and wakes
        every waiter at or below that ticket. Waiters arriving during a
        barrier sleep until it finishes, then elect the next leader —
        so any number of concurrent committers cost at most two
        barriers per disk round-trip.
        """
        rec = obs.RECORDER
        with self._group_cond:
            while True:
                if self.damaged:
                    raise WALError(
                        "write-ahead log is damaged (a flush failed "
                        "part-way); staged commits may not be durable — "
                        "reopen and recover the database"
                    )
                if self._durable_ticket >= ticket:
                    return
                if not self._flushing:
                    self._flushing = True
                    target = self._staged_ticket
                    break
                self._group_cond.wait()
        try:
            self._barrier()
        except Exception:
            with self._group_cond:
                self.damaged = True
                self._flushing = False
                self._group_cond.notify_all()
            if self.shipper is not None:
                self.shipper.on_damaged()
            raise
        with self._group_cond:
            self._flushing = False
            covered = target - self._durable_ticket
            self._durable_ticket = max(self._durable_ticket, target)
            self.group_commits += 1
            self.group_commit_batches += max(covered, 0)
            self._group_cond.notify_all()
        if self.shipper is not None:
            self.shipper.on_durable(target)
        if rec.enabled:
            rec.inc("wal.group_commits")
            rec.observe("wal.group_size", max(covered, 1))

    def force(self) -> None:
        """Make every staged batch durable (the WAL rule helper).

        The buffer manager calls this before writing a dirty data page
        back to the heap pager, and :meth:`GeographicDatabase.checkpoint`
        before flushing the pool — log records must reach stable storage
        before any data page they cover.
        """
        with self._group_cond:
            if self.damaged:
                # A damaged tail is refused by further commits and
                # truncated by the next checkpoint; there is nothing
                # left worth forcing (and recovery's own checkpoint
                # must not trip over it).
                return
            ticket = self._staged_ticket
            if self._durable_ticket >= ticket:
                return
        self.wait_durable(ticket)

    def log_abort(self, txn_id: int) -> None:
        """Drop a transaction's buffered records; nothing reaches the log."""
        with self._lock:
            self._pending.pop(txn_id, None)
            self._pending_docs.pop(txn_id, None)

    def attach_shipper(self, shipper: LogShipper) -> LogShipper:
        """Attach a :class:`LogShipper`; batches committed from now on are
        retained for followers. Use
        :meth:`GeographicDatabase.enable_shipping` rather than calling
        this directly — it seeds ``base_lsn`` from the current commit
        timestamp under the commit lock."""
        with self._lock:
            if self.shipper is not None and self.shipper is not shipper:
                raise ReplicationError(
                    "a LogShipper is already attached to this log"
                )
            self.shipper = shipper
        return shipper

    def _barrier(self) -> None:
        if self.sync_mode == "none":
            return
        if self.sync_mode == "flush":
            flush = getattr(self.pager, "flush", None)
            if callable(flush):
                flush()
            return
        sync = getattr(self.pager, "sync", None)
        if callable(sync):
            sync()
        # A memory-backed log is trivially "synced"; the barrier still
        # counts so tests over MemoryPager observe the same protocol.
        self.fsyncs += 1
        if obs.RECORDER.enabled:
            obs.RECORDER.inc("wal.fsyncs")

    # -- recovery --------------------------------------------------------------

    def records(self) -> Iterator[dict[str, Any]]:
        """Every intact record, in log order, up to the first torn frame."""
        size = self.pager.page_size
        data = b"".join(
            self.pager.read_page(no) for no in range(self.pager.page_count)
        )
        offset, end = 0, len(data)
        while offset + FRAME_HEADER <= end:
            length = int.from_bytes(data[offset:offset + 4], "big")
            if length == 0:
                if offset % size == 0:
                    return  # an untouched page: end of log
                offset = (offset // size + 1) * size  # batch padding
                continue
            crc = int.from_bytes(data[offset + 4:offset + 8], "big")
            start = offset + FRAME_HEADER
            if start + length > end:
                return  # torn tail: frame extends past the written pages
            payload = data[start:start + length]
            if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
                return  # torn or corrupt frame: keep the stable prefix
            try:
                doc = json.loads(payload.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                return
            yield doc
            offset = start + length

    def replay(self) -> list[list[dict[str, Any]]]:
        """Committed transactions in log order, each as its record list.

        Transactions without a surviving ``commit`` record (in-flight at
        the crash, or cut off by a torn tail) are dropped.
        """
        open_txns: dict[Any, list[dict[str, Any]]] = {}
        committed: list[list[dict[str, Any]]] = []
        for doc in self.records():
            kind, txn_id = doc.get("t"), doc.get("txn")
            if kind == REC_BEGIN:
                open_txns[txn_id] = [doc]
            elif kind in (REC_INTENT, REC_RASTER):
                open_txns.setdefault(txn_id, []).append(doc)
            elif kind == REC_COMMIT:
                records = open_txns.pop(txn_id, None)
                if records is not None:
                    records.append(doc)
                    committed.append(records)
        return committed

    def checkpoint(self) -> None:
        """Reset the log after the database flushed and synced its pages.

        Every logged transaction is now reflected in the heap, so the log
        restarts empty; a damaged tail is discarded with it.
        """
        with self._lock:
            if self._pending:
                raise WALError(
                    "cannot checkpoint the log with in-flight transactions"
                )
            truncate = getattr(self.pager, "truncate", None)
            if not callable(truncate):
                raise WALError(
                    f"wal pager {type(self.pager).__name__} cannot truncate"
                )
            truncate()
            sync = getattr(self.pager, "sync", None)
            if callable(sync) and self.sync_mode == "fsync":
                sync()
            self.damaged = False

    # -- introspection ---------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        return {
            "pages": self.pager.page_count,
            "page_size": self.pager.page_size,
            "sync_mode": self.sync_mode,
            "appends": self.appends,
            "flushes": self.flushes,
            "fsyncs": self.fsyncs,
            "pending_txns": len(self._pending),
            "recovered_txns": self.recovered_txns,
            "damaged": self.damaged,
            "group_commit": self.group_commit,
            "group_commits": self.group_commits,
            "group_commit_batches": self.group_commit_batches,
            "shipper": self.shipper.stats() if self.shipper else None,
        }

    def close(self) -> None:
        close = getattr(self.pager, "close", None)
        if callable(close):
            close()

    def __repr__(self) -> str:
        return (f"WriteAheadLog(pages={self.pager.page_count}, "
                f"sync={self.sync_mode}, damaged={self.damaged})")


class FaultInjectingPager(Pager):
    """Pager wrapper that simulates a crash after N successful writes.

    Drives the recovery test matrix: arm it with a write budget, run a
    workload until :class:`~repro.errors.CrashError` fires, then simulate
    a restart by wrapping the surviving ``inner`` pager (the "disk") in a
    fresh database + log — buffer frames and pending WAL batches are the
    volatile state a real crash would lose.

    ``torn=True`` additionally persists a prefix of the failing write
    before raising, modeling a torn page write; the WAL's per-record
    checksums detect and discard such tails.
    """

    def __init__(self, inner: Pager, fail_after_writes: int | None = None,
                 torn: bool = False):
        self.inner = inner
        self.page_size = inner.page_size
        self.fail_after_writes = fail_after_writes
        self.torn = torn
        #: successful writes so far (the crash index counts from arm())
        self.writes = 0
        self.crashed = False

    def arm(self, fail_after_writes: int | None,
            torn: bool | None = None) -> None:
        """(Re)arm: fail after this many further successful writes."""
        self.fail_after_writes = fail_after_writes
        self.writes = 0
        self.crashed = False
        if torn is not None:
            self.torn = torn

    def _guard(self) -> None:
        if self.crashed:
            raise CrashError("pager has crashed; reopen the database "
                             "over the surviving inner pager to recover")

    def read_page(self, page_no: int) -> bytes:
        self._guard()
        return self.inner.read_page(page_no)

    def write_page(self, page_no: int, data: bytes) -> None:
        self._guard()
        if (self.fail_after_writes is not None
                and self.writes >= self.fail_after_writes):
            self.crashed = True
            if self.torn:
                self.inner.write_page(page_no, data[:max(1, len(data) // 2)])
            raise CrashError(
                f"injected crash at write #{self.writes} "
                f"(page {page_no}{', torn' if self.torn else ''})"
            )
        self.writes += 1
        self.inner.write_page(page_no, data)

    def allocate_page(self) -> int:
        self._guard()
        return self.inner.allocate_page()

    @property
    def page_count(self) -> int:
        return self.inner.page_count

    def sync(self) -> None:
        self._guard()
        sync = getattr(self.inner, "sync", None)
        if callable(sync):
            sync()

    def flush(self) -> None:
        self._guard()
        flush = getattr(self.inner, "flush", None)
        if callable(flush):
            flush()

    def truncate(self) -> None:
        self._guard()
        truncate = getattr(self.inner, "truncate", None)
        if callable(truncate):
            truncate()
