"""LRU buffer manager over a pager.

§2.1: "the volume of data manipulated in gis is usually very high and the
interface has to provide large buffers to temporarily store and manipulate
the data retrieved from the spatial dbms ... Efficient management of
buffers is thus a typical dbms problem that the gis interface must deal
with." The paper's architecture moves that burden into the DBMS; this is
the component that carries it. Benchmark C4 drives it with map-browsing
(pan/zoom) page access patterns.

The manager caches page images with an LRU eviction policy, pin counts
(pinned pages are never evicted), write-back of dirty frames, and full
hit/miss/eviction accounting.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from .. import obs
from ..errors import BufferError_
from .storage import Pager


@dataclass
class BufferStats:
    """Counters exposed for monitoring and for benchmark C4."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    write_backs: int = 0
    pin_denials: int = 0
    peak_pinned: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def snapshot(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "write_backs": self.write_backs,
            "hit_ratio": round(self.hit_ratio, 4),
            "write_allocs": self.extra.get("write_allocs", 0),
        }


def _no_promotion(page_no: int) -> None:
    """Hit-path promotion hook while a bulk_scan scope is active."""


class _Frame:
    __slots__ = ("data", "dirty", "pins")

    def __init__(self, data: bytes):
        self.data = data
        self.dirty = False
        self.pins = 0


class BufferManager:
    """A fixed-capacity LRU page cache in front of a :class:`Pager`.

    ``read_page`` / ``write_page`` mirror the pager interface so a
    :class:`repro.geodb.storage.HeapFile` can route its IO through the
    buffer transparently (``heap.attach_buffer(manager)``).
    """

    def __init__(self, pager: Pager, capacity: int = 64):
        if capacity < 1:
            raise BufferError_("buffer capacity must be at least 1 frame")
        self.pager = pager
        self.capacity = capacity
        self._frames: "OrderedDict[int, _Frame]" = OrderedDict()
        self.stats = BufferStats()
        #: depth of nested no-steal scopes (dirty frames pinned in memory)
        self._no_steal = 0
        #: depth of nested bulk-scan scopes (scan-resistant insertion)
        self._bulk = 0
        #: hit-path promotion hook: the bound OrderedDict move normally,
        #: a no-op inside bulk_scan scopes — swapped rather than branched
        #: so the hot hit path stays within the disabled-obs overhead gate
        self._promote = self._frames.move_to_end
        #: called before a dirty frame is written back by eviction; the
        #: database points this at ``wal.force`` so staged (group-commit)
        #: log batches reach stable storage before the data pages they
        #: cover (write-ahead rule)
        self.pre_steal_hook = None

    # -- pager-compatible interface -------------------------------------------

    def read_page(self, page_no: int) -> bytes:
        frame = self._get_frame(page_no)
        return frame.data

    def write_page(self, page_no: int, data: bytes) -> None:
        frame = self._frames.get(page_no)
        if frame is None:
            # Allocating a frame for a full-page write needs no pager read,
            # so it is neither a hit nor a miss — counted apart so the C4
            # hit ratio stays a pure read-path signal.
            self._make_room()
            frame = _Frame(b"")
            self._frames[page_no] = frame
            self.stats.extra["write_allocs"] = (
                self.stats.extra.get("write_allocs", 0) + 1
            )
            rec = obs.RECORDER
            if rec.enabled:
                rec.inc("buffer.write_allocs")
                rec.gauge("buffer.resident_frames", len(self._frames))
        else:
            self._frames.move_to_end(page_no)
        frame.data = data.ljust(self.pager.page_size, b"\x00")
        frame.dirty = True

    # -- crash consistency ------------------------------------------------------

    @contextmanager
    def no_steal(self) -> Iterator["BufferManager"]:
        """Forbid eviction of dirty frames for the duration of the block.

        The transaction commit path applies mutations under this scope so
        no half-applied page can reach the pager before the WAL commit
        record is durable (the "no steal" policy). Clean frames still
        evict normally; if only dirty or pinned frames remain, the pool
        temporarily overflows its capacity instead of writing.
        """
        self._no_steal += 1
        try:
            yield self
        finally:
            self._no_steal -= 1

    # -- scan resistance ---------------------------------------------------------

    @contextmanager
    def bulk_scan(self) -> Iterator["BufferManager"]:
        """Scan-resistant caching for the duration of the block.

        A one-shot sweep over many cold pages (a full raster level, a
        table scan) would otherwise flush the hot working set out of a
        pure-LRU pool: every swept page enters at the MRU end and each
        one evicts a page that *will* be re-read. Inside this scope,
        misses are inserted at the **LRU end** instead — the sweep
        recycles its own frames and the hot set survives — and hits are
        not promoted, so the sweep cannot launder its pages into the
        hot end by touching them twice. Nesting is allowed; normal
        promotion resumes when the outermost scope exits.
        """
        self._bulk += 1
        self._promote = _no_promotion
        try:
            yield self
        finally:
            self._bulk -= 1
            if not self._bulk:
                self._promote = self._frames.move_to_end

    # -- pinning ---------------------------------------------------------------

    def pin(self, page_no: int) -> bytes:
        """Pin a page in memory and return its contents.

        Pinned pages survive eviction; every :meth:`pin` must be paired
        with an :meth:`unpin`.
        """
        frame = self._get_frame(page_no)
        frame.pins += 1
        pinned = sum(1 for f in self._frames.values() if f.pins > 0)
        self.stats.peak_pinned = max(self.stats.peak_pinned, pinned)
        return frame.data

    def unpin(self, page_no: int, dirty: bool = False) -> None:
        frame = self._frames.get(page_no)
        if frame is None or frame.pins == 0:
            raise BufferError_(f"page {page_no} is not pinned")
        frame.pins -= 1
        if dirty:
            frame.dirty = True

    # -- internals -------------------------------------------------------------

    def _get_frame(self, page_no: int) -> _Frame:
        rec = obs.RECORDER
        if page_no in self._frames:
            self.stats.hits += 1
            if rec.enabled:
                rec.inc("buffer.hits")
            self._promote(page_no)
            return self._frames[page_no]
        self.stats.misses += 1
        if rec.enabled:
            rec.inc("buffer.misses")
        self._make_room()
        frame = _Frame(self.pager.read_page(page_no))
        self._frames[page_no] = frame
        if self._bulk:
            # Scan-resistant placement: the swept page becomes the next
            # eviction victim instead of displacing the hot set.
            self._frames.move_to_end(page_no, last=False)
            self.stats.extra["bulk_reads"] = (
                self.stats.extra.get("bulk_reads", 0) + 1
            )
            if rec.enabled:
                rec.inc("buffer.bulk_reads")
        if rec.enabled:
            rec.gauge("buffer.resident_frames", len(self._frames))
        return frame

    def _make_room(self) -> None:
        while len(self._frames) >= self.capacity:
            victim_no = None
            for page_no, frame in self._frames.items():  # LRU order
                if frame.pins == 0 and not (self._no_steal and frame.dirty):
                    victim_no = page_no
                    break
            if victim_no is None:
                if self._no_steal:
                    # Every unpinned frame is dirty mid-commit: overflow the
                    # pool rather than leak an uncommitted page to the pager.
                    self.stats.extra["no_steal_overflows"] = (
                        self.stats.extra.get("no_steal_overflows", 0) + 1
                    )
                    return
                self.stats.pin_denials += 1
                if obs.RECORDER.enabled:
                    obs.RECORDER.inc("buffer.pin_denials")
                raise BufferError_(
                    f"all {self.capacity} buffer frames are pinned; cannot evict"
                )
            self._evict(victim_no)

    def _evict(self, page_no: int) -> None:
        frame = self._frames.pop(page_no)
        self.stats.evictions += 1
        rec = obs.RECORDER
        if rec.enabled:
            rec.inc("buffer.evictions")
        if frame.dirty:
            # The WAL rule: a dirty page may cover a commit whose staged
            # log batch has not been fsynced yet (group commit); the
            # hook forces the log durable before the data page can
            # overtake it to stable storage.
            if self.pre_steal_hook is not None:
                self.pre_steal_hook()
            self.pager.write_page(page_no, frame.data)
            self.stats.write_backs += 1
            if rec.enabled:
                rec.inc("buffer.write_backs")

    # -- maintenance -------------------------------------------------------------

    def flush(self) -> int:
        """Write every dirty frame back to the pager; returns the count."""
        flushed = 0
        for page_no, frame in self._frames.items():
            if frame.dirty:
                self.pager.write_page(page_no, frame.data)
                frame.dirty = False
                flushed += 1
                self.stats.write_backs += 1
        if flushed and obs.RECORDER.enabled:
            obs.RECORDER.inc("buffer.write_backs", flushed)
        return flushed

    def clear(self) -> None:
        """Flush and drop every unpinned frame."""
        self.flush()
        pinned = {no: f for no, f in self._frames.items() if f.pins > 0}
        self._frames = OrderedDict(pinned)
        if not self._bulk:  # rebind: the old dict's bound method is stale
            self._promote = self._frames.move_to_end

    def resident_pages(self) -> list[int]:
        """Page numbers currently cached, LRU-first."""
        return list(self._frames)

    def __len__(self) -> int:
        return len(self._frames)
