"""Columnar scan storage: version-stamped per-class column sets.

The query engine's row path filters by calling a compiled closure on
every candidate :class:`~repro.geodb.instances.GeoObject` — one Python
call, one dict probe and one comparison per row per predicate term. For
the scan-heavy analysis queries the customization loop fires constantly
(rule evaluation, presentation refresh, live-query fallback
re-execution), that per-row interpreter overhead dominates once the
result cache misses.

This module materializes the attribute paths a query touches into
parallel Python lists — one **column** per path, plus an oid column and
a packed bbox column per geometry attribute — so predicate kernels
(:meth:`~repro.geodb.query.Predicate.compile_columns`) can run as plain
list comprehensions over positions, without materializing or calling
into any object until the surviving rows are known.

Freshness uses the exact mechanism planner :class:`~repro.geodb.planner.
Statistics` and shard maps already rely on: a column set is stamped with
``(class commit version, extent cardinality)`` at build time and is
discarded the moment either moves — live commits, crash-recovery replay,
replicated batches and resyncs all bump the class version, so no new
invalidation hook is needed. Building snapshots the extent under the
database's mutation seqlock (retrying like ``Transaction.query``); if a
commit is applying concurrently the build gives up and the engine falls
back to the row path for that scan (``query.columns.fallback``).

Column sets describe **the latest committed state only**. MVCC snapshot
readers (``Transaction.read`` / ``Transaction.query``) and mid-
transaction overlays never touch this cache — they resolve through the
version store — and the engine itself only executes at the latest
commit, so a fresh column set is always the state the row path would
have scanned.
"""

from __future__ import annotations

from typing import Any

from .. import obs
from ..spatial.geometry import Geometry
from .query import compile_path
from .schema import GeoClass

#: Build attempts against the commit seqlock before giving up (the
#: engine then answers via the row path; the next query retries).
_BUILD_RETRIES = 4


class ClassColumns:
    """The materialized columns of one (schema, class) at one version.

    ``objects`` is the extent snapshot the columns are aligned with, in
    extent (insertion) order: position ``i`` of every column describes
    ``objects[i]``. Value columns are built lazily per attribute path —
    a query only pays for the paths it touches — and are keyed by the
    *query class* too, because path resolution applies the query class's
    attribute defaults to every closure member (exactly like the row
    path's compiled accessors).
    """

    __slots__ = ("schema_name", "class_name", "version", "cardinality",
                 "objects", "oids", "_row_of", "_paths", "_geometry")

    def __init__(self, schema_name: str, class_name: str, version: int,
                 objects: list):
        self.schema_name = schema_name
        self.class_name = class_name
        self.version = version
        self.cardinality = len(objects)
        self.objects = objects
        #: the oid column, aligned with ``objects``
        self.oids = [obj.oid for obj in objects]
        self._row_of: dict[str, int] | None = None
        #: (path, query class name) -> value column
        self._paths: dict[tuple[str, str], list] = {}
        #: geometry attr -> (value column, packed bbox column)
        self._geometry: dict[str, tuple[list, list]] = {}

    def __len__(self) -> int:
        return self.cardinality

    @property
    def row_of(self) -> dict[str, int]:
        """oid -> row position, for hash-scan and shard-slice selection."""
        if self._row_of is None:
            self._row_of = {oid: i for i, oid in enumerate(self.oids)}
        return self._row_of

    def path_column(self, path: str, geo_class: GeoClass) -> list:
        """The value column for an attribute path.

        Values are resolved through :func:`~repro.geodb.query.
        compile_path` with ``geo_class``'s defaults — the same accessor
        the row path compiles — so a position holds exactly what the
        row path would have compared, including the ``MISSING`` sentinel
        for unresolvable dotted paths.
        """
        key = (path, geo_class.name)
        column = self._paths.get(key)
        if column is None:
            accessor = compile_path(path, geo_class)
            column = [accessor(obj) for obj in self.objects]
            self._paths[key] = column
        return column

    def geometry_column(self, attr: str) -> tuple[list, list]:
        """``(geometry column, packed bbox column)`` for one attribute.

        The geometry column holds the raw attribute value (spatial
        predicates read ``obj._values`` directly, never type defaults);
        the bbox column packs each geometry's bounds as a
        ``(min_x, min_y, max_x, max_y)`` tuple — ``None`` where the
        value is not a :class:`~repro.spatial.geometry.Geometry` — so
        kernels can reject rows on bounds without touching the geometry.
        """
        cached = self._geometry.get(attr)
        if cached is None:
            geoms = [obj._values.get(attr) for obj in self.objects]
            boxes: list = []
            for geom in geoms:
                if isinstance(geom, Geometry):
                    box = geom.bbox()
                    boxes.append((box.min_x, box.min_y,
                                  box.max_x, box.max_y))
                else:
                    boxes.append(None)
            cached = (geoms, boxes)
            self._geometry[attr] = cached
        return cached

    def column_count(self) -> int:
        """Materialized columns (paths + geometry pairs), for status."""
        return len(self._paths) + 2 * len(self._geometry)

    def describe(self) -> dict[str, Any]:
        return {
            "schema": self.schema_name,
            "class": self.class_name,
            "version": self.version,
            "rows": self.cardinality,
            "columns": self.column_count(),
            "paths": sorted(path for path, __ in self._paths),
        }


class ColumnCache:
    """Per-(schema, class) column sets for one database.

    Created lazily by :attr:`~repro.geodb.database.GeographicDatabase.
    column_cache`; entries refresh themselves on first use after any
    commit that touches their class (see module docstring).
    """

    def __init__(self, database):
        self._db = database
        self._cache: dict[tuple[str, str], ClassColumns] = {}
        # Counters feed the CLI ``column-status`` hit ratios; the obs
        # counters mirror them when a recorder is enabled.
        self.builds = 0
        self.hits = 0
        self.invalidations = 0

    def for_class(self, schema_name: str,
                  class_name: str) -> ClassColumns | None:
        """A version-fresh column set, or ``None`` mid-commit.

        Cached sets are validated against ``(class commit version,
        extent cardinality)``; a stale set is rebuilt in place. Returns
        ``None`` when a commit is applying concurrently (the extent
        cannot be snapshotted consistently) — callers fall back to the
        row path and retry on the next query.
        """
        db = self._db
        key = (schema_name, class_name)
        extent = db.extent(schema_name, class_name)
        cached = self._cache.get(key)
        if cached is not None \
                and cached.version == db.class_version(schema_name,
                                                       class_name) \
                and cached.cardinality == len(extent):
            self.hits += 1
            rec = obs.RECORDER
            if rec.enabled:
                rec.inc("query.columns.hit")
            return cached
        # (Re)build against a stable extent snapshot: the version and
        # the object list must come from the same commit state, so the
        # read is bracketed by the mutation seqlock exactly like
        # Transaction.query's candidate collection.
        for __ in range(_BUILD_RETRIES):
            seq = db._mutation_seq
            if seq & 1:
                continue
            version = db.class_version(schema_name, class_name)
            try:
                objects = list(extent)
            except RuntimeError:
                continue
            if db._mutation_seq == seq:
                break
        else:
            return None
        fresh = ClassColumns(schema_name, class_name, version, objects)
        self._cache[key] = fresh
        self.builds += 1
        rec = obs.RECORDER
        if rec.enabled:
            rec.inc("query.columns.build")
            if cached is not None:
                rec.inc("query.columns.invalidation")
        if cached is not None:
            self.invalidations += 1
        return fresh

    def invalidate(self) -> None:
        """Drop every column set (snapshot installs, resyncs, tests)."""
        self._cache.clear()

    def status(self) -> dict[str, Any]:
        """A JSON-safe export for the CLI ``column-status`` command."""
        classes = [entry.describe() for entry in self._cache.values()]
        lookups = self.hits + self.builds
        return {
            "summary": {
                "classes": len(classes),
                "rows": sum(entry["rows"] for entry in classes),
                "columns": sum(entry["columns"] for entry in classes),
                "builds": self.builds,
                "hits": self.hits,
                "invalidations": self.invalidations,
                "hit_ratio": round(self.hits / lookups, 3) if lookups
                else None,
            },
            "classes": classes,
        }
