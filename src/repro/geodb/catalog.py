"""Metadata catalog: database-resident documents.

The paper stores *inside the database* both the interface objects library
(§3.2: widgets "can be inserted, updated and removed dynamically") and the
customization rules (§3.4: "Customization rules stored in the database are
derived from assertives written in this language"). The catalog is the
persistence surface for those artifacts, plus schema descriptions.

It is a tiny keyed document store over the database's heap file: documents
are identified by ``(kind, name)`` and hold a JSON-safe dict. The widget
library and the rule repository serialize through it; they reload from it
on database re-open, which is what makes customizations survive sessions.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..errors import ObjectNotFoundError, SchemaError
from .database import GeographicDatabase
from .schema import Schema
from .storage import RecordId

#: Reserved document kinds used by the library layers.
KIND_SCHEMA = "schema"
KIND_WIDGET = "widget"
KIND_CUSTOMIZATION = "customization"
KIND_RULE = "rule"
KIND_PRESENTATION = "presentation"
KIND_STATISTICS = "statistics"


class MetadataCatalog:
    """Keyed documents stored in the database's own pages."""

    def __init__(self, database: GeographicDatabase):
        self.database = database
        #: (kind, name) -> RecordId
        self._directory: dict[tuple[str, str], RecordId] = {}
        self._rebuild_directory()

    def _rebuild_directory(self) -> None:
        """Recover the directory by scanning the heap for catalog records."""
        for rid, record in self.database.heap.scan():
            if record.get("_catalog") is True:
                self._directory[(record["kind"], record["name"])] = rid

    # -- document API ----------------------------------------------------------

    def put(self, kind: str, name: str, document: dict[str, Any]) -> None:
        """Insert or replace a document."""
        if not kind or not name:
            raise SchemaError("catalog documents need a kind and a name")
        record = {"_catalog": True, "kind": kind, "name": name, "doc": document}
        key = (kind, name)
        if key in self._directory:
            self._directory[key] = self.database.heap.overwrite(
                self._directory[key], record
            )
        else:
            self._directory[key] = self.database.heap.insert(record)

    def get(self, kind: str, name: str) -> dict[str, Any]:
        key = (kind, name)
        if key not in self._directory:
            raise ObjectNotFoundError(f"no catalog document {kind}/{name}")
        return self.database.heap.read(self._directory[key])["doc"]

    def has(self, kind: str, name: str) -> bool:
        return (kind, name) in self._directory

    def delete(self, kind: str, name: str) -> None:
        key = (kind, name)
        if key not in self._directory:
            raise ObjectNotFoundError(f"no catalog document {kind}/{name}")
        self.database.heap.delete(self._directory.pop(key))

    def names(self, kind: str) -> list[str]:
        return sorted(name for (k, name) in self._directory if k == kind)

    def documents(self, kind: str) -> Iterator[tuple[str, dict[str, Any]]]:
        for name in self.names(kind):
            yield name, self.get(kind, name)

    # -- schema persistence -------------------------------------------------------

    def save_schema(self, schema: Schema) -> None:
        """Persist a schema description (types, docs, hierarchy)."""
        self.put(KIND_SCHEMA, schema.name, schema.describe())

    def load_schema(self, name: str) -> Schema:
        """Rebuild a :class:`Schema` from its stored description.

        Method *implementations* are not persisted (they are Python
        callables); re-register them via
        :meth:`GeographicDatabase.register_method` after loading.
        """
        return Schema.from_description(self.get(KIND_SCHEMA, name))

    # -- planner statistics ------------------------------------------------------

    def save_statistics(self, schema_name: str) -> None:
        """Persist the planner's statistics snapshot for one schema.

        The snapshot is advisory — the live planner recomputes lazily
        from commit versions — but a stored copy lets tooling inspect
        the cost model's inputs (and a re-opened database warm-start
        its estimates) without touching every extent.
        """
        snapshot = self.database.statistics.snapshot(schema_name)
        self.put(KIND_STATISTICS, schema_name, snapshot[schema_name])

    def load_statistics(self, schema_name: str) -> dict[str, Any]:
        """The stored per-class statistics snapshot for one schema."""
        return self.get(KIND_STATISTICS, schema_name)

    def save_all_schemas(self) -> int:
        count = 0
        for name in self.database.schema_names():
            self.save_schema(self.database.get_schema_object(name))
            count += 1
        return count

    def __len__(self) -> int:
        return len(self._directory)
