"""Instances (geo-objects) of database classes.

A :class:`GeoObject` carries an object id, its class name, and a value per
attribute. Objects validate against their class definition on creation and
on every update; the Instance window of the interface displays one panel
per attribute of the effective (inherited + own) attribute list.
"""

from __future__ import annotations

import itertools
from typing import Any

from ..errors import SchemaError, TypeMismatchError
from ..spatial.geometry import BBox, Geometry
from .schema import Attribute, GeoClass, Schema

_oid_counter = itertools.count(1)


def fresh_oid(class_name: str) -> str:
    """Generate a readable, unique object id like ``Pole#42``."""
    return f"{class_name}#{next(_oid_counter)}"


def ensure_oid_counter_above(value: int) -> None:
    """Advance the oid counter past ``value``.

    Called when loading persisted objects so freshly generated oids never
    collide with restored ones.
    """
    global _oid_counter
    current = next(_oid_counter)
    _oid_counter = itertools.count(max(current, value + 1))


class GeoObject:
    """One database instance.

    Values are kept in a plain dict keyed by attribute name. Unset optional
    attributes are simply absent; reads through :meth:`get` fall back to the
    type's neutral default so display code never sees ``KeyError``.
    """

    __slots__ = ("oid", "class_name", "_values", "version")

    def __init__(self, oid: str, class_name: str, values: dict[str, Any]):
        self.oid = oid
        self.class_name = class_name
        self._values = dict(values)
        #: bumped on every update; lets displays detect staleness.
        self.version = 0

    # -- validation -----------------------------------------------------------

    @classmethod
    def create(
        cls,
        schema: Schema,
        class_name: str,
        values: dict[str, Any],
        oid: str | None = None,
    ) -> "GeoObject":
        """Build and validate an instance of ``class_name``."""
        attrs = schema.effective_attributes(class_name)
        obj = cls(oid or fresh_oid(class_name), class_name, {})
        obj._validate_and_set(attrs, values, require_required=True)
        return obj

    def _validate_and_set(
        self,
        attrs: list[Attribute],
        values: dict[str, Any],
        require_required: bool,
    ) -> None:
        by_name = {a.name: a for a in attrs}
        unknown = set(values) - set(by_name)
        if unknown:
            raise SchemaError(
                f"object of class {self.class_name!r} got unknown attributes "
                f"{sorted(unknown)}"
            )
        for name, value in values.items():
            if value is None:
                self._values.pop(name, None)
                continue
            by_name[name].type.validate(value, name)
            self._values[name] = value
        if require_required:
            missing = [
                a.name for a in attrs if a.required and a.name not in self._values
            ]
            if missing:
                raise TypeMismatchError(
                    f"object of class {self.class_name!r} is missing required "
                    f"attributes {missing}"
                )

    def update(self, schema: Schema, changes: dict[str, Any]) -> dict[str, Any]:
        """Apply ``changes`` (None removes an optional value); returns the
        previous values of the touched attributes (for undo logs)."""
        attrs = schema.effective_attributes(self.class_name)
        required = {a.name for a in attrs if a.required}
        previous = {name: self._values.get(name) for name in changes}
        for name, value in changes.items():
            if value is None and name in required:
                raise TypeMismatchError(
                    f"cannot unset required attribute {name!r} of {self.oid}"
                )
        self._validate_and_set(attrs, changes, require_required=False)
        self.version += 1
        return previous

    # -- access ----------------------------------------------------------------

    def get(self, name: str, geo_class: GeoClass | None = None) -> Any:
        """Value of attribute ``name``; unset attributes fall back to the
        type default when the class is supplied, else ``None``."""
        if name in self._values:
            return self._values[name]
        if geo_class is not None and geo_class.has_attribute(name):
            return geo_class.attribute(name).type.default()
        return None

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def values(self) -> dict[str, Any]:
        """A snapshot copy of the set attributes."""
        return dict(self._values)

    def geometry(self, attr_name: str | None = None) -> Geometry | None:
        """The object's geometry: the named attribute, or the first
        geometry-valued attribute found."""
        if attr_name is not None:
            value = self._values.get(attr_name)
            return value if isinstance(value, Geometry) else None
        for value in self._values.values():
            if isinstance(value, Geometry):
                return value
        return None

    def bbox(self, attr_name: str | None = None) -> BBox | None:
        geom = self.geometry(attr_name)
        return geom.bbox() if geom is not None else None

    def __repr__(self) -> str:
        return f"GeoObject({self.oid}, {len(self._values)} values, v{self.version})"


class Extent:
    """The set of live instances of one class (its *extension*).

    Iteration order is insertion order, which the Class-set window relies
    on for stable list displays.
    """

    def __init__(self, class_name: str):
        self.class_name = class_name
        self._objects: dict[str, GeoObject] = {}

    def add(self, obj: GeoObject) -> None:
        if obj.class_name != self.class_name:
            raise SchemaError(
                f"object {obj.oid} of class {obj.class_name!r} cannot join "
                f"extent of {self.class_name!r}"
            )
        if obj.oid in self._objects:
            raise SchemaError(f"duplicate oid {obj.oid} in extent {self.class_name!r}")
        self._objects[obj.oid] = obj

    def remove(self, oid: str) -> GeoObject:
        if oid not in self._objects:
            raise SchemaError(f"extent {self.class_name!r} has no object {oid}")
        return self._objects.pop(oid)

    def get(self, oid: str) -> GeoObject | None:
        return self._objects.get(oid)

    def get_many(self, oids) -> list[GeoObject]:
        """Resolve many oids at once, skipping ones no longer present."""
        get = self._objects.get
        return [obj for obj in map(get, oids) if obj is not None]

    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self):
        return iter(self._objects.values())

    def oids(self) -> list[str]:
        return list(self._objects)
