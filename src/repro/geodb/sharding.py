"""Spatial partitioning of class extents into shards.

A :class:`ShardMap` splits one class's extent into grid-cell shards by
the centroid of each object's geometry bbox, plus one *residual* shard
for objects without a geometry on the partition attribute. The planner
uses the map to emit scatter-gather plans: a windowed query only
executes on shards whose bounding box intersects the query's spatial
prefilter, and the residual shard is skipped whenever the prefilter is a
*necessary* condition of the predicate (an object with no geometry
cannot satisfy it) — the exact eligibility rule the single-extent
index-scan path already applies.

Soundness of pruning rests on one invariant: a shard's ``bbox`` is the
union of its members' geometry bboxes. The single-extent path answers a
windowed query via ``index.search(window)``, i.e. member-bbox-vs-window
intersection; a shard whose union box is disjoint from the window can
contain no member whose own box intersects it, so dropping the shard
drops nothing the R-tree path would have returned.

Maps are cached by :meth:`GeographicDatabase.shard_map` on (class commit
version, cardinality) — the same freshness rule as planner statistics —
so any commit or replicated batch touching the class rebuilds the
partition lazily on the next scatter query.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..spatial.geometry import BBox

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .database import GeographicDatabase

#: shard id of the no-geometry residual shard
RESIDUAL = "residual"


class Shard:
    """One partition cell: member oids plus their tight bounding box."""

    __slots__ = ("shard_id", "bbox", "oids")

    def __init__(self, shard_id: str, bbox: BBox | None, oids: list[str]):
        self.shard_id = shard_id
        #: union of member geometry bboxes; None for the residual shard
        #: (no geometry — never prunable by a window)
        self.bbox = bbox
        self.oids = oids

    @property
    def cardinality(self) -> int:
        return len(self.oids)

    def __repr__(self) -> str:
        return f"Shard({self.shard_id}, {len(self.oids)} oids)"


class ShardMap:
    """The spatial partition of one class extent."""

    __slots__ = ("schema_name", "class_name", "attr", "grid", "version",
                 "cardinality", "shards", "extent_bbox")

    def __init__(self, schema_name: str, class_name: str, attr: str,
                 grid: tuple[int, int], version: int, cardinality: int,
                 shards: list[Shard], extent_bbox: BBox):
        self.schema_name = schema_name
        self.class_name = class_name
        self.attr = attr
        self.grid = grid
        #: class commit version the partition was computed at
        self.version = version
        #: extent cardinality at compute time (with version, the cache key)
        self.cardinality = cardinality
        self.shards = shards
        self.extent_bbox = extent_bbox

    def live_shards(self, window: BBox | None,
                    prune_residual: bool) -> list[Shard]:
        """Shards a query must execute on.

        ``window`` is the query's spatial prefilter on the partition
        attribute (None → no pruning, every shard runs).
        ``prune_residual`` states the prefilter is a necessary condition
        of the predicate, so no-geometry objects cannot match and the
        residual shard may be skipped with the disjoint cells.
        """
        if window is None:
            return list(self.shards)
        live = []
        for shard in self.shards:
            if shard.bbox is None:
                if not prune_residual:
                    live.append(shard)
            elif shard.bbox.intersects(window):
                live.append(shard)
        return live

    def describe(self) -> dict[str, Any]:
        return {
            "class": self.class_name,
            "attr": self.attr,
            "grid": list(self.grid),
            "version": self.version,
            "cardinality": self.cardinality,
            "shards": [
                {"id": s.shard_id, "cardinality": s.cardinality}
                for s in self.shards
            ],
        }

    def __repr__(self) -> str:
        return (f"ShardMap({self.schema_name}.{self.class_name} on "
                f"{self.attr}, {self.grid[0]}x{self.grid[1]}, "
                f"{len(self.shards)} shards, v{self.version})")


def build_shard_map(db: "GeographicDatabase", schema_name: str,
                    class_name: str, attr: str, grid: tuple[int, int],
                    version: int) -> ShardMap:
    """Partition the class extent into grid-cell shards.

    Objects land in the cell containing their geometry's bbox center;
    objects without a geometry on ``attr`` land in the residual shard.
    Cell membership uses the center (not overlap), so every object is in
    exactly one shard — gathers never deduplicate. Each shard's bbox is
    the union of its members' actual bboxes (tight, for honest pruning:
    a long line assigned by center to one cell still extends that
    shard's box to wherever the line reaches).
    """
    extent = db.extent(schema_name, class_name)
    members: list[tuple[str, BBox | None]] = []
    extent_bbox = BBox.empty()
    for obj in extent:
        geom = obj.geometry(attr)
        if geom is None:
            members.append((obj.oid, None))
        else:
            box = geom.bbox()
            members.append((obj.oid, box))
            extent_bbox = extent_bbox.union(box)
    gx, gy = grid
    cells = gx * gy
    cell_oids: list[list[str]] = [[] for _ in range(cells)]
    cell_boxes: list[BBox] = [BBox.empty() for _ in range(cells)]
    residual: list[str] = []
    width = extent_bbox.width or 1.0
    height = extent_bbox.height or 1.0
    for oid, box in members:
        if box is None or extent_bbox.is_empty():
            residual.append(oid)
            continue
        cx, cy = box.center()
        col = min(int((cx - extent_bbox.min_x) / width * gx), gx - 1)
        row = min(int((cy - extent_bbox.min_y) / height * gy), gy - 1)
        cell = row * gx + col
        cell_oids[cell].append(oid)
        cell_boxes[cell] = cell_boxes[cell].union(box)
    shards = [
        Shard(f"cell-{i % gx}-{i // gx}", cell_boxes[i], cell_oids[i])
        for i in range(cells)
        if cell_oids[i]
    ]
    if residual:
        shards.append(Shard(RESIDUAL, None, residual))
    return ShardMap(schema_name, class_name, attr, (gx, gy), version,
                    len(members), shards, extent_bbox)
