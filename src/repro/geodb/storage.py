"""Page-based record storage for the geographic database.

§2.1 of the paper observes that "the volume of data manipulated in gis is
usually very high", making buffer management "a typical dbms problem that
the gis interface must deal with". To make that concern real (and
benchmarkable, experiment C4), the database persists records through a
page store + buffer manager rather than plain Python dicts.

Layout
------
* A :class:`PageStore` is a flat array of fixed-size pages, memory-backed
  (:class:`MemoryPager`) or file-backed (:class:`FilePager`).
* Each page is *slotted*: a small JSON header maps slot numbers to record
  byte ranges. Records are UTF-8 JSON blobs produced by
  :func:`encode_record`.
* A :class:`RecordId` is ``(page_no, slot)``. A :class:`HeapFile` provides
  insert/read/overwrite/delete over records and tracks per-page free space.

Records larger than a page spill into an *overflow chain* of dedicated
pages (bitmap attributes make this common).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Iterator

from .. import obs
from ..errors import StorageError

PAGE_SIZE = 4096


def _header_reserve(page_size: int) -> int:
    """Bytes reserved for the slot-directory header of a page."""
    return max(64, page_size // 8)


@dataclass(frozen=True, order=True)
class RecordId:
    """Stable address of a stored record."""

    page_no: int
    slot: int

    def __str__(self) -> str:
        return f"rid({self.page_no}:{self.slot})"


class Pager:
    """Abstract fixed-size page array."""

    page_size = PAGE_SIZE

    def read_page(self, page_no: int) -> bytes:
        raise NotImplementedError

    def write_page(self, page_no: int, data: bytes) -> None:
        raise NotImplementedError

    def allocate_page(self) -> int:
        raise NotImplementedError

    @property
    def page_count(self) -> int:
        raise NotImplementedError

    def _check_data(self, data: bytes) -> bytes:
        if len(data) > self.page_size:
            raise StorageError(
                f"page write of {len(data)} bytes exceeds page size {self.page_size}"
            )
        return data.ljust(self.page_size, b"\x00")


class MemoryPager(Pager):
    """Pages held in a Python list — the default for tests and examples."""

    def __init__(self, page_size: int = PAGE_SIZE):
        self.page_size = page_size
        self._pages: list[bytes] = []
        self.reads = 0
        self.writes = 0

    def read_page(self, page_no: int) -> bytes:
        if not 0 <= page_no < len(self._pages):
            raise StorageError(f"page {page_no} does not exist")
        self.reads += 1
        if obs.RECORDER.enabled:
            obs.RECORDER.inc("storage.page_reads", backend="memory")
        return self._pages[page_no]

    def write_page(self, page_no: int, data: bytes) -> None:
        if not 0 <= page_no < len(self._pages):
            raise StorageError(f"page {page_no} does not exist")
        self.writes += 1
        if obs.RECORDER.enabled:
            obs.RECORDER.inc("storage.page_writes", backend="memory")
        self._pages[page_no] = self._check_data(data)

    def allocate_page(self) -> int:
        self._pages.append(b"\x00" * self.page_size)
        return len(self._pages) - 1

    def truncate(self) -> None:
        """Drop every page (WAL checkpointing resets its log this way)."""
        self._pages.clear()

    @property
    def page_count(self) -> int:
        return len(self._pages)


class FilePager(Pager):
    """Pages persisted to a single file on disk."""

    def __init__(self, path: str, page_size: int = PAGE_SIZE):
        self.page_size = page_size
        self._path = path
        mode = "r+b" if os.path.exists(path) else "w+b"
        self._file = open(path, mode)
        self._file.seek(0, os.SEEK_END)
        size = self._file.tell()
        if size % page_size:
            raise StorageError(
                f"file {path!r} size {size} is not a multiple of page size"
            )
        self._count = size // page_size
        self.reads = 0
        self.writes = 0

    def read_page(self, page_no: int) -> bytes:
        if not 0 <= page_no < self._count:
            raise StorageError(f"page {page_no} does not exist")
        self.reads += 1
        if obs.RECORDER.enabled:
            obs.RECORDER.inc("storage.page_reads", backend="file")
        self._file.seek(page_no * self.page_size)
        return self._file.read(self.page_size)

    def write_page(self, page_no: int, data: bytes) -> None:
        if not 0 <= page_no < self._count:
            raise StorageError(f"page {page_no} does not exist")
        self.writes += 1
        if obs.RECORDER.enabled:
            obs.RECORDER.inc("storage.page_writes", backend="file")
        self._file.seek(page_no * self.page_size)
        self._file.write(self._check_data(data))

    def allocate_page(self) -> int:
        self._file.seek(self._count * self.page_size)
        self._file.write(b"\x00" * self.page_size)
        self._count += 1
        return self._count - 1

    def truncate(self) -> None:
        """Drop every page (WAL checkpointing resets its log this way)."""
        self._file.truncate(0)
        self._file.seek(0)
        self._count = 0

    @property
    def page_count(self) -> int:
        return self._count

    def flush(self) -> None:
        """Push buffered writes to the OS cache (no fsync)."""
        self._file.flush()

    def sync(self) -> None:
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        self._file.flush()
        self._file.close()


# ---------------------------------------------------------------------------
# Slotted pages
# ---------------------------------------------------------------------------


class SlottedPage:
    """In-memory view of one slotted page.

    Serialized layout: ``[4-byte header length][header JSON][payload bytes]``
    where the header maps slot ids to ``[offset, length]`` within the
    payload region, plus the overflow-chain pointer.
    """

    def __init__(self, page_size: int = PAGE_SIZE):
        self.page_size = page_size
        self.slots: dict[int, bytes] = {}
        self.next_slot = 0
        #: page_no of the next overflow page (for oversized records), or -1.
        self.overflow_next = -1
        #: True for every page of an overflow chain (head and links); such
        #: pages never accept ordinary records and links are skipped by scan.
        self.is_overflow = False

    # -- (de)serialization -----------------------------------------------------

    @classmethod
    def from_bytes(cls, data: bytes, page_size: int = PAGE_SIZE) -> "SlottedPage":
        page = cls(page_size)
        header_len = int.from_bytes(data[:4], "big")
        if header_len == 0:
            return page
        header = json.loads(data[4 : 4 + header_len].decode("utf-8"))
        page.next_slot = header["n"]
        page.overflow_next = header.get("o", -1)
        page.is_overflow = bool(header.get("v", False))
        payload_base = 4 + header_len
        for slot_str, (offset, length) in header["s"].items():
            start = payload_base + offset
            page.slots[int(slot_str)] = data[start : start + length]
        return page

    def to_bytes(self) -> bytes:
        payload = bytearray()
        slot_map: dict[str, list[int]] = {}
        for slot, blob in self.slots.items():
            slot_map[str(slot)] = [len(payload), len(blob)]
            payload.extend(blob)
        header = json.dumps(
            {"n": self.next_slot, "o": self.overflow_next,
             "v": self.is_overflow, "s": slot_map},
            separators=(",", ":"),
        ).encode("utf-8")
        data = len(header).to_bytes(4, "big") + header + bytes(payload)
        if len(data) > self.page_size:
            raise StorageError("slotted page overflow (free-space accounting bug)")
        return data

    # -- capacity ----------------------------------------------------------------

    def used(self) -> int:
        return sum(len(b) for b in self.slots.values())

    def free_space(self) -> int:
        # Reserve room for the header growth: ~40 bytes per slot entry.
        reserved = 4 + _header_reserve(self.page_size) + 40 * (len(self.slots) + 1)
        return max(0, self.page_size - reserved - self.used())

    # -- record ops ----------------------------------------------------------------

    def add(self, blob: bytes) -> int:
        if len(blob) > self.free_space():
            raise StorageError("record does not fit in page")
        slot = self.next_slot
        self.next_slot += 1
        self.slots[slot] = blob
        return slot

    def get(self, slot: int) -> bytes:
        if slot not in self.slots:
            raise StorageError(f"slot {slot} is empty")
        return self.slots[slot]

    def replace(self, slot: int, blob: bytes) -> None:
        if slot not in self.slots:
            raise StorageError(f"slot {slot} is empty")
        grow = len(blob) - len(self.slots[slot])
        if grow > self.free_space():
            raise StorageError("record does not fit in page")
        self.slots[slot] = blob

    def delete(self, slot: int) -> None:
        if slot not in self.slots:
            raise StorageError(f"slot {slot} is empty")
        del self.slots[slot]


# ---------------------------------------------------------------------------
# Heap file
# ---------------------------------------------------------------------------


def encode_record(record: dict[str, Any]) -> bytes:
    """Serialize a record dict to bytes (UTF-8 JSON, compact separators)."""
    try:
        # Key order is preserved (not sorted): tuple-typed attributes rely on
        # declaration order for display.
        return json.dumps(record, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise StorageError(f"record is not serializable: {exc}") from exc


def decode_record(blob: bytes) -> dict[str, Any]:
    try:
        return json.loads(blob.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise StorageError(f"stored record is corrupt: {exc}") from exc


class HeapFile:
    """Records over a pager, with overflow chains for oversized blobs.

    The heap file goes through a *page access function* rather than the
    pager directly, so a buffer manager can interpose (see
    :meth:`attach_buffer`).
    """

    #: slot id used by pages that are links of an overflow chain
    _OVERFLOW_SLOT = 0

    def __init__(self, pager: Pager):
        self.pager = pager
        self._read = self._read_direct
        self._write = self._write_direct
        # page_no -> free bytes; rebuilt lazily for pre-existing files.
        self._free: dict[int, int] = {}
        self._rebuild_free_map()

    # -- buffer integration --------------------------------------------------

    def attach_buffer(self, buffer_manager) -> None:
        """Route page IO through a :class:`repro.geodb.buffer.BufferManager`."""
        self._read = buffer_manager.read_page
        self._write = buffer_manager.write_page

    def _read_direct(self, page_no: int) -> bytes:
        return self.pager.read_page(page_no)

    def _write_direct(self, page_no: int, data: bytes) -> None:
        self.pager.write_page(page_no, data)

    def _load(self, page_no: int) -> SlottedPage:
        return SlottedPage.from_bytes(self._read(page_no), self.pager.page_size)

    def _store(self, page_no: int, page: SlottedPage) -> None:
        self._write(page_no, page.to_bytes())
        self._free[page_no] = 0 if page.is_overflow else page.free_space()

    def _rebuild_free_map(self) -> None:
        for page_no in range(self.pager.page_count):
            page = self._load(page_no)
            self._free[page_no] = 0 if page.is_overflow else page.free_space()

    # -- public API ---------------------------------------------------------

    def insert(self, record: dict[str, Any]) -> RecordId:
        if obs.RECORDER.enabled:
            obs.RECORDER.inc("heap.records", op="insert")
        blob = encode_record(record)
        threshold = self.pager.page_size - _header_reserve(self.pager.page_size) - 128
        if len(blob) > threshold:
            return self._insert_overflow(blob)
        page_no = self._find_page_with_space(len(blob))
        page = self._load(page_no)
        slot = page.add(blob)
        self._store(page_no, page)
        return RecordId(page_no, slot)

    def _find_page_with_space(self, need: int) -> int:
        for page_no, free in self._free.items():
            if free >= need:
                return page_no
        page_no = self.pager.allocate_page()
        self._store(page_no, SlottedPage(self.pager.page_size))
        return page_no

    def _insert_overflow(self, blob: bytes) -> RecordId:
        """Spill an oversized blob over a chain of dedicated pages."""
        chunk_size = self.pager.page_size - _header_reserve(self.pager.page_size) - 128
        chunks = [blob[i : i + chunk_size] for i in range(0, len(blob), chunk_size)]
        page_nos = [self.pager.allocate_page() for __ in chunks]
        for idx, (page_no, chunk) in enumerate(zip(page_nos, chunks)):
            page = SlottedPage(self.pager.page_size)
            page.add(chunk)
            # Only chain *links* are flagged: the head stays an ordinary page
            # (its chunk fills it, so it takes no further records anyway) and
            # is therefore visited by scan(), which reassembles the chain.
            page.is_overflow = idx > 0
            page.overflow_next = page_nos[idx + 1] if idx + 1 < len(page_nos) else -1
            self._store(page_no, page)
        return RecordId(page_nos[0], self._OVERFLOW_SLOT)

    def read(self, rid: RecordId) -> dict[str, Any]:
        if obs.RECORDER.enabled:
            obs.RECORDER.inc("heap.records", op="read")
        page = self._load(rid.page_no)
        blob = page.get(rid.slot)
        if page.overflow_next >= 0 and rid.slot == self._OVERFLOW_SLOT:
            parts = [blob]
            next_no = page.overflow_next
            while next_no >= 0:
                link = self._load(next_no)
                parts.append(link.get(self._OVERFLOW_SLOT))
                next_no = link.overflow_next
            blob = b"".join(parts)
        return decode_record(blob)

    def overwrite(self, rid: RecordId, record: dict[str, Any]) -> RecordId:
        """Replace a record in place when it fits, else relocate.

        Returns the (possibly new) :class:`RecordId`.
        """
        blob = encode_record(record)
        page = self._load(rid.page_no)
        if page.overflow_next >= 0 and rid.slot == self._OVERFLOW_SLOT:
            self.delete(rid)
            return self.insert(record)
        try:
            page.replace(rid.slot, blob)
        except StorageError:
            page.delete(rid.slot)
            self._store(rid.page_no, page)
            return self.insert(record)
        self._store(rid.page_no, page)
        return rid

    def delete(self, rid: RecordId) -> None:
        if obs.RECORDER.enabled:
            obs.RECORDER.inc("heap.records", op="delete")
        page = self._load(rid.page_no)
        if page.overflow_next >= 0 and rid.slot == self._OVERFLOW_SLOT:
            next_no = page.overflow_next
            while next_no >= 0:
                link = self._load(next_no)
                follow = link.overflow_next
                empty = SlottedPage(self.pager.page_size)
                self._store(next_no, empty)
                next_no = follow
            page.overflow_next = -1
        page.delete(rid.slot)
        self._store(rid.page_no, page)

    def scan(self) -> Iterator[tuple[RecordId, dict[str, Any]]]:
        """Yield every live record (skipping overflow-chain link pages)."""
        for page_no in range(self.pager.page_count):
            page = self._load(page_no)
            if page.is_overflow:
                continue
            for slot in sorted(page.slots):
                rid = RecordId(page_no, slot)
                yield rid, self.read(rid)

    def stats(self) -> dict[str, Any]:
        return {
            "pages": self.pager.page_count,
            "free_map_entries": len(self._free),
            "page_size": self.pager.page_size,
        }
