"""The geographic database: schemas, extents, indexes, events, primitives.

This is the substrate everything else plugs into. It owns:

* the **schema catalog** (multiple named schemas of classes),
* the **extents** (live objects per class), persisted through the page
  store + buffer manager,
* **spatial indexes** (one R-tree per geometry attribute per class),
* a **reverse-reference index** for referential integrity,
* the **event bus** on which the exploratory primitives of §3.3
  (``Get_Schema``, ``Get_Class``, ``Get_Value``) and the mutation events
  are published — the hook the active mechanism listens on,
* **method implementations** callable from instance displays.

The three ``get_*`` primitives both publish their database event *and*
return the requested data; the paper's R1/R2 split (query rule +
customization rule per event) is realized by the rule engines subscribed
to the bus.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Callable, Iterator

from .. import obs
from ..active.event_bus import Event, EventBus, EventKind
from ..errors import (
    ObjectNotFoundError,
    ReplicationError,
    SchemaError,
    TransactionConflictError,
    TransactionError,
)
from ..spatial.geometry import BBox
from ..spatial.rtree import RTree
from .attr_index import HashIndex
from .buffer import BufferManager
from .instances import Extent, GeoObject
from .mvcc import VersionStore
from .raster import Raster, RasterStore
from .schema import GeoClass, Schema
from .storage import FilePager, HeapFile, MemoryPager, Pager, RecordId
from .transactions import Transaction, _Intent
from .wal import (REC_INTENT, REC_RASTER, LogShipper, WriteAheadLog,
                  verify_envelope)


class WriteOp:
    """One committed row operation: what happened, where, to which oid.

    Deliberately value-free — consumers that need the row's current
    state resolve the oid against the live extent, so the commit path
    never copies pre/post images for observers.
    """

    __slots__ = ("op", "schema_name", "class_name", "oid")

    def __init__(self, op: str, schema_name: str, class_name: str,
                 oid: str):
        self.op = op                  # "insert" | "update" | "delete"
        self.schema_name = schema_name
        self.class_name = class_name
        self.oid = oid

    def __repr__(self) -> str:          # pragma: no cover - debug aid
        return (f"WriteOp({self.op} {self.schema_name}.{self.class_name}"
                f" {self.oid})")


class CommitWriteSet:
    """The structured write-set of one committed transaction.

    Built inside the commit critical section (so ``prev_versions`` is
    exactly the per-class commit version each touched class had *before*
    this commit bumped it to ``commit_ts``) and handed to write-set
    listeners after the durability wait, on the committing thread.
    Delta maintainers use ``prev_versions`` to decide whether a cached
    result is contiguous with this commit or has missed one in between.
    """

    __slots__ = ("commit_ts", "ops", "prev_versions")

    def __init__(self, commit_ts: int, ops: list[WriteOp],
                 prev_versions: dict[tuple[str, str], int]):
        self.commit_ts = commit_ts
        self.ops = ops
        #: (schema, class) -> class version immediately before this commit
        self.prev_versions = prev_versions

    def classes(self) -> set[tuple[str, str]]:
        return set(self.prev_versions)


class GeographicDatabase:
    """An object-oriented geographic DBMS instance.

    Parameters
    ----------
    name:
        Database name (e.g. ``"GEO"`` in the paper's §3.3 example).
    pager:
        Page backend; defaults to an in-memory pager.
    buffer_capacity:
        Number of buffer frames in front of the pager.
    """

    def __init__(self, name: str, pager: Pager | None = None,
                 buffer_capacity: int = 64,
                 wal: WriteAheadLog | None = None):
        self.name = name
        self.bus = EventBus()
        self.pager = pager or MemoryPager()
        self.buffer = BufferManager(self.pager, capacity=buffer_capacity)
        self.heap = HeapFile(self.pager)
        self.heap.attach_buffer(self.buffer)
        #: write-ahead log; when attached, commits are durable and
        #: :meth:`recover` replays the log tail on re-open.
        self.wal = wal
        #: set by :meth:`open`; plain constructor use leaves it None.
        self.catalog = None

        self._schemas: dict[str, Schema] = {}
        #: (schema, class) -> Extent
        self._extents: dict[tuple[str, str], Extent] = {}
        #: oid -> (schema, class)
        self._locations: dict[str, tuple[str, str]] = {}
        #: oid -> RecordId in the heap
        self._rids: dict[str, RecordId] = {}
        #: (schema, class, attr) -> RTree over oids
        self._spatial: dict[tuple[str, str, str], RTree] = {}
        #: (schema, class, attr) -> HashIndex over scalar values
        self._attr_indexes: dict[tuple[str, str, str], "HashIndex"] = {}
        #: target oid -> {(source oid, attr path)}
        self._incoming_refs: dict[str, set[tuple[str, str]]] = {}
        #: (schema, class, method) -> callable(db, obj, *args)
        self._methods: dict[tuple[str, str, str], Callable] = {}
        #: (schema, class) -> commit ts of the last commit touching the
        #: class; drives planner-statistics refresh and query-result-
        #: cache invalidation (see repro.geodb.planner / core.query_cache)
        self._class_versions: dict[tuple[str, str], int] = {}
        #: callables invoked with a :class:`CommitWriteSet` after every
        #: commit's durability point (on the committing thread, outside
        #: the commit lock); empty list = zero capture overhead
        self._write_set_listeners: list[Callable[[CommitWriteSet], None]] = []
        #: lazily created planner statistics (repro.geodb.planner)
        self._statistics = None
        #: lazily created columnar scan cache (repro.geodb.columns);
        #: entries self-invalidate on class-version bumps, but snapshot
        #: installs must clear it explicitly (same versions, new objects)
        self._column_cache = None
        #: (schema, class) -> {"attr": ..., "grid": (gx, gy)} — classes
        #: whose extents are spatially partitioned for scatter-gather
        #: query execution (see repro.geodb.sharding)
        self._shard_configs: dict[tuple[str, str], dict[str, Any]] = {}
        #: (schema, class) -> cached ShardMap, keyed like planner stats
        #: on (class commit version, cardinality)
        self._shard_maps: dict[tuple[str, str], Any] = {}
        #: lazily created tiled raster store (see repro.geodb.raster);
        #: stays None until a raster payload is committed or adopted
        self._raster_store: RasterStore | None = None

        # -- replication (leader/follower) ------------------------------
        #: True for follower instances created by :meth:`follow` — all
        #: write paths are refused, state changes arrive only through
        #: :meth:`apply_replicated`
        self._read_only = False
        #: the follower's replication source (LocalReplicationSource /
        #: RemoteReplicationSource); None on leaders
        self._repl_source = None
        #: batches applied through :meth:`apply_replicated`
        self._applied_batches = 0
        #: snapshot re-bootstraps performed by :meth:`poll_replication`
        self._resyncs = 0

        # -- multi-version concurrency control (snapshot isolation) ----
        #: per-oid version chains; see repro.geodb.mvcc
        self._mvcc = VersionStore()
        #: commit timestamp of the most recently committed transaction
        self._commit_ts = 0
        #: txn_id -> snapshot timestamp, for every live transaction
        self._snapshots: dict[int, int] = {}
        #: (commit_ts, write set) per committed transaction, ascending,
        #: kept until the GC watermark passes it — the first-committer-
        #: wins validation window
        self._commit_log: list[tuple[int, frozenset[str]]] = []
        #: serializes begin-snapshot and the whole commit critical
        #: section (validate -> log -> apply -> version); reentrant so
        #: rule actions may open nested auto-commit transactions
        self._commit_lock = threading.RLock()
        #: seqlock guarding lock-free snapshot reads against the commit
        #: apply phase: odd while a commit is mutating the extents /
        #: locations / indexes, even otherwise. Chain-less readers
        #: re-check it around their extent fall-through and retry on a
        #: change (see :meth:`_snapshot_values`); only ever written
        #: under :attr:`_commit_lock`.
        self._mutation_seq = 0

    # ------------------------------------------------------------------
    # Schema management
    # ------------------------------------------------------------------

    def create_schema(self, name: str, doc: str = "") -> Schema:
        if name in self._schemas:
            raise SchemaError(f"schema {name!r} already exists")
        schema = Schema(name, doc=doc)
        self._schemas[name] = schema
        return schema

    def register_schema(self, schema: Schema) -> Schema:
        """Adopt an externally built :class:`Schema` object."""
        if schema.name in self._schemas:
            raise SchemaError(f"schema {schema.name!r} already exists")
        self._schemas[schema.name] = schema
        return schema

    def get_schema_object(self, name: str) -> Schema:
        if name not in self._schemas:
            raise SchemaError(f"database {self.name!r} has no schema {name!r}")
        return self._schemas[name]

    def schema_names(self) -> list[str]:
        return list(self._schemas)

    def register_method(self, schema_name: str, class_name: str,
                        method_name: str, impl: Callable) -> None:
        """Attach a Python implementation to a declared class method."""
        schema = self.get_schema_object(schema_name)
        methods = schema.effective_methods(class_name)
        if method_name not in methods:
            raise SchemaError(
                f"class {class_name!r} declares no method {method_name!r}"
            )
        self._methods[(schema_name, class_name, method_name)] = impl

    def call_method(self, obj: GeoObject, method_name: str, *args) -> Any:
        """Invoke a registered method implementation on an instance."""
        location = self.locate_object(obj.oid)
        if location is None:
            raise ObjectNotFoundError(f"object {obj.oid} is not in the database")
        schema_name, class_name = location
        schema = self.get_schema_object(schema_name)
        for cls in schema.ancestry(class_name):
            impl = self._methods.get((schema_name, cls.name, method_name))
            if impl is not None:
                return impl(self, obj, *args)
        raise SchemaError(
            f"no implementation registered for {class_name}.{method_name}"
        )

    # ------------------------------------------------------------------
    # Object access
    # ------------------------------------------------------------------

    def extent(self, schema_name: str, class_name: str) -> Extent:
        self.get_schema_object(schema_name).get_class(class_name)
        key = (schema_name, class_name)
        if key not in self._extents:
            self._extents[key] = Extent(class_name)
        return self._extents[key]

    def extent_with_subclasses(self, schema_name: str,
                               class_name: str) -> Iterator[GeoObject]:
        """Objects of the class and of all its (transitive) subclasses."""
        schema = self.get_schema_object(schema_name)
        pending = [class_name]
        while pending:
            current = pending.pop()
            yield from self.extent(schema_name, current)
            pending.extend(schema.subclasses(current))

    def find_object(self, oid: str) -> GeoObject | None:
        location = self._locations.get(oid)
        if location is None:
            return None
        return self._extents[location].get(oid)

    def get_object(self, oid: str) -> GeoObject:
        obj = self.find_object(oid)
        if obj is None:
            raise ObjectNotFoundError(f"object {oid} does not exist")
        return obj

    def locate_object(self, oid: str) -> tuple[str, str] | None:
        return self._locations.get(oid)

    def fetch_objects(self, schema_name: str, class_name: str,
                      oids) -> list[GeoObject]:
        """Resolve many oids of **one known class** in a single batch.

        The per-oid :meth:`find_object` pays a location lookup plus an
        extent lookup per call; index scans already know the class, so
        this grabs the extent once and probes it directly. Oids no
        longer live in the extent are skipped.
        """
        extent = self._extents.get((schema_name, class_name))
        if extent is None:
            return []
        return extent.get_many(oids)

    def count(self, schema_name: str, class_name: str) -> int:
        return len(self.extent(schema_name, class_name))

    # ------------------------------------------------------------------
    # Planner statistics and class versions
    # ------------------------------------------------------------------

    def class_version(self, schema_name: str, class_name: str) -> int:
        """Commit timestamp of the last commit that touched the class.

        ``0`` for classes never written through the commit path. The
        query planner keys its statistics snapshots on this value, and
        the kernel's query-result cache validates entries against it —
        both refresh lazily after any commit touching the class.
        """
        return self._class_versions.get((schema_name, class_name), 0)

    def add_write_set_listener(
            self, listener: Callable[[CommitWriteSet], None]) -> None:
        """Subscribe to structured per-commit write-sets.

        Listeners run on the committing thread after the durability
        wait, before the post-commit event-bus publish — commit order is
        delivery order. Capture is only performed while at least one
        listener is registered, so an idle database pays nothing.
        """
        if listener not in self._write_set_listeners:
            self._write_set_listeners.append(listener)

    def remove_write_set_listener(
            self, listener: Callable[[CommitWriteSet], None]) -> None:
        try:
            self._write_set_listeners.remove(listener)
        except ValueError:
            pass

    @property
    def statistics(self):
        """The planner's :class:`~repro.geodb.planner.Statistics`."""
        if self._statistics is None:
            from .planner import Statistics

            self._statistics = Statistics(self)
        return self._statistics

    @property
    def column_cache(self):
        """The columnar scan cache (:class:`~repro.geodb.columns.ColumnCache`)."""
        if self._column_cache is None:
            from .columns import ColumnCache

            self._column_cache = ColumnCache(self)
        return self._column_cache

    # ------------------------------------------------------------------
    # Spatial index access
    # ------------------------------------------------------------------

    def spatial_index(self, schema_name: str, class_name: str,
                      attr: str) -> RTree:
        schema = self.get_schema_object(schema_name)
        attrs = {a.name: a for a in schema.effective_attributes(class_name)}
        if attr not in attrs or not attrs[attr].is_spatial():
            raise SchemaError(
                f"{class_name}.{attr} is not a geometry attribute"
            )
        key = (schema_name, class_name, attr)
        if key not in self._spatial:
            self._spatial[key] = RTree(max_entries=16)
        return self._spatial[key]

    def rebuild_spatial_index(self, schema_name: str, class_name: str,
                              attr: str) -> RTree:
        """Rebuild one R-tree wholesale by STR bulk-loading the extent.

        An index grown by per-commit quadratic-split inserts drifts
        toward overlapping nodes; STR packing rebuilds it with tight,
        non-overlapping leaves in O(n log n). Searches over the rebuilt
        tree return the same entries (order aside) — this is an
        administrative optimization, not a semantic change.
        """
        index = self.spatial_index(schema_name, class_name, attr)
        entries = [
            (obj.geometry(attr).bbox(), obj.oid)
            for obj in self.extent(schema_name, class_name)
            if obj.geometry(attr) is not None
        ]
        rebuilt = RTree.bulk_load(entries, max_entries=index.max_entries)
        self._spatial[(schema_name, class_name, attr)] = rebuilt
        return rebuilt

    # -- attribute (hash) indexes -----------------------------------------

    def create_attribute_index(self, schema_name: str, class_name: str,
                               attr: str) -> HashIndex:
        """Build (or return) a hash index over a scalar attribute.

        Existing extent members are indexed immediately; subsequent
        commits maintain the index. Equality (`=`, `in`) predicates on the
        attribute are then answered through it by the query engine.
        """
        schema = self.get_schema_object(schema_name)
        attrs = {a.name: a for a in schema.effective_attributes(class_name)}
        if attr not in attrs:
            raise SchemaError(f"{class_name!r} has no attribute {attr!r}")
        if attrs[attr].is_spatial():
            raise SchemaError(
                f"{class_name}.{attr} is spatial; use the R-tree instead"
            )
        key = (schema_name, class_name, attr)
        if key in self._attr_indexes:
            return self._attr_indexes[key]
        index = HashIndex(attr)
        for obj in self.extent(schema_name, class_name):
            index.insert(obj.get(attr), obj.oid)
        self._attr_indexes[key] = index
        return index

    def attribute_index(self, schema_name: str, class_name: str,
                        attr: str) -> HashIndex | None:
        """The hash index for an attribute, or None when not created."""
        return self._attr_indexes.get((schema_name, class_name, attr))

    def drop_attribute_index(self, schema_name: str, class_name: str,
                             attr: str) -> None:
        key = (schema_name, class_name, attr)
        if key not in self._attr_indexes:
            raise SchemaError(f"no attribute index on {class_name}.{attr}")
        del self._attr_indexes[key]

    def window_query(self, schema_name: str, class_name: str, attr: str,
                     window: BBox) -> list[GeoObject]:
        """Objects whose ``attr`` geometry bbox intersects ``window``."""
        index = self.spatial_index(schema_name, class_name, attr)
        out = []
        for oid in index.search(window):
            obj = self.find_object(oid)
            if obj is not None:
                out.append(obj)
        return out

    # ------------------------------------------------------------------
    # Exploratory primitives (§3.3): Get_Schema, Get_Class, Get_Value
    # ------------------------------------------------------------------

    def get_schema(self, schema_name: str, context: Any = None,
                   session_id: str | None = None) -> dict[str, Any]:
        """The ``Get_Schema`` primitive: schema metadata for browsing.

        Publishes a :class:`EventKind.GET_SCHEMA` event, then returns the
        schema description (class names, docs, hierarchy). ``session_id``
        tags the event with the originating session so the shared kernel
        can record decisions per session.
        """
        schema = self.get_schema_object(schema_name)
        self.bus.publish(Event(EventKind.GET_SCHEMA, schema_name,
                               context=context, session_id=session_id))
        return {
            "name": schema.name,
            "doc": schema.doc,
            "classes": [
                {
                    "name": cls.name,
                    "doc": cls.doc,
                    "superclass": cls.superclass,
                    "instance_count": len(self.extent(schema_name, cls.name)),
                }
                for cls in schema.classes()
            ],
            "hierarchy": schema.hierarchy(),
        }

    def get_class(self, schema_name: str, class_name: str,
                  context: Any = None, session_id: str | None = None
                  ) -> tuple[GeoClass, list[GeoObject]]:
        """The ``Get_Class`` primitive: a class definition plus extension."""
        schema = self.get_schema_object(schema_name)
        geo_class = schema.get_class(class_name)
        self.bus.publish(
            Event(
                EventKind.GET_CLASS,
                class_name,
                payload={"schema": schema_name},
                context=context,
                session_id=session_id,
            )
        )
        return geo_class, list(self.extent(schema_name, class_name))

    def get_value(self, oid: str, context: Any = None,
                  session_id: str | None = None) -> GeoObject:
        """The ``Get_Value`` primitive: one instance for display."""
        obj = self.get_object(oid)
        schema_name, class_name = self._locations[oid]
        self.bus.publish(
            Event(
                EventKind.GET_VALUE,
                oid,
                payload={"schema": schema_name, "class": class_name},
                context=context,
                session_id=session_id,
            )
        )
        return obj

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def transaction(self, session_id: str | None = None) -> Transaction:
        """Begin a snapshot-isolated transaction.

        ``session_id`` tags the commit's mutation events with the
        originating session (the shared kernel passes it through
        :meth:`repro.core.kernel.GISKernel.transaction`).
        """
        return Transaction(self, session_id=session_id)

    def scenario(self, schema_name: str):
        """Open a simulation-mode sandbox over one schema (§2.2)."""
        from .scenario import Scenario

        return Scenario(self, schema_name)

    @property
    def raster_store(self) -> RasterStore:
        """The tiled raster store, created on first use.

        Reads resolve :class:`~repro.geodb.raster.RasterRef` attribute
        values through it (``db.raster_store.read_window(ref, bbox,
        scale)``); writes never touch it directly — staging a
        :class:`~repro.geodb.raster.Raster` payload in a transaction is
        the only write path.
        """
        if self._raster_store is None:
            self._raster_store = RasterStore(self)
        return self._raster_store

    def _stage_rasters(self, intents: list[_Intent]) -> list:
        """Cut staged :class:`Raster` payloads into tile sets.

        Runs at the top of the commit critical section, *before* the
        intents are WAL-encoded: each payload is swapped for the
        :class:`RasterRef` of its freshly staged tile set, so the intent
        records (and every downstream consumer — heap records, MVCC
        versions, replication) only ever see the descriptor. Pure
        computation; no page is written until the apply phase.
        """
        writes = []
        for intent in intents:
            if intent.values is None:
                continue
            for name, value in intent.values.items():
                if isinstance(value, Raster):
                    write = self.raster_store.stage(value)
                    intent.values[name] = write.ref
                    writes.append(write)
        return writes

    def checkpoint(self) -> int:
        """Flush dirty buffer frames, sync the pager, and reset the WAL.

        Returns the number of frames written back. Once the heap pages are
        durable, every logged transaction is reflected in them, so the
        write-ahead log truncates to empty (a crash between the sync and
        the truncation only re-replays idempotent redo records). Old MVCC
        versions below the oldest live snapshot are garbage-collected on
        the way out.

        Runs under the commit lock: a checkpoint racing a worker-thread
        commit could otherwise flush half-applied pages to the heap
        before the WAL commit record is durable — a crash would then
        leave a partial transaction on disk with no commit record to
        complete it (and ``wal.checkpoint()`` would refuse while the
        racing commit's records are still pending).
        """
        with self._commit_lock:
            if self.wal is not None:
                # WAL rule: staged (group-commit) batches must be on
                # stable storage before the heap pages they cover.
                self.wal.force()
            if self._raster_store is not None:
                # The tile directory rides the same flush+sync as the
                # tile pages it references, so once the WAL truncates
                # below, the durable heap is raster-complete.
                self._raster_store.persist()
            flushed = self.buffer.flush()
            sync = getattr(self.pager, "sync", None)
            if callable(sync):
                sync()
            if self.wal is not None:
                self.wal.checkpoint()
            self.gc_versions()
        return flushed

    # -- MVCC: snapshots, version reads, garbage collection ----------------

    def _begin_snapshot(self, txn: Transaction) -> int:
        """Pin a new transaction to the current commit timestamp."""
        with self._commit_lock:
            ts = self._commit_ts
            self._snapshots[txn.txn_id] = ts
            return ts

    def _release_snapshot(self, txn: Transaction) -> None:
        self._release_snapshot_id(txn.txn_id)

    def _release_snapshot_id(self, txn_id: int) -> None:
        """Unpin a snapshot by transaction id.

        Also the target of each transaction's ``weakref.finalize``
        callback, so an abandoned (never committed/aborted) transaction
        releases its snapshot at garbage collection instead of pinning
        the GC watermark forever. Idempotent; takes the commit lock so
        a finalizer firing mid-``gc_versions`` cannot mutate
        ``_snapshots`` under the watermark ``min()`` scan (reentrant,
        so a finalizer triggered while this thread commits is fine).
        """
        with self._commit_lock:
            self._snapshots.pop(txn_id, None)

    def _snapshot_values(self, oid: str, ts: int) -> dict[str, Any] | None:
        """Attribute values of ``oid`` as of commit timestamp ``ts``.

        The chain-less case is the hot path (objects untouched since the
        last GC), so it checks the chain dict directly instead of going
        through :meth:`VersionStore.visible` — the read benchmark's
        ≤1.5x-of-seed gate leaves no room for an extra call.

        Lock-free but commit-safe: the mutation seqlock is sampled
        before the chain check and re-checked after the extent
        fall-through. A commit seeds a base version for every chain-less
        oid in its write set *before* bumping the seqlock and mutating
        the extents, so either the chain routes this read to the
        pre-commit version, or the seqlock re-check catches the
        transition and retries. After a few failed rounds (a stream of
        back-to-back commits) the read resolves under the commit lock.
        """
        seq = self._mutation_seq
        if oid in self._mvcc._chains:
            version = self._mvcc.visible(oid, ts)
            if version is None or version.values is None:
                return None
            return dict(version.values)
        obj = self.find_object(oid)
        values = None if obj is None else obj.values()
        if self._mutation_seq == seq:
            return values
        return self._snapshot_values_contended(oid, ts)

    def _snapshot_values_contended(self, oid: str,
                                   ts: int) -> dict[str, Any] | None:
        """Retry path when a commit moved the seqlock around a read."""
        chains = self._mvcc._chains
        for __ in range(8):
            seq = self._mutation_seq
            if oid in chains:
                version = self._mvcc.visible(oid, ts)
                if version is None or version.values is None:
                    return None
                return dict(version.values)
            obj = self.find_object(oid)
            values = None if obj is None else obj.values()
            if self._mutation_seq == seq:
                return values
        with self._commit_lock:
            return self._snapshot_values(oid, ts)

    def _snapshot_locate(self, oid: str, ts: int) -> tuple[str, str] | None:
        """(schema, class) of ``oid`` as of ``ts``, or None if absent.

        Same seqlock protocol as :meth:`_snapshot_values`: the
        chain-less fall-through to the live ``_locations`` map is only
        trusted when no commit mutated the extents around it.
        """
        for __ in range(8):
            seq = self._mutation_seq
            version = self._mvcc.visible(oid, ts)
            if version is not VersionStore.UNKNOWN:
                if version is None or version.values is None:
                    return None
                return (version.schema_name, version.class_name)
            location = self.locate_object(oid)
            if self._mutation_seq == seq:
                return location
        with self._commit_lock:
            return self._snapshot_locate(oid, ts)

    def oldest_snapshot(self) -> int:
        """The GC watermark: the oldest live snapshot (or the current ts)."""
        with self._commit_lock:
            return min(self._snapshots.values(), default=self._commit_ts)

    def gc_versions(self) -> int:
        """Drop versions below the watermark; returns how many were freed.

        Runs automatically from :meth:`checkpoint`; callable directly by
        long-lived servers that checkpoint rarely.
        """
        with self._commit_lock:
            watermark = min(self._snapshots.values(), default=self._commit_ts)
            reclaimed = self._mvcc.gc(watermark)
            # Commit-log entries at or below the watermark can no longer
            # conflict with any live or future snapshot.
            self._commit_log = [
                entry for entry in self._commit_log if entry[0] > watermark
            ]
        rec = obs.RECORDER
        if rec.enabled:
            if reclaimed:
                rec.inc("mvcc.gc_reclaimed", reclaimed)
            rec.gauge("mvcc.versions", self._mvcc.total_versions)
        return reclaimed

    # -- durability (write-ahead log) --------------------------------------

    def attach_wal(self, wal: WriteAheadLog) -> WriteAheadLog:
        """Route subsequent commits through a write-ahead log."""
        self.wal = wal
        # WAL rule for group commit: a stolen dirty heap page must never
        # reach the pager ahead of the (possibly still staged) log batch
        # that covers it.
        self.buffer.pre_steal_hook = wal.force
        return wal

    @classmethod
    def open(cls, path: str, name: str | None = None,
             buffer_capacity: int = 64, wal_path: str | None = None,
             sync_mode: str = "fsync") -> "GeographicDatabase":
        """Open (or create) a file-backed database with crash recovery.

        Loads the schemas persisted in the metadata catalog, rebuilds the
        in-memory state from the heap, then replays the write-ahead log
        tail (``<path>.wal`` unless ``wal_path`` overrides it) so that a
        crash after a commit fsync loses nothing. Method implementations
        are not persisted; re-register them after opening. The catalog is
        exposed as ``db.catalog`` for saving schemas before close.
        """
        from .catalog import KIND_SCHEMA, MetadataCatalog

        db = cls(
            name or os.path.splitext(os.path.basename(path))[0] or "GEO",
            pager=FilePager(path), buffer_capacity=buffer_capacity,
        )
        catalog = MetadataCatalog(db)
        db.catalog = catalog
        for schema_name in catalog.names(KIND_SCHEMA):
            db.register_schema(catalog.load_schema(schema_name))
        db.load_from_storage()
        db.attach_wal(
            WriteAheadLog.open(wal_path or path + ".wal",
                               page_size=db.pager.page_size,
                               sync_mode=sync_mode)
        )
        db.recover()
        return db

    def recover(self) -> int:
        """Replay committed transactions from the WAL tail; returns the count.

        Call after :meth:`load_from_storage` on a freshly opened database
        (:meth:`open` does both). Replay is idempotent: intents whose
        effect already reached the heap before the crash are skipped, so
        a partially flushed committed transaction is completed rather
        than doubled. Ends with a checkpoint that folds the recovered
        state into the heap and resets the log.
        """
        if self._read_only:
            raise ReplicationError(
                f"database {self.name!r} is a read-only follower; it has "
                "no log to recover — re-follow its leader instead"
            )
        if self.wal is None:
            return 0
        replayed = 0
        with self._commit_lock:
            for records in self.wal.replay():
                commit_ts = self._batch_commit_ts(records)
                self._replay_batch(records, commit_ts)
                replayed += 1
        self.wal.recovered_txns += replayed
        if replayed and obs.RECORDER.enabled:
            obs.RECORDER.inc("wal.recoveries", replayed)
        if self.wal.pager.page_count:
            # Always fold the replayed state into the heap and truncate:
            # a stale (possibly torn) tail left in place would sit in
            # front of future batches and hide them from the next replay.
            self.checkpoint()
        return replayed

    def _replay_batch(self, records: list[dict[str, Any]],
                      commit_ts: int) -> dict[str, tuple[str, str]]:
        """Replay one committed batch at ``commit_ts`` (caller locks).

        The single replay path shared by crash recovery and follower
        replication: redoes every intent idempotently, advances the
        commit timestamp, bumps the commit version of **every touched
        class** (the invariant planner statistics and the query-result
        cache rely on — a replayed commit must invalidate cached
        cardinalities exactly like a live one), and records the MVCC
        versions at the logged timestamp. Returns the touched oids.
        """
        touched: dict[str, tuple[str, str]] = {}
        for doc in records:
            kind = doc.get("t")
            if kind == REC_RASTER:
                # Tile records precede the intents that reference them,
                # so by the time an object's RasterRef is decoded its
                # tiles are readable. No oid bookkeeping: tiles belong
                # to the raster store, not to any extent.
                self.raster_store.replay_tile(doc)
            elif kind == REC_INTENT:
                self._replay_intent(doc)
                touched[doc["oid"]] = (doc["schema"], doc["class"])
        self._commit_ts = max(self._commit_ts, commit_ts)
        for schema_name, class_name in set(touched.values()):
            self._class_versions[(schema_name, class_name)] = max(
                self._class_versions.get((schema_name, class_name), 0),
                commit_ts,
            )
        for oid, (schema_name, class_name) in touched.items():
            obj = self.find_object(oid)
            if obj is None:
                self._mvcc.record(oid, commit_ts, None,
                                  schema_name, class_name)
            else:
                schema_name, class_name = self._locations[oid]
                self._mvcc.record(oid, commit_ts, obj.values(),
                                  schema_name, class_name)
        return touched

    def _batch_commit_ts(self, records: list[dict[str, Any]]) -> int:
        """Commit timestamp of one replayed WAL batch.

        Logs written before commit records carried timestamps lack the
        ``ts`` field; those batches are assigned the next free timestamp
        so recovered versions still land in commit order.
        """
        for doc in records:
            if doc.get("t") == "C" and doc.get("ts") is not None:
                return doc["ts"]
        return self._commit_ts + 1

    def _replay_intent(self, doc: dict[str, Any]) -> None:
        """Redo one logged mutation unless its effect is already present."""
        op, oid = doc["op"], doc["oid"]
        values = self._decode_record_values(doc["schema"], doc["class"],
                                            doc["values"])
        intent = _Intent(op, doc["schema"], doc["class"], oid, values)
        exists = oid in self._locations
        if op == "insert" and not exists:
            self._apply_insert(intent, [])
        elif op == "update" and exists:
            self._apply_update(intent, [])
        elif op == "delete" and exists:
            self._apply_delete(intent, [])

    def _encode_intent(self, intent: _Intent) -> dict[str, Any]:
        """A JSON-safe redo record for one staged mutation."""
        values = intent.values
        if values is not None:
            schema = self.get_schema_object(intent.schema_name)
            attrs = {
                a.name: a
                for a in schema.effective_attributes(intent.class_name)
            }
            values = {
                name: (None if value is None
                       else attrs[name].type.encode(value))
                for name, value in values.items()
            }
        return {
            "op": intent.op,
            "schema": intent.schema_name,
            "class": intent.class_name,
            "oid": intent.oid,
            "values": values,
        }

    # ------------------------------------------------------------------
    # Replication: leader-side shipping, follower mode
    # ------------------------------------------------------------------

    def enable_shipping(self, retain: int = 256) -> LogShipper:
        """Attach (or return) the WAL's :class:`LogShipper`.

        ``retain`` bounds how many durable batches stay pollable; a
        follower that falls further behind gets a snapshot handoff. The
        shipper's ``base_lsn`` is seeded with the current commit
        timestamp under the commit lock, so a follower bootstrapped from
        :meth:`replication_snapshot` can always resume from its LSN.
        """
        if self._read_only:
            raise ReplicationError(
                f"database {self.name!r} is a follower; followers do not "
                "ship their log (chain replication is not supported)"
            )
        if self.wal is None:
            raise ReplicationError(
                f"database {self.name!r} has no write-ahead log; attach "
                "one before enabling log shipping"
            )
        with self._commit_lock:
            if self.wal.shipper is None:
                self.wal.attach_shipper(
                    LogShipper(base_lsn=self._commit_ts, retain=retain)
                )
            return self.wal.shipper

    def replication_snapshot(self) -> dict[str, Any]:
        """A consistent full-state export for follower bootstrap.

        Taken under the commit lock, so the object set, the class
        versions and the LSN all describe the same commit point. Values
        are schema-encoded (JSON-safe), making the document wire-ready.
        """
        with self._commit_lock:
            objects = []
            for extent in self._extents.values():
                for obj in extent:
                    objects.append(self._record_for(obj))
            return {
                "name": self.name,
                "lsn": self._commit_ts,
                "schemas": [s.describe() for s in self._schemas.values()],
                "objects": objects,
                "class_versions": [
                    [s, c, v] for (s, c), v in self._class_versions.items()
                ],
                "shard_configs": [
                    [s, c, {"attr": cfg["attr"], "grid": list(cfg["grid"])}]
                    for (s, c), cfg in self._shard_configs.items()
                ],
                "rasters": (self._raster_store.export()
                            if self._raster_store is not None else []),
            }

    @classmethod
    def follow(cls, source, name: str | None = None,
               buffer_capacity: int = 64) -> "GeographicDatabase":
        """Create a read-only follower bootstrapped from ``source``.

        ``source`` is a replication source (see
        :mod:`repro.geodb.replication`): ``snapshot()`` yields the
        bootstrap document, ``poll(cursor)`` yields shipped batches.
        The follower replays batches idempotently at their logged commit
        timestamps, so its MVCC history matches the leader's and any
        read-only transaction on it is snapshot-consistent with the
        leader at the follower's current LSN. Drive it with
        :meth:`poll_replication`.
        """
        snapshot = source.snapshot()
        db = cls(name or f"{snapshot.get('name', 'GEO')}-replica",
                 buffer_capacity=buffer_capacity)
        db._repl_source = source
        db._install_snapshot(snapshot)
        db._read_only = True
        return db

    def _install_snapshot(self, doc: dict[str, Any]) -> int:
        """Adopt a snapshot document's schemas and objects (caller is a
        fresh or just-reset follower)."""
        for schema_desc in doc.get("schemas", []):
            if schema_desc["name"] not in self._schemas:
                self.register_schema(Schema.from_description(schema_desc))
        # Tiles first: objects below may carry RasterRefs into them.
        for tile_doc in doc.get("rasters", []):
            self.raster_store.replay_tile(tile_doc)
        spatial_batches: dict[tuple[str, str, str], list] = {}
        for record in doc.get("objects", []):
            schema = self.get_schema_object(record["schema"])
            attrs = {
                a.name: a
                for a in schema.effective_attributes(record["class"])
            }
            values = {
                name: attrs[name].type.decode(value)
                for name, value in record["values"].items()
            }
            obj = GeoObject.create(schema, record["class"], values,
                                   oid=record["oid"])
            self.extent(record["schema"], record["class"]).add(obj)
            self._locations[obj.oid] = (record["schema"], record["class"])
            self._rids[obj.oid] = self.heap.insert(self._record_for(obj))
            for attr in self._spatial_attrs(obj):
                geom = obj.geometry(attr)
                if geom is not None:
                    key = (record["schema"], record["class"], attr)
                    spatial_batches.setdefault(key, []).append(
                        (geom.bbox(), obj.oid)
                    )
            for (s, c, attr), index in self._attr_indexes.items():
                if (s, c) == (record["schema"], record["class"]):
                    index.insert(obj.get(attr), obj.oid)
            self._refs_add(obj)
        for key, entries in spatial_batches.items():
            self._spatial[key] = RTree.bulk_load(entries, max_entries=16)
        for schema_name, class_name, version in doc.get("class_versions", []):
            self._class_versions[(schema_name, class_name)] = version
        for schema_name, class_name, cfg in doc.get("shard_configs", []):
            self._shard_configs[(schema_name, class_name)] = {
                "attr": cfg["attr"], "grid": tuple(cfg["grid"]),
            }
        self._shard_maps.clear()
        # A resync can install versions identical to what a stale column
        # snapshot was stamped with, while the objects are brand new —
        # the version check alone cannot catch that, so drop the cache.
        if self._column_cache is not None:
            self._column_cache.invalidate()
        self._commit_ts = doc["lsn"]
        return len(doc.get("objects", []))

    def apply_replicated(self, envelope: dict[str, Any]) -> bool:
        """Apply one shipped batch; returns False when already applied.

        The follower half of log shipping. The envelope is verified
        first (checksum, exactly one timestamped commit record) — a
        damaged frame is refused with :class:`ReplicationError` and the
        follower keeps its last consistent state. Replay is idempotent
        by LSN: a batch at or below the applied LSN is skipped outright,
        so a follower that crashed mid-stream and re-follows never
        records duplicate versions. Runs under the commit lock with the
        same seqlock + pre-image seeding protocol as a live commit, so
        concurrent read-only transactions on the follower stay
        snapshot-consistent throughout.
        """
        records = verify_envelope(envelope)
        lsn = envelope["lsn"]
        with self._commit_lock:
            if lsn <= self._commit_ts:
                return False
            if lsn > self._commit_ts + 1:
                raise ReplicationError(
                    f"replication gap: follower {self.name!r} is at lsn "
                    f"{self._commit_ts} but the next shipped batch is "
                    f"{lsn}; re-bootstrap from a snapshot"
                )
            intent_docs = [doc for doc in records
                           if doc.get("t") == REC_INTENT]
            if self._snapshots:
                self._seed_write_set(
                    frozenset(doc["oid"] for doc in intent_docs),
                    [_Intent(doc["op"], doc["schema"], doc["class"],
                             doc["oid"], None) for doc in intent_docs],
                )
            self._mutation_seq += 1
            try:
                self._replay_batch(records, lsn)
            finally:
                self._mutation_seq += 1
            self._applied_batches += 1
        # Post-apply events mirror the leader's post-commit phase, so a
        # kernel serving sessions off this follower fans out refreshes
        # and invalidates caches exactly like on the leader.
        for doc in intent_docs:
            self.bus.publish(
                Event(
                    EventKind(doc["op"]),
                    doc["oid"],
                    payload={
                        "schema": doc["schema"],
                        "class": doc["class"],
                        "values": self._decode_record_values(
                            doc["schema"], doc["class"], doc["values"]),
                        "phase": "commit",
                        "txn": doc.get("txn"),
                        "ts": lsn,
                        "replicated": True,
                    },
                )
            )
        return True

    def poll_replication(self, max_batches: int = 64) -> int:
        """Pull and apply pending batches from the follower's source.

        Returns the number of batches applied. Handles the snapshot
        handoff transparently: when the source reports the cursor has
        fallen behind the retained window (leader checkpointed/evicted
        past us), the follower re-bootstraps from a fresh snapshot and
        resumes. Updates the ``repl.lag_records`` gauge.
        """
        source = self._require_follower()
        applied = 0
        while True:
            result = source.poll(self._commit_ts, max_batches=max_batches)
            if result.get("snapshot_required"):
                self.resync()
                self._resyncs += 1
                continue
            batches = result.get("batches", [])
            for envelope in batches:
                if self.apply_replicated(envelope):
                    applied += 1
            if len(batches) < max_batches:
                lag = max(result.get("lsn", self._commit_ts)
                          - self._commit_ts, 0)
                if obs.RECORDER.enabled:
                    obs.RECORDER.gauge("repl.lag_records", lag,
                                       follower=self.name)
                return applied

    def resync(self) -> int:
        """Re-bootstrap the follower from a fresh leader snapshot.

        The snapshot-handoff path for a follower that outlived the
        shipper's retention window. State is cleared *in place* (live
        transactions alias the extent/chain dicts) under the commit lock
        and seqlock; snapshots pinned before the resync are abandoned —
        their reads resolve against the new bootstrap state, which is
        the only consistent state the follower still has.
        """
        source = self._require_follower()
        snapshot = source.snapshot()
        with self._commit_lock:
            self._mutation_seq += 1
            try:
                for extent in self._extents.values():
                    extent._objects.clear()
                self._locations.clear()
                self._rids.clear()
                self._incoming_refs.clear()
                for index in self._attr_indexes.values():
                    index._buckets.clear()
                    index._size = 0
                self._spatial.clear()
                self._mvcc._chains.clear()
                self._commit_log.clear()
                self._statistics = None
                self._column_cache = None
                self._shard_maps.clear()
                self.heap = HeapFile(self.pager)
                self.heap.attach_buffer(self.buffer)
                # Drop the raster directory with the rest of the state;
                # the snapshot's tile docs rebuild it from scratch.
                self._raster_store = None
                installed = self._install_snapshot(snapshot)
            finally:
                self._mutation_seq += 1
        return installed

    @property
    def replication_lsn(self) -> int:
        """The commit timestamp this instance has applied up to.

        On a leader this is simply the current commit timestamp; on a
        follower it is the LSN of the last replicated batch (or the
        bootstrap snapshot).
        """
        return self._commit_ts

    def replication_lag(self) -> int | None:
        """Records behind the source's shipped head; None on leaders."""
        if self._repl_source is None:
            return None
        head = self._repl_source.head_lsn()
        return max(head - self._commit_ts, 0)

    def replication_status(self) -> dict[str, Any]:
        """LSN/lag/shipping summary for CLI and net ``repl_status``."""
        status: dict[str, Any] = {
            "name": self.name,
            "role": "follower" if self._read_only else "leader",
            "lsn": self.replication_lsn,
        }
        if self._read_only:
            status["lag"] = self.replication_lag()
            status["applied_batches"] = self._applied_batches
            status["resyncs"] = self._resyncs
        elif self.wal is not None and self.wal.shipper is not None:
            status["shipper"] = self.wal.shipper.stats()
        return status

    def _require_follower(self):
        if self._repl_source is None:
            raise ReplicationError(
                f"database {self.name!r} is not a follower (no "
                "replication source attached)"
            )
        return self._repl_source

    def _require_writable(self, op: str) -> None:
        """Raise on any write path of a read-only follower."""
        if self._read_only:
            raise TransactionError(
                f"cannot {op} on {self.name!r}: read-only follower "
                "(writes go to the leader; use read_preference='leader')"
            )

    def _decode_record_values(self, schema_name: str, class_name: str,
                              values: dict[str, Any] | None
                              ) -> dict[str, Any] | None:
        if values is None:
            return None
        schema = self.get_schema_object(schema_name)
        attrs = {
            a.name: a for a in schema.effective_attributes(class_name)
        }
        return {
            attr: (None if raw is None else attrs[attr].type.decode(raw))
            for attr, raw in values.items()
        }

    # ------------------------------------------------------------------
    # Spatial sharding (scatter-gather query execution)
    # ------------------------------------------------------------------

    def shard_extent(self, schema_name: str, class_name: str, attr: str,
                     grid: tuple[int, int] = (2, 2)) -> None:
        """Partition a class extent spatially for scatter-gather queries.

        ``attr`` must be a geometry attribute; ``grid`` is the (x, y)
        cell split of the extent's bounding box. The partition itself is
        computed lazily and re-computed whenever the class's commit
        version moves (same caching rule as planner statistics). The
        config replicates to followers via the bootstrap snapshot.
        """
        schema = self.get_schema_object(schema_name)
        attrs = {a.name: a for a in schema.effective_attributes(class_name)}
        if attr not in attrs or not attrs[attr].is_spatial():
            raise SchemaError(
                f"{class_name}.{attr} is not a geometry attribute; "
                "shards partition on a spatial attribute"
            )
        gx, gy = grid
        if gx < 1 or gy < 1:
            raise SchemaError(f"shard grid must be >= 1x1, got {grid}")
        self._shard_configs[(schema_name, class_name)] = {
            "attr": attr, "grid": (int(gx), int(gy)),
        }
        self._shard_maps.pop((schema_name, class_name), None)

    def shard_map(self, schema_name: str, class_name: str):
        """The class's current :class:`~repro.geodb.sharding.ShardMap`,
        or None when the class is not sharded. Cached on (class commit
        version, cardinality) and rebuilt lazily after any commit or
        replicated batch touching the class."""
        config = self._shard_configs.get((schema_name, class_name))
        if config is None:
            return None
        from .sharding import build_shard_map

        version = self.class_version(schema_name, class_name)
        cardinality = len(self.extent(schema_name, class_name))
        cached = self._shard_maps.get((schema_name, class_name))
        if (cached is not None and cached.version == version
                and cached.cardinality == cardinality):
            return cached
        shard_map = build_shard_map(
            self, schema_name, class_name, config["attr"], config["grid"],
            version=version,
        )
        self._shard_maps[(schema_name, class_name)] = shard_map
        return shard_map

    def close(self) -> None:
        """Checkpoint and release a file-backed database and its WAL."""
        self.checkpoint()
        close = getattr(self.pager, "close", None)
        if callable(close):
            close()
        if self.wal is not None:
            self.wal.close()

    def insert(self, schema_name: str, class_name: str, values: dict[str, Any],
               oid: str | None = None, context: Any = None) -> str:
        """Single-statement insert (auto-commit)."""
        with self.transaction() as txn:
            new_oid = txn.insert(schema_name, class_name, values, oid=oid)
        return new_oid

    def update(self, oid: str, changes: dict[str, Any], context: Any = None) -> None:
        with self.transaction() as txn:
            txn.update(oid, changes)

    def delete(self, oid: str, context: Any = None) -> None:
        with self.transaction() as txn:
            txn.delete(oid)

    # -- commit machinery (called by Transaction) --------------------------

    def _commit_transaction(self, txn: Transaction,
                            wait_durable: bool = True) -> int | None:
        """Commit ``txn``; returns a WAL durability ticket or ``None``.

        With ``wait_durable=True`` (the default) the call blocks in the
        WAL's group commit until the transaction's log batch is covered
        by a barrier, so ``commit()`` keeps its historical meaning:
        returned means durable. ``wait_durable=False`` returns the
        ticket instead — the commit is applied and visible but not yet
        guaranteed on disk until :meth:`WriteAheadLog.wait_durable` is
        called with the ticket (servers overlap that wait with other
        work; see :meth:`Transaction.commit`).
        """
        intents = txn.intents
        if intents:
            self._require_writable("commit writes")
        rec = obs.RECORDER
        ticket: int | None = None
        with rec.span("txn.commit", txn=txn.txn_id, intents=len(intents)):
            with self._commit_lock:
                commit_ts, ticket, write_set_delta = self._commit_locked(
                    txn, intents, rec)
            txn.commit_ts = commit_ts
            if txn._on_commit is not None:
                txn._on_commit(commit_ts)
            # The durability wait runs *outside* the commit lock: while
            # this committer waits on the group barrier, other sessions
            # stage their own commits, and one leader fsyncs for all of
            # them — commit throughput scales with connection count.
            if ticket is not None and wait_durable:
                self.wal.wait_durable(ticket)
                ticket = None
            # Write-set listeners (live query maintenance) run before
            # the bus publish so a rule reacting to the commit already
            # observes delta-maintained standing results.
            if write_set_delta is not None:
                for listener in list(self._write_set_listeners):
                    listener(write_set_delta)
            # Phase 5: post-commit events for customization/refresh rules.
            # Outside the commit lock: subscribers only ever observe fully
            # committed versions, and refresh fan-out must not extend the
            # critical section other writers serialize on.
            for intent in intents:
                self.bus.publish(
                    Event(
                        EventKind(intent.op),
                        intent.oid,
                        payload={
                            "schema": intent.schema_name,
                            "class": intent.class_name,
                            "values": intent.values,
                            "phase": "commit",
                            "txn": txn.txn_id,
                            "ts": commit_ts,
                        },
                        session_id=txn.session_id,
                    )
                )
        return ticket

    def _commit_locked(self, txn: Transaction, intents: list[_Intent],
                       rec) -> tuple[int, int | None, CommitWriteSet | None]:
        """The serialized commit critical section.

        Returns ``(commit_ts, durability_ticket, write_set_delta)``; the
        ticket is ``None`` when the WAL already ran its barrier inline
        (group commit off, or no WAL attached), and the delta is ``None``
        unless write-set listeners are registered."""
        write_set = frozenset(intent.oid for intent in intents)
        # Phase 0: first-committer-wins validation. Any transaction that
        # committed after our snapshot and wrote one of our oids makes
        # the staged intents (computed against the snapshot) stale.
        contended = self._conflicting_oids(txn.snapshot_ts, write_set)
        if contended:
            if rec.enabled:
                rec.inc("txn.conflicts")
            raise TransactionConflictError(
                f"transaction {txn.txn_id} (snapshot {txn.snapshot_ts}) "
                f"lost first-committer-wins on {sorted(contended)}",
                oids=sorted(contended),
            )
        # Phase 1: referential integrity over the staged end state.
        self._check_references(txn)
        # Phase 2: pre-commit events let integrity rules veto the commit.
        for intent in intents:
            self.bus.publish(
                Event(
                    EventKind(intent.op),
                    intent.oid,
                    payload={
                        "schema": intent.schema_name,
                        "class": intent.class_name,
                        "values": intent.values,
                        "phase": "validate",
                        "txn": txn.txn_id,
                        "staged": txn.staged_value(intent.oid),
                    },
                    session_id=txn.session_id,
                )
            )
        # Phase 3: log, then apply with an undo journal. The redo
        # records are buffered in the WAL and forced by log_commit in
        # one barrier — the durability point. The buffer's no-steal
        # scope keeps every page this phase dirties (including the
        # rollback's restorations) away from the pager until then, so
        # a crash anywhere in here leaves the heap at the
        # pre-transaction state and recovery sees no commit record.
        # The commit timestamp is only published (to the counter, the
        # commit log and the version store) after the durability point,
        # so a failed attempt leaves no trace and the ts is reused.
        #
        # Concurrent snapshot readers are lock-free, so before the
        # extents mutate, every chain-less oid in the write set gets a
        # base version seeded (the pre-image, or a tombstone for fresh
        # inserts) — readers resolve through the chain instead of
        # observing the half-applied (or later rolled-back) extent. The
        # mutation seqlock goes odd across the apply and stays odd until
        # the commit-ts versions are recorded (or the rollback
        # completes), so the extent fall-through for oids *outside* the
        # write set detects the window and retries. Seeding is skipped
        # when no other snapshot is live: new transactions serialize on
        # the commit lock at begin, so no reader can exist that the
        # chain would need to protect.
        commit_ts = self._commit_ts + 1
        # Raster payloads are cut into tile sets first, swapping each for
        # its RasterRef, so the intents encoded below carry descriptors.
        raster_writes = self._stage_rasters(intents)
        wal = self.wal
        if wal is not None:
            wal.log_begin(txn.txn_id)
            for write in raster_writes:
                for doc in write.wal_docs():
                    wal.log_raster(txn.txn_id, doc)
            for intent in intents:
                wal.log_intent(txn.txn_id, self._encode_intent(intent))
        other_snapshots = len(self._snapshots)
        if txn.txn_id in self._snapshots:
            other_snapshots -= 1
        if other_snapshots:
            self._seed_write_set(write_set, intents)
        undo: list[Callable[[], None]] = []
        ticket: int | None = None
        write_set_delta: CommitWriteSet | None = None
        self._mutation_seq += 1
        try:
            with self.buffer.no_steal():
                try:
                    for write in raster_writes:
                        self.raster_store.apply(write, undo)
                    for intent in intents:
                        if intent.op == "insert":
                            self._apply_insert(intent, undo)
                        elif intent.op == "update":
                            self._apply_update(intent, undo)
                        else:
                            self._apply_delete(intent, undo)
                    if wal is not None:
                        if getattr(wal, "group_commit", False):
                            # Pages only — the group barrier runs after
                            # the commit lock is released (see
                            # _commit_transaction).
                            ticket = wal.log_commit_staged(
                                txn.txn_id, commit_ts=commit_ts
                            )
                        else:
                            wal.log_commit(txn.txn_id, commit_ts=commit_ts)
                except Exception:
                    # ABORTED must mean "no observable change": roll the
                    # extents, heap, indexes and reference maps back to
                    # the pre-transaction state before re-raising.
                    # Seeded base versions stay — they equal the
                    # restored extent state, so reads agree either way.
                    while undo:
                        undo.pop()()
                    if wal is not None:
                        wal.log_abort(txn.txn_id)
                    raise
            # Phase 4: publish the new versions under the commit
            # timestamp (still inside the odd seqlock window — readers
            # must not fall through to the extent before the version
            # store reflects the commit).
            self._commit_ts = commit_ts
            if write_set:
                self._commit_log.append((commit_ts, write_set))
                if self._write_set_listeners:
                    prev_versions: dict[tuple[str, str], int] = {}
                    for intent in intents:
                        key = (intent.schema_name, intent.class_name)
                        if key not in prev_versions:
                            prev_versions[key] = \
                                self._class_versions.get(key, 0)
                    write_set_delta = CommitWriteSet(
                        commit_ts,
                        [WriteOp(i.op, i.schema_name, i.class_name, i.oid)
                         for i in intents],
                        prev_versions,
                    )
                for intent in intents:
                    self._class_versions[
                        (intent.schema_name, intent.class_name)
                    ] = commit_ts
                self._record_versions(write_set, commit_ts, intents)
                if rec.enabled:
                    rec.gauge("mvcc.versions", self._mvcc.total_versions)
        finally:
            self._mutation_seq += 1
        return commit_ts, ticket, write_set_delta

    def _conflicting_oids(self, snapshot_ts: int,
                          write_set: frozenset[str]) -> set[str]:
        """Oids in ``write_set`` written by commits after ``snapshot_ts``."""
        if not write_set:
            return set()
        contended: set[str] = set()
        for ts, oids in reversed(self._commit_log):
            if ts <= snapshot_ts:
                break
            contended |= oids & write_set
        return contended

    def _seed_write_set(self, write_set: frozenset[str],
                        intents: list[_Intent]) -> None:
        """Seed a base version for every chain-less oid in the write set.

        Runs *before* the apply phase mutates the extents, so concurrent
        lock-free snapshot readers resolve these oids through the
        version chain (the pre-image at timestamp 0, or a base tombstone
        for an oid being freshly inserted) instead of the mid-commit —
        and possibly later rolled-back — extent.
        """
        last_intent = {intent.oid: intent for intent in intents}
        for oid in write_set:
            if self._mvcc.has_chain(oid):
                continue
            obj = self.find_object(oid)
            if obj is None:
                intent = last_intent[oid]
                self._mvcc.seed_base(oid, None, intent.schema_name,
                                     intent.class_name)
            else:
                schema_name, class_name = self._locations[oid]
                self._mvcc.seed_base(oid, obj.values(),
                                     schema_name, class_name)

    def _record_versions(
        self,
        write_set: frozenset[str],
        commit_ts: int,
        intents: list[_Intent],
    ) -> None:
        """Append one version per written oid at ``commit_ts``."""
        last_intent = {intent.oid: intent for intent in intents}
        for oid in write_set:
            obj = self.find_object(oid)
            if obj is None:
                intent = last_intent[oid]
                self._mvcc.record(oid, commit_ts, None,
                                  intent.schema_name, intent.class_name)
            else:
                schema_name, class_name = self._locations[oid]
                self._mvcc.record(oid, commit_ts, obj.values(),
                                  schema_name, class_name)

    def _check_references(self, txn: Transaction) -> None:
        for intent in txn.intents:
            if intent.op == "delete":
                incoming = {
                    (src, attr)
                    for (src, attr) in self._incoming_refs.get(intent.oid, set())
                    if txn.staged_exists(src)
                }
                if incoming:
                    raise TransactionError(
                        f"cannot delete {intent.oid}: referenced by "
                        f"{sorted(src for src, __ in incoming)}"
                    )
                continue
            schema = self.get_schema_object(intent.schema_name)
            attrs = schema.effective_attributes(intent.class_name)
            for attr in attrs:
                if not attr.is_reference() or not intent.values:
                    continue
                target = intent.values.get(attr.name)
                if target is None:
                    continue
                if not txn.staged_exists(target):
                    raise TransactionError(
                        f"{intent.oid}.{attr.name} references missing object "
                        f"{target!r}"
                    )
                expected = attr.type.class_name  # type: ignore[union-attr]
                location = None
                for other in txn.intents:
                    if other.oid == target and other.op == "insert":
                        location = (other.schema_name, other.class_name)
                location = location or self.locate_object(target)
                if location is not None and not self._class_is_a(
                    location[0], location[1], expected
                ):
                    raise TransactionError(
                        f"{intent.oid}.{attr.name} must reference {expected}, "
                        f"got {location[1]} ({target})"
                    )

    def _class_is_a(self, schema_name: str, class_name: str, expected: str) -> bool:
        schema = self.get_schema_object(schema_name)
        return any(cls.name == expected for cls in schema.ancestry(class_name))

    # -- apply helpers -------------------------------------------------------
    #
    # Each helper performs its mutations step by step, appending the exact
    # inverse of every completed step to ``undo``. Rolling back means
    # popping and running the journal in reverse, which restores the
    # extents, heap, indexes and reference maps even when an apply failed
    # half-way through a single intent.

    def _apply_insert(self, intent, undo: list) -> None:
        schema = self.get_schema_object(intent.schema_name)
        obj = GeoObject.create(
            schema, intent.class_name, intent.values or {}, oid=intent.oid
        )
        extent = self.extent(intent.schema_name, intent.class_name)
        extent.add(obj)
        undo.append(lambda: extent.remove(obj.oid))
        self._locations[obj.oid] = (intent.schema_name, intent.class_name)
        undo.append(lambda: self._locations.pop(obj.oid, None))
        self._rids[obj.oid] = self.heap.insert(self._record_for(obj))
        undo.append(lambda: self.heap.delete(self._rids.pop(obj.oid)))
        self._index_insert(obj)
        undo.append(lambda: self._index_delete(obj))
        self._refs_add(obj)
        undo.append(lambda: self._refs_remove(obj))

    def _apply_update(self, intent, undo: list) -> None:
        obj = self.get_object(intent.oid)
        schema = self.get_schema_object(intent.schema_name)
        old_record = self._record_for(obj)
        self._index_delete(obj)
        undo.append(lambda: self._index_insert(obj))
        self._refs_remove(obj)
        undo.append(lambda: self._refs_add(obj))
        previous = obj.update(schema, intent.values or {})
        undo.append(lambda: obj.update(schema, previous))
        self._index_insert(obj)
        undo.append(lambda: self._index_delete(obj))
        self._refs_add(obj)
        undo.append(lambda: self._refs_remove(obj))
        self._rids[obj.oid] = self.heap.overwrite(
            self._rids[obj.oid], self._record_for(obj)
        )
        undo.append(
            lambda: self._rids.__setitem__(
                obj.oid, self.heap.overwrite(self._rids[obj.oid], old_record)
            )
        )

    def _apply_delete(self, intent, undo: list) -> None:
        obj = self.get_object(intent.oid)
        old_record = self._record_for(obj)
        extent = self.extent(intent.schema_name, intent.class_name)
        location = self._locations[intent.oid]
        self._index_delete(obj)
        undo.append(lambda: self._index_insert(obj))
        self._refs_remove(obj)
        undo.append(lambda: self._refs_add(obj))
        extent.remove(intent.oid)
        undo.append(lambda: extent.add(obj))
        del self._locations[intent.oid]
        undo.append(
            lambda: self._locations.__setitem__(intent.oid, location)
        )
        self.heap.delete(self._rids.pop(intent.oid))
        undo.append(
            lambda: self._rids.__setitem__(
                intent.oid, self.heap.insert(old_record)
            )
        )
        incoming = self._incoming_refs.pop(intent.oid, None)
        if incoming is not None:
            undo.append(
                lambda: self._incoming_refs.__setitem__(intent.oid, incoming)
            )

    # -- maintenance of derived structures ------------------------------------

    def _record_for(self, obj: GeoObject) -> dict[str, Any]:
        schema_name, class_name = self._locations.get(
            obj.oid, (None, obj.class_name)
        )
        schema_name = schema_name or next(
            s for s in self._schemas if self._schemas[s].has_class(obj.class_name)
        )
        schema = self.get_schema_object(schema_name)
        attrs = {a.name: a for a in schema.effective_attributes(obj.class_name)}
        encoded = {
            name: attrs[name].type.encode(value)
            for name, value in obj.values().items()
        }
        return {
            "oid": obj.oid,
            "schema": schema_name,
            "class": obj.class_name,
            "values": encoded,
        }

    def _spatial_attrs(self, obj: GeoObject) -> list[str]:
        schema_name, class_name = self._locations[obj.oid]
        schema = self.get_schema_object(schema_name)
        return [
            a.name
            for a in schema.effective_attributes(class_name)
            if a.is_spatial()
        ]

    def _index_insert(self, obj: GeoObject) -> None:
        schema_name, class_name = self._locations[obj.oid]
        for attr in self._spatial_attrs(obj):
            geom = obj.geometry(attr)
            if geom is not None:
                self.spatial_index(schema_name, class_name, attr).insert(
                    geom.bbox(), obj.oid
                )
        for (s, c, attr), index in self._attr_indexes.items():
            if (s, c) == (schema_name, class_name):
                index.insert(obj.get(attr), obj.oid)

    def _index_delete(self, obj: GeoObject) -> None:
        schema_name, class_name = self._locations[obj.oid]
        for attr in self._spatial_attrs(obj):
            geom = obj.geometry(attr)
            if geom is not None:
                self.spatial_index(schema_name, class_name, attr).delete(
                    geom.bbox(), obj.oid
                )
        for (s, c, attr), index in self._attr_indexes.items():
            if (s, c) == (schema_name, class_name):
                index.delete(obj.get(attr), obj.oid)

    def _reference_values(self, obj: GeoObject) -> list[tuple[str, str]]:
        schema_name, class_name = self._locations[obj.oid]
        schema = self.get_schema_object(schema_name)
        out = []
        for attr in schema.effective_attributes(class_name):
            if attr.is_reference():
                target = obj.get(attr.name)
                if target:
                    out.append((attr.name, target))
        return out

    def _refs_add(self, obj: GeoObject) -> None:
        for attr_name, target in self._reference_values(obj):
            self._incoming_refs.setdefault(target, set()).add((obj.oid, attr_name))

    def _refs_remove(self, obj: GeoObject) -> None:
        for attr_name, target in self._reference_values(obj):
            refs = self._incoming_refs.get(target)
            if refs:
                refs.discard((obj.oid, attr_name))
                if not refs:
                    del self._incoming_refs[target]

    # ------------------------------------------------------------------
    # Recovery / introspection
    # ------------------------------------------------------------------

    def load_from_storage(self) -> int:
        """Rebuild extents, indexes and references from existing heap pages.

        Call after re-opening a file-backed database and registering its
        schemas (e.g. via :meth:`MetadataCatalog.load_schema`). Records are
        *adopted* — not re-inserted — so the heap is untouched and every
        restored object keeps its record id. Returns the number of objects
        restored. Catalog documents are skipped.
        """
        from .instances import ensure_oid_counter_above

        loaded = 0
        max_suffix = 0
        #: (schema, class, attr) -> [(bbox, oid)] batched for STR loading
        spatial_batches: dict[tuple[str, str, str], list] = {}
        for rid, record in list(self.heap.scan()):
            if record.get("_catalog"):
                continue
            if record.get(RasterStore.DIRECTORY_MARKER):
                self.raster_store.adopt(rid, record)
                continue
            oid = record["oid"]
            if oid in self._locations:
                continue  # already live (idempotent reload)
            schema = self.get_schema_object(record["schema"])
            attrs = {
                a.name: a
                for a in schema.effective_attributes(record["class"])
            }
            values = {
                name: attrs[name].type.decode(value)
                for name, value in record["values"].items()
            }
            obj = GeoObject.create(schema, record["class"], values, oid=oid)
            self.extent(record["schema"], record["class"]).add(obj)
            self._locations[oid] = (record["schema"], record["class"])
            self._rids[oid] = rid
            # spatial entries are batched and STR-bulk-loaded below, which
            # packs better and builds faster than one-by-one insertion
            for attr in self._spatial_attrs(obj):
                geom = obj.geometry(attr)
                if geom is not None:
                    key = (record["schema"], record["class"], attr)
                    spatial_batches.setdefault(key, []).append(
                        (geom.bbox(), oid)
                    )
            for (s, c, attr), index in self._attr_indexes.items():
                if (s, c) == (record["schema"], record["class"]):
                    index.insert(obj.get(attr), oid)
            self._refs_add(obj)
            loaded += 1
            __, __, suffix = oid.rpartition("#")
            if suffix.isdigit():
                max_suffix = max(max_suffix, int(suffix))
        for key, entries in spatial_batches.items():
            existing = list(self._spatial[key].items()) \
                if key in self._spatial else []
            self._spatial[key] = RTree.bulk_load(existing + entries,
                                                 max_entries=16)
        if max_suffix:
            ensure_oid_counter_above(max_suffix)
        return loaded

    def stats(self) -> dict[str, Any]:
        return {
            "schemas": len(self._schemas),
            "objects": len(self._locations),
            "extents": {
                f"{s}.{c}": len(ext) for (s, c), ext in self._extents.items()
            },
            "spatial_indexes": len(self._spatial),
            "buffer": self.stats_buffer(),
            "heap": self.heap.stats(),
            "mvcc": self._mvcc.stats(),
            "rasters": (self._raster_store.status()
                        if self._raster_store is not None else {}),
        }

    def stats_buffer(self) -> dict[str, Any]:
        return self.buffer.stats.snapshot()

    def verify_storage(self) -> int:
        """Re-read every object from the heap and compare with memory.

        Returns the number of verified objects; raises on any divergence.
        Used by tests to prove the page store actually holds the data.
        """
        verified = 0
        for oid, rid in self._rids.items():
            record = self.heap.read(rid)
            obj = self.get_object(oid)
            schema = self.get_schema_object(record["schema"])
            attrs = {
                a.name: a for a in schema.effective_attributes(record["class"])
            }
            decoded = {
                name: attrs[name].type.decode(value)
                for name, value in record["values"].items()
            }
            if decoded != obj.values():
                raise ObjectNotFoundError(
                    f"stored record for {oid} diverges from the live object"
                )
            verified += 1
        return verified

    def __repr__(self) -> str:
        return (
            f"GeographicDatabase({self.name!r}, schemas={self.schema_names()}, "
            f"objects={len(self._locations)})"
        )
