"""Schema catalog: attributes, methods, classes and schemas.

The geographic database is object-oriented (§3.4: "schemata, classes, and
instances ... are the most important concepts in an (object-oriented)
geographic database"). Classes support single inheritance, typed
attributes (including tuple, reference, geometry and bitmap attributes),
and named methods — class ``Pole`` of paper Figure 5 declares
``get_supplier_name(Supplier)``.

Schema objects are plain descriptive values; the live database
(:mod:`repro.geodb.database`) owns extents and indexes.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Iterator

from ..errors import SchemaError
from .types import AttributeType, GeometryType, ReferenceType, type_from_description

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def _check_name(name: str, what: str) -> str:
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise SchemaError(f"invalid {what} name {name!r}")
    return name


class Attribute:
    """A named, typed attribute of a class."""

    __slots__ = ("name", "type", "required", "doc")

    def __init__(self, name: str, attr_type: AttributeType,
                 required: bool = False, doc: str = ""):
        self.name = _check_name(name, "attribute")
        if not isinstance(attr_type, AttributeType):
            raise SchemaError(f"attribute {name!r} needs an AttributeType")
        self.type = attr_type
        self.required = bool(required)
        self.doc = doc

    def is_spatial(self) -> bool:
        return isinstance(self.type, GeometryType)

    def is_reference(self) -> bool:
        return isinstance(self.type, ReferenceType)

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "type": self.type.describe(),
            "required": self.required,
            "doc": self.doc,
        }

    @classmethod
    def from_description(cls, desc: dict[str, Any]) -> "Attribute":
        return cls(
            desc["name"],
            type_from_description(desc["type"]),
            required=desc.get("required", False),
            doc=desc.get("doc", ""),
        )

    def __repr__(self) -> str:
        req = ", required" if self.required else ""
        return f"Attribute({self.name}: {self.type.spec()}{req})"


class Method:
    """A named method with a parameter signature and optional implementation.

    Implementations are plain Python callables taking
    ``(database, instance, *args)``; the Instance window's ``using`` clause
    of the customization language can bind them as value producers
    (``display attribute pole_supplier as text from
    get_supplier_name(pole_supplier)``).
    """

    __slots__ = ("name", "params", "impl", "doc")

    def __init__(self, name: str, params: list[str] | None = None,
                 impl: Callable | None = None, doc: str = ""):
        self.name = _check_name(name, "method")
        self.params = list(params or [])
        self.impl = impl
        self.doc = doc

    def signature(self) -> str:
        return f"{self.name}({', '.join(self.params)})"

    def describe(self) -> dict[str, Any]:
        return {"name": self.name, "params": list(self.params), "doc": self.doc}

    def __repr__(self) -> str:
        return f"Method({self.signature()})"


class GeoClass:
    """A class of georeferenced phenomena (poles, ducts, districts ...).

    Parameters
    ----------
    name:
        Class name, unique within its schema.
    attributes:
        Ordered attribute list (order matters: the generic Instance window
        shows one panel per attribute in declaration order).
    methods:
        Named methods.
    superclass:
        Optional name of a superclass in the same schema; effective
        attributes/methods are resolved by :meth:`Schema.effective_attributes`.
    doc:
        Free-text description shown by metadata browsing.
    """

    def __init__(
        self,
        name: str,
        attributes: list[Attribute] | None = None,
        methods: list[Method] | None = None,
        superclass: str | None = None,
        doc: str = "",
    ):
        self.name = _check_name(name, "class")
        self.attributes: list[Attribute] = []
        self._attr_index: dict[str, Attribute] = {}
        for attr in attributes or []:
            self.add_attribute(attr)
        self.methods: dict[str, Method] = {}
        for method in methods or []:
            self.add_method(method)
        self.superclass = superclass
        self.doc = doc

    # -- construction -------------------------------------------------------

    def add_attribute(self, attr: Attribute) -> None:
        if attr.name in self._attr_index:
            raise SchemaError(f"duplicate attribute {attr.name!r} in class {self.name!r}")
        self.attributes.append(attr)
        self._attr_index[attr.name] = attr

    def add_method(self, method: Method) -> None:
        if method.name in self.methods:
            raise SchemaError(f"duplicate method {method.name!r} in class {self.name!r}")
        self.methods[method.name] = method

    # -- lookup ---------------------------------------------------------------

    def attribute(self, name: str) -> Attribute:
        if name not in self._attr_index:
            raise SchemaError(f"class {self.name!r} has no attribute {name!r}")
        return self._attr_index[name]

    def has_attribute(self, name: str) -> bool:
        return name in self._attr_index

    def attribute_names(self) -> list[str]:
        return [a.name for a in self.attributes]

    def spatial_attributes(self) -> list[Attribute]:
        return [a for a in self.attributes if a.is_spatial()]

    def reference_attributes(self) -> list[Attribute]:
        return [a for a in self.attributes if a.is_reference()]

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "superclass": self.superclass,
            "doc": self.doc,
            "attributes": [a.describe() for a in self.attributes],
            "methods": [m.describe() for m in self.methods.values()],
        }

    @classmethod
    def from_description(cls, desc: dict[str, Any]) -> "GeoClass":
        return cls(
            desc["name"],
            attributes=[Attribute.from_description(a) for a in desc["attributes"]],
            methods=[Method(m["name"], m.get("params"), doc=m.get("doc", ""))
                     for m in desc.get("methods", [])],
            superclass=desc.get("superclass"),
            doc=desc.get("doc", ""),
        )

    def __repr__(self) -> str:
        return f"GeoClass({self.name}, {len(self.attributes)} attrs)"


class Schema:
    """A named collection of classes — the unit the Schema window browses."""

    def __init__(self, name: str, doc: str = ""):
        self.name = _check_name(name, "schema")
        self.doc = doc
        self._classes: dict[str, GeoClass] = {}

    def add_class(self, geo_class: GeoClass) -> GeoClass:
        if geo_class.name in self._classes:
            raise SchemaError(f"duplicate class {geo_class.name!r} in schema {self.name!r}")
        if geo_class.superclass is not None and geo_class.superclass not in self._classes:
            raise SchemaError(
                f"class {geo_class.name!r} extends unknown class "
                f"{geo_class.superclass!r} (define the superclass first)"
            )
        self._validate_references(geo_class)
        self._classes[geo_class.name] = geo_class
        return geo_class

    def _validate_references(self, geo_class: GeoClass) -> None:
        """Reference attributes may point at classes defined before or at
        the class itself (self-references are legal: network elements link
        to network elements)."""
        known = set(self._classes) | {geo_class.name}
        for attr in geo_class.reference_attributes():
            target = attr.type.class_name  # type: ignore[union-attr]
            if target not in known:
                raise SchemaError(
                    f"class {geo_class.name!r} attribute {attr.name!r} references "
                    f"unknown class {target!r}"
                )

    def remove_class(self, name: str) -> None:
        if name not in self._classes:
            raise SchemaError(f"schema {self.name!r} has no class {name!r}")
        dependants = [
            c.name
            for c in self._classes.values()
            if c.superclass == name
            or any(a.type.class_name == name  # type: ignore[union-attr]
                   for a in c.reference_attributes())
        ]
        dependants = [d for d in dependants if d != name]
        if dependants:
            raise SchemaError(
                f"cannot remove class {name!r}: referenced by {sorted(dependants)}"
            )
        del self._classes[name]

    def get_class(self, name: str) -> GeoClass:
        if name not in self._classes:
            raise SchemaError(f"schema {self.name!r} has no class {name!r}")
        return self._classes[name]

    def has_class(self, name: str) -> bool:
        return name in self._classes

    def class_names(self) -> list[str]:
        return list(self._classes)

    def classes(self) -> Iterator[GeoClass]:
        return iter(self._classes.values())

    # -- inheritance resolution ----------------------------------------------

    def ancestry(self, class_name: str) -> list[GeoClass]:
        """The class and its superclasses, most-derived first."""
        chain: list[GeoClass] = []
        seen: set[str] = set()
        current: str | None = class_name
        while current is not None:
            if current in seen:
                raise SchemaError(f"inheritance cycle at class {current!r}")
            seen.add(current)
            cls = self.get_class(current)
            chain.append(cls)
            current = cls.superclass
        return chain

    def effective_attributes(self, class_name: str) -> list[Attribute]:
        """Inherited + own attributes, base-class attributes first.

        A subclass may *not* redeclare an inherited attribute name.
        """
        chain = self.ancestry(class_name)
        out: list[Attribute] = []
        seen: set[str] = set()
        for cls in reversed(chain):
            for attr in cls.attributes:
                if attr.name in seen:
                    raise SchemaError(
                        f"class {class_name!r} redeclares inherited attribute "
                        f"{attr.name!r}"
                    )
                seen.add(attr.name)
                out.append(attr)
        return out

    def effective_methods(self, class_name: str) -> dict[str, Method]:
        """Inherited + own methods; subclasses may override by name."""
        out: dict[str, Method] = {}
        for cls in reversed(self.ancestry(class_name)):
            out.update(cls.methods)
        return out

    def subclasses(self, class_name: str) -> list[str]:
        self.get_class(class_name)  # existence check
        return [c.name for c in self._classes.values() if c.superclass == class_name]

    def hierarchy(self) -> dict[str, list[str]]:
        """Superclass -> direct subclasses map ('' keys root classes).

        The Schema window's ``display as hierarchy`` mode renders this.
        """
        tree: dict[str, list[str]] = {"": []}
        for cls in self._classes.values():
            parent = cls.superclass or ""
            tree.setdefault(parent, []).append(cls.name)
        return tree

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "doc": self.doc,
            "classes": [c.describe() for c in self._classes.values()],
        }

    @classmethod
    def from_description(cls, desc: dict[str, Any]) -> "Schema":
        schema = cls(desc["name"], doc=desc.get("doc", ""))
        for class_desc in desc["classes"]:
            schema.add_class(GeoClass.from_description(class_desc))
        return schema

    def __repr__(self) -> str:
        return f"Schema({self.name}, classes={self.class_names()})"
