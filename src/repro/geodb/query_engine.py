"""Query execution with spatial index pushdown.

The engine evaluates a :class:`repro.geodb.query.Query` against a
:class:`repro.geodb.database.GeographicDatabase`:

1. **Plan** — if the predicate tree exposes a spatial prefilter
   (``SpatialPredicate`` / ``WithinDistance`` at top level or inside a
   conjunction), the candidate set is fetched from the class's R-tree by
   bounding box; otherwise the full extent is scanned.
2. **Refine** — every candidate is checked against the full predicate
   (exact geometry tests run only on index survivors).
3. **Shape** — ordering, limiting and projection.

The returned :class:`QueryResult` carries the rows plus an execution
report (plan chosen, candidates examined) used by the explanation
interaction mode and by benchmark C5.
"""

from __future__ import annotations

from typing import Any

from .. import obs
from ..errors import QueryError
from .database import GeographicDatabase
from .instances import GeoObject
from .query import Query, _resolve_path
from .schema import GeoClass


class QueryResult:
    """Rows plus the execution report."""

    def __init__(self, query: Query, objects: list[GeoObject],
                 rows: list[dict[str, Any]] | None, report: dict[str, Any]):
        self.query = query
        self.objects = objects
        #: projected rows when the query had a projection, else None
        self.rows = rows
        self.report = report

    def __len__(self) -> int:
        return len(self.objects)

    def __iter__(self):
        return iter(self.rows if self.rows is not None else self.objects)

    def oids(self) -> list[str]:
        return [obj.oid for obj in self.objects]

    def explain(self) -> str:
        """Human-readable plan summary (explanation mode, §2.2)."""
        r = self.report
        lines = [
            f"query: {self.query.describe()}",
            f"plan: {r['plan']}",
            f"candidates examined: {r['candidates']}",
            f"matches: {r['matches']}",
        ]
        if r.get("index"):
            lines.insert(2, f"index: {r['index']}")
        return "\n".join(lines)


class QueryEngine:
    """Executes queries against one database."""

    def __init__(self, database: GeographicDatabase):
        self.database = database

    def execute(self, schema_name: str, query: Query) -> QueryResult:
        rec = obs.RECORDER
        if not rec.enabled:
            return self._execute(schema_name, query)
        with rec.timed("query.seconds"), \
                rec.span("query.execute", cls=query.class_name) as span:
            result = self._execute(schema_name, query)
            span.annotate(plan=result.report["plan"],
                          candidates=result.report["candidates"],
                          matches=result.report["matches"])
        rec.inc("query.executed", plan=result.report["plan"])
        rec.registry.histogram(
            "query.candidates", buckets=obs.COUNT_BUCKETS
        ).observe(result.report["candidates"])
        return result

    def _execute(self, schema_name: str, query: Query) -> QueryResult:
        schema = self.database.get_schema_object(schema_name)
        geo_class = schema.get_class(query.class_name)
        candidates, plan, index_name = self._candidates(schema_name, query)

        matches = [
            obj for obj in candidates if query.where.matches(obj, geo_class)
        ]
        if query.aggregates:
            # aggregates reduce the full matching set; limit is moot
            rows = [self._aggregate(matches, geo_class, query)]
            report = {
                "plan": plan,
                "index": index_name,
                "candidates": len(candidates),
                "matches": len(matches),
            }
            return QueryResult(query, matches, rows, report)
        matches = self._order(matches, geo_class, query)
        if query.limit is not None:
            matches = matches[: query.limit]
        rows = self._project(matches, geo_class, query)
        report = {
            "plan": plan,
            "index": index_name,
            "candidates": len(candidates),
            "matches": len(matches),
        }
        return QueryResult(query, matches, rows, report)

    # -- planning -------------------------------------------------------------

    def _candidates(
        self, schema_name: str, query: Query
    ) -> tuple[list[GeoObject], str, str | None]:
        prefilter = query.where.spatial_prefilter()
        class_names = [query.class_name]
        if query.include_subclasses:
            schema = self.database.get_schema_object(schema_name)
            pending = [query.class_name]
            class_names = []
            while pending:
                current = pending.pop()
                class_names.append(current)
                pending.extend(schema.subclasses(current))

        if prefilter is not None:
            attr, box = prefilter
            if not box.is_empty():
                out: list[GeoObject] = []
                used_index = None
                for cname in class_names:
                    try:
                        index = self.database.spatial_index(schema_name, cname, attr)
                    except Exception:
                        # attribute not spatial on this class: fall back
                        out.extend(self.database.extent(schema_name, cname))
                        continue
                    used_index = f"rtree({cname}.{attr})"
                    for oid in index.search(box):
                        obj = self.database.find_object(oid)
                        if obj is not None:
                            out.append(obj)
                return out, "index-scan", used_index

        equality = query.where.equality_prefilter()
        if equality is not None:
            attr, values = equality
            hash_indexes = [
                (cname, self.database.attribute_index(schema_name, cname,
                                                      attr))
                for cname in class_names
            ]
            # Only use the hash path when every touched class is indexed;
            # a partial answer would silently drop candidates.
            if all(index is not None for __, index in hash_indexes):
                out = []
                for cname, index in hash_indexes:
                    for oid in sorted(index.lookup_many(values)):
                        obj = self.database.find_object(oid)
                        if obj is not None:
                            out.append(obj)
                used_index = ", ".join(
                    f"hash({cname}.{attr})" for cname, __ in hash_indexes)
                return out, "hash-scan", used_index

        out = []
        for cname in class_names:
            out.extend(self.database.extent(schema_name, cname))
        return out, "full-scan", None

    # -- shaping ---------------------------------------------------------------

    def _order(self, matches: list[GeoObject], geo_class: GeoClass,
               query: Query) -> list[GeoObject]:
        if not query.order_by:
            return matches
        path = query.order_by
        descending = path.startswith("-")
        if descending:
            path = path[1:]

        def key(obj: GeoObject):
            try:
                value = _resolve_path(obj, geo_class, path)
            except QueryError:
                value = None
            # None sorts last regardless of direction.
            return (value is None, value)

        try:
            ordered = sorted(matches, key=key, reverse=descending)
        except TypeError as exc:
            raise QueryError(
                f"order by {query.order_by!r}: values are not comparable ({exc})"
            ) from exc
        return ordered

    def _aggregate(self, matches: list[GeoObject], geo_class: GeoClass,
                   query: Query) -> dict[str, Any]:
        """One row of aggregate values over the matching set.

        Non-numeric / absent values are skipped by min/max/sum/avg;
        ``count(path)`` counts objects where the path resolves non-None.
        Empty inputs yield ``None`` (0 for counts), SQL-style.
        """
        row: dict[str, Any] = {}
        for op, path in query.aggregates or ():
            label = f"{op}({path or '*'})"
            if op == "count" and path is None:
                row[label] = len(matches)
                continue
            values = []
            for obj in matches:
                try:
                    value = _resolve_path(obj, geo_class, path)
                except QueryError:
                    continue
                if value is not None:
                    values.append(value)
            if op == "count":
                row[label] = len(values)
            elif not values:
                row[label] = None
            elif op == "min":
                row[label] = min(values)
            elif op == "max":
                row[label] = max(values)
            elif op == "sum":
                row[label] = sum(values)
            else:  # avg
                row[label] = sum(values) / len(values)
        return row

    def _project(self, matches: list[GeoObject], geo_class: GeoClass,
                 query: Query) -> list[dict[str, Any]] | None:
        if query.projection is None:
            return None
        rows = []
        for obj in matches:
            row: dict[str, Any] = {"oid": obj.oid}
            for path in query.projection:
                try:
                    row[path] = _resolve_path(obj, geo_class, path)
                except QueryError:
                    row[path] = None
            rows.append(row)
        return rows
