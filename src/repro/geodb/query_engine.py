"""Query execution: cost-based planning, compiled refine, shaping.

The engine evaluates a :class:`repro.geodb.query.Query` against a
:class:`repro.geodb.database.GeographicDatabase`:

1. **Plan** — the :class:`~repro.geodb.planner.QueryPlanner` chooses,
   per class of the query's closure, the cheapest of R-tree scan, hash
   scan and full extent scan from catalog statistics (extent
   cardinality, bucket sizes, R-tree coverage). Mixed closures mix
   access paths; every per-class decision lands in the execution
   report.
2. **Refine** — the predicate tree is compiled once
   (:meth:`~repro.geodb.query.Predicate.compile`) into a closure chain,
   and every candidate — batch-fetched from its class extent, not
   resolved oid-by-oid — is checked against it. Browse queries
   (``TruePredicate``) skip the refine loop entirely.
3. **Shape** — ordering, limiting and projection/aggregation, all
   through the same compiled accessors.

When a closure class's extent is partitioned into shards
(:meth:`~repro.geodb.database.GeographicDatabase.shard_extent`), the
engine switches to **scatter-gather**: the planner prunes the shard set
against the query's spatial prefilter
(:meth:`~repro.geodb.planner.QueryPlanner.plan_scatter`), each live
shard runs as an independent sub-query (sequentially, or on a thread
pool when ``scatter_workers`` is set), and the per-shard results are
gathered — ordered queries by a k-way merge of locally sorted runs,
aggregates by combining per-shard partial states — so the shaped result
is byte-identical to the single-extent path's.

The returned :class:`QueryResult` carries the rows plus an execution
report (overall plan, truthful per-class plan list, candidates
examined, scatter fan-out) used by the explanation interaction mode,
the CLI ``query`` command and benchmarks C5/C11/C13.
"""

from __future__ import annotations

import heapq
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from .. import obs
from ..errors import QueryError
from .database import GeographicDatabase
from .instances import GeoObject
from .planner import (FULL_SCAN, HASH_SCAN, INDEX_SCAN, SCATTER, ClassPlan,
                      QueryPlanner, ShardPlan)
from .query import MISSING, Query, compile_path, match_all
from .schema import GeoClass


class QueryResult:
    """Rows plus the execution report."""

    def __init__(self, query: Query, objects: list[GeoObject],
                 rows: list[dict[str, Any]] | None, report: dict[str, Any]):
        self.query = query
        self.objects = objects
        #: projected rows when the query had a projection, else None
        self.rows = rows
        self.report = report

    def __len__(self) -> int:
        return len(self.objects)

    def __iter__(self):
        return iter(self.rows if self.rows is not None else self.objects)

    def oids(self) -> list[str]:
        return [obj.oid for obj in self.objects]

    def with_report(self, **extra: Any) -> "QueryResult":
        """A shallow view sharing objects/rows but owning its report.

        Cached results are shared, immutable objects; per-call metadata
        (cache hit/miss, live-maintenance provenance) must not be
        written into the shared report another caller already holds.
        """
        return QueryResult(self.query, self.objects, self.rows,
                           {**self.report, **extra})

    def explain(self) -> str:
        """Human-readable plan summary (explanation mode, §2.2)."""
        r = self.report
        lines = [
            f"query: {self.query.describe()}",
            f"plan: {r['plan']}",
            f"candidates examined: {r['candidates']}",
            f"matches: {r['matches']}",
        ]
        if r.get("index"):
            lines.insert(2, f"index: {r['index']}")
        for class_plan in r.get("plans", ()):
            detail = f"  {class_plan['class']}: {class_plan['plan']}"
            if class_plan.get("index"):
                detail += f" via {class_plan['index']}"
            detail += (f" (cost ~{class_plan['est_cost']}, "
                       f"rows ~{class_plan['est_rows']})")
            if class_plan.get("reason"):
                detail += f" — {class_plan['reason']}"
            lines.append(detail)
        if r.get("scatter"):
            scatter = r["scatter"]
            lines.append(
                f"scatter: {scatter['shards']} shard(s) executed, "
                f"{scatter['pruned']} pruned, "
                f"workers={scatter['workers']}"
            )
        if r.get("cache"):
            lines.append(f"cache: {r['cache']}")
        return "\n".join(lines)


class QueryEngine:
    """Executes queries against one database."""

    def __init__(self, database: GeographicDatabase,
                 scatter_workers: int = 0):
        self.database = database
        self.planner = QueryPlanner(database)
        #: thread-pool width for scatter sub-queries; 0/1 = sequential.
        #: Sub-queries are pure reads, so threading is always safe; it
        #: only pays off when candidate fetch releases the GIL or the
        #: host has cores to spare.
        self.scatter_workers = scatter_workers

    def execute(self, schema_name: str, query: Query) -> QueryResult:
        rec = obs.RECORDER
        if not rec.enabled:
            return self._execute(schema_name, query)
        with rec.timed("query.seconds"), \
                rec.span("query.execute", cls=query.class_name) as span:
            result = self._execute(schema_name, query)
            span.annotate(plan=result.report["plan"],
                          candidates=result.report["candidates"],
                          matches=result.report["matches"])
        rec.inc("query.executed", plan=result.report["plan"])
        for class_plan in result.report["plans"]:
            rec.inc("query.plan", choice=class_plan["plan"])
        rec.registry.histogram(
            "query.candidates", buckets=obs.COUNT_BUCKETS
        ).observe(result.report["candidates"])
        return result

    def _execute(self, schema_name: str, query: Query) -> QueryResult:
        db = self.database
        schema = db.get_schema_object(schema_name)
        geo_class = schema.get_class(query.class_name)
        planner = self.planner
        prefilter, equality = planner.prefilters(query)
        closure = planner.class_closure(schema_name, query)
        shard_plans = [
            shard_plan for class_name in closure
            if (shard_plan := planner.plan_scatter(
                schema_name, class_name, prefilter)) is not None
        ]
        sharded = {shard_plan.class_name for shard_plan in shard_plans}
        plans = [
            planner.plan_class(schema_name, class_name, prefilter, equality)
            for class_name in closure if class_name not in sharded
        ]
        matcher = self._compile(query, geo_class)
        if shard_plans:
            return self._execute_scatter(schema_name, geo_class, query,
                                         plans, shard_plans, prefilter,
                                         equality, matcher)

        candidates = 0
        matches: list[GeoObject] = []
        for class_plan in plans:
            objects = self._class_candidates(schema_name, class_plan,
                                             prefilter, equality)
            candidates += len(objects)
            if matcher is match_all:
                matches.extend(objects)
            else:
                # filter() keeps the per-candidate loop in C.
                matches.extend(filter(matcher, objects))

        report = self._report(plans, candidates)
        if query.aggregates:
            # aggregates reduce the full matching set; limit is moot
            rows = [self._aggregate(matches, geo_class, query)]
            report["matches"] = len(matches)
            return QueryResult(query, matches, rows, report)
        matches = self._order(matches, geo_class, query)
        if query.limit is not None:
            matches = matches[: query.limit]
        rows = self._project(matches, geo_class, query)
        report["matches"] = len(matches)
        return QueryResult(query, matches, rows, report)

    def _class_candidates(self, schema_name: str, class_plan: ClassPlan,
                          prefilter, equality):
        """Candidates for one class via its planned access path."""
        db = self.database
        class_name = class_plan.class_name
        if class_plan.kind == INDEX_SCAN:
            attr, box = prefilter
            index = db.spatial_index(schema_name, class_name, attr)
            return db.fetch_objects(schema_name, class_name,
                                    index.search(box))
        if class_plan.kind == HASH_SCAN:
            attr, values = equality
            index = db.attribute_index(schema_name, class_name, attr)
            if len(values) == 1:
                oids = index.lookup_view(values[0])
            else:
                oids = index.lookup_many(values)
            return db.fetch_objects(schema_name, class_name, sorted(oids))
        return db.extent(schema_name, class_name)

    # -- scatter-gather --------------------------------------------------------

    def _execute_scatter(self, schema_name: str, geo_class: GeoClass,
                         query: Query, plans: list[ClassPlan],
                         shard_plans: list[ShardPlan], prefilter, equality,
                         matcher) -> QueryResult:
        """Scatter the query over live shards, gather shaped results.

        Each *unit* — a live shard of a sharded class, or the whole
        candidate set of an unsharded closure class — refines
        independently. The gather step is shape-aware: ordered queries
        merge locally sorted runs (k-way, via :func:`heapq.merge`),
        aggregates combine per-unit partial states, and plain queries
        concatenate in unit order.
        """
        db = self.database
        units: list[list[GeoObject]] = []
        candidates = 0
        for class_plan in plans:
            objects = self._class_candidates(schema_name, class_plan,
                                             prefilter, equality)
            candidates += len(objects)
            units.append(list(objects) if matcher is match_all
                         else list(filter(matcher, objects)))

        def run_shard(task):
            class_name, shard = task
            objects = db.fetch_objects(schema_name, class_name, shard.oids)
            matched = list(objects) if matcher is match_all \
                else list(filter(matcher, objects))
            return len(objects), matched

        tasks = [(shard_plan.class_name, shard)
                 for shard_plan in shard_plans
                 for shard in shard_plan.shards]
        workers = min(self.scatter_workers or 1, max(len(tasks), 1))
        if workers > 1:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                results = list(pool.map(run_shard, tasks))
        else:
            results = [run_shard(task) for task in tasks]
        for examined, matched in results:
            candidates += examined
            units.append(matched)

        report = self._report(
            plans + [shard_plan.as_class_plan()
                     for shard_plan in shard_plans],
            candidates,
        )
        report["plan"] = SCATTER
        report["scatter"] = {
            "classes": [shard_plan.describe() for shard_plan in shard_plans],
            "shards": len(tasks),
            "pruned": sum(shard_plan.pruned for shard_plan in shard_plans),
            "workers": workers,
        }
        rec = obs.RECORDER
        if rec.enabled:
            rec.inc("query.scatter.shards", amount=len(tasks))
            rec.inc("query.scatter.merges")

        if query.aggregates:
            rows = [self._merge_aggregates(units, geo_class, query)]
            matches = [obj for unit in units for obj in unit]
            report["matches"] = len(matches)
            return QueryResult(query, matches, rows, report)
        if query.order_by:
            matches = self._merge_ordered(units, geo_class, query)
        else:
            matches = [obj for unit in units for obj in unit]
        if query.limit is not None:
            matches = matches[: query.limit]
        rows = self._project(matches, geo_class, query)
        report["matches"] = len(matches)
        return QueryResult(query, matches, rows, report)

    def _merge_ordered(self, units: list[list[GeoObject]],
                       geo_class: GeoClass, query: Query) -> list[GeoObject]:
        """K-way merge of per-unit runs, each sorted locally first."""
        key, descending = self._order_key(geo_class, query)
        try:
            runs = [sorted(unit, key=key, reverse=descending)
                    for unit in units]
            return list(heapq.merge(*runs, key=key, reverse=descending))
        except TypeError as exc:
            raise QueryError(
                f"order by {query.order_by!r}: values are not comparable ({exc})"
            ) from exc

    def _merge_aggregates(self, units: list[list[GeoObject]],
                          geo_class: GeoClass,
                          query: Query) -> dict[str, Any]:
        """Combine per-unit partial aggregate states into one row.

        Each unit contributes only its partial (count, sum, min, max)
        over non-None resolved values; the combine step is the algebra
        those partials close under, so the final row matches
        :meth:`_aggregate` over the concatenated set exactly —
        including the SQL-style empty-input conventions.
        """
        row: dict[str, Any] = {}
        for op, path in query.aggregates or ():
            label = f"{op}({path or '*'})"
            if op == "count" and path is None:
                row[label] = sum(len(unit) for unit in units)
                continue
            accessor = compile_path(path, geo_class)
            n = 0
            total: Any = None
            low: Any = None
            high: Any = None
            for unit in units:
                values = [value for value in map(accessor, unit)
                          if value is not MISSING and value is not None]
                if not values:
                    continue
                n += len(values)
                if op in ("sum", "avg"):
                    part = sum(values)
                    total = part if total is None else total + part
                elif op == "min":
                    part = min(values)
                    low = part if low is None else min(low, part)
                elif op == "max":
                    part = max(values)
                    high = part if high is None else max(high, part)
            if op == "count":
                row[label] = n
            elif n == 0:
                row[label] = None
            elif op == "min":
                row[label] = low
            elif op == "max":
                row[label] = high
            elif op == "sum":
                row[label] = total
            else:  # avg
                row[label] = total / n
        return row

    def _compile(self, query: Query, geo_class: GeoClass):
        """The query's compiled refine closure (timed when observable)."""
        rec = obs.RECORDER
        if not rec.enabled:
            return query.where.compile(geo_class)
        # Compilation is sub-microsecond; declare the fine-grained
        # bucket layout before the family is auto-created coarse.
        rec.registry.histogram("query.compile.seconds",
                               buckets=obs.MICRO_BUCKETS)
        with rec.timed("query.compile.seconds"):
            return query.where.compile(geo_class)

    @staticmethod
    def _report(plans, candidates: int) -> dict[str, Any]:
        """The execution report skeleton, truthful about mixed plans."""
        kinds = {class_plan.kind for class_plan in plans}
        overall = kinds.pop() if len(kinds) == 1 else "mixed"
        index_names = [class_plan.index for class_plan in plans
                       if class_plan.index]
        return {
            "plan": overall if plans else FULL_SCAN,
            "index": ", ".join(index_names) if index_names else None,
            "plans": [class_plan.describe() for class_plan in plans],
            "candidates": candidates,
            "matches": 0,
        }

    # -- shaping ---------------------------------------------------------------

    def _order(self, matches: list[GeoObject], geo_class: GeoClass,
               query: Query) -> list[GeoObject]:
        if not query.order_by:
            return matches
        key, descending = self._order_key(geo_class, query)
        try:
            ordered = sorted(matches, key=key, reverse=descending)
        except TypeError as exc:
            raise QueryError(
                f"order by {query.order_by!r}: values are not comparable ({exc})"
            ) from exc
        return ordered

    @staticmethod
    def _order_key(geo_class: GeoClass, query: Query):
        """The (key function, descending) pair for ``order_by``.

        Shared by the single-extent sort and the scatter path's k-way
        merge, so both shapes order identically.
        """
        path = query.order_by
        descending = path.startswith("-")
        if descending:
            path = path[1:]
        accessor = compile_path(path, geo_class)

        def key(obj: GeoObject):
            value = accessor(obj)
            if value is MISSING:
                value = None
            # None sorts last regardless of direction; the oid breaks
            # ties so the ordering is total — the scatter merge then
            # reproduces the single-extent sort byte for byte.
            return (value is None, value, obj.oid)

        return key, descending

    def _aggregate(self, matches: list[GeoObject], geo_class: GeoClass,
                   query: Query) -> dict[str, Any]:
        """One row of aggregate values over the matching set.

        Non-numeric / absent values are skipped by min/max/sum/avg;
        ``count(path)`` counts objects where the path resolves non-None.
        Empty inputs yield ``None`` (0 for counts), SQL-style.
        """
        row: dict[str, Any] = {}
        for op, path in query.aggregates or ():
            label = f"{op}({path or '*'})"
            if op == "count" and path is None:
                row[label] = len(matches)
                continue
            accessor = compile_path(path, geo_class)
            values = []
            for obj in matches:
                value = accessor(obj)
                if value is not MISSING and value is not None:
                    values.append(value)
            if op == "count":
                row[label] = len(values)
            elif not values:
                row[label] = None
            elif op == "min":
                row[label] = min(values)
            elif op == "max":
                row[label] = max(values)
            elif op == "sum":
                row[label] = sum(values)
            else:  # avg
                row[label] = sum(values) / len(values)
        return row

    def _project(self, matches: list[GeoObject], geo_class: GeoClass,
                 query: Query) -> list[dict[str, Any]] | None:
        if query.projection is None:
            return None
        accessors = [
            (path, compile_path(path, geo_class)) for path in query.projection
        ]
        rows = []
        for obj in matches:
            row: dict[str, Any] = {"oid": obj.oid}
            for path, accessor in accessors:
                value = accessor(obj)
                row[path] = None if value is MISSING else value
            rows.append(row)
        return rows
