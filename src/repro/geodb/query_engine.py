"""Query execution: cost-based planning, compiled refine, shaping.

The engine evaluates a :class:`repro.geodb.query.Query` against a
:class:`repro.geodb.database.GeographicDatabase`:

1. **Plan** — the :class:`~repro.geodb.planner.QueryPlanner` chooses,
   per class of the query's closure, the cheapest of R-tree scan, hash
   scan and full extent scan from catalog statistics (extent
   cardinality, bucket sizes, R-tree coverage). Mixed closures mix
   access paths; every per-class decision lands in the execution
   report.
2. **Refine** — the predicate tree is compiled once
   (:meth:`~repro.geodb.query.Predicate.compile`) into a closure chain,
   and every candidate — batch-fetched from its class extent, not
   resolved oid-by-oid — is checked against it. Browse queries
   (``TruePredicate``) skip the refine loop entirely.
3. **Shape** — ordering, limiting and projection/aggregation, all
   through the same compiled accessors.

Full and hash scans additionally run **columnar** when the class's
version-stamped column snapshot (:mod:`repro.geodb.columns`) is fresh:
the predicate compiles to a fused column kernel
(:meth:`~repro.geodb.query.Predicate.compile_columns`) that selects row
positions without touching a single :class:`GeoObject`, and shaping
reads the columns directly, constructing objects only for survivors.
The engine always answers at the **latest committed state** — MVCC
snapshot readers and mid-transaction overlays resolve through
``Transaction.query``/``read`` and never reach this module — so the
only runtime hazards are a mid-apply commit (the seqlock makes the
build bail out) and index scans (whose candidates come from the
R-tree); both fall back to the row path, recorded truthfully in the
per-class plan report (``columns: true/false`` plus a reason).

When a closure class's extent is partitioned into shards
(:meth:`~repro.geodb.database.GeographicDatabase.shard_extent`), the
engine switches to **scatter-gather**: the planner prunes the shard set
against the query's spatial prefilter
(:meth:`~repro.geodb.planner.QueryPlanner.plan_scatter`), each live
shard runs as an independent sub-query (sequentially, or on a thread
pool when ``scatter_workers`` is set), and the per-shard results are
gathered — ordered queries by a k-way merge of locally sorted runs,
aggregates by combining per-shard partial states — so the shaped result
is byte-identical to the single-extent path's.

The returned :class:`QueryResult` carries the rows plus an execution
report (overall plan, truthful per-class plan list, candidates
examined, scatter fan-out) used by the explanation interaction mode,
the CLI ``query`` command and benchmarks C5/C11/C13.
"""

from __future__ import annotations

import heapq
from concurrent.futures import ThreadPoolExecutor
from itertools import repeat
from typing import Any

from .. import obs
from ..errors import QueryError
from .database import GeographicDatabase
from .instances import GeoObject
from .planner import (FULL_SCAN, HASH_SCAN, INDEX_SCAN, SCATTER, ClassPlan,
                      QueryPlanner, ShardPlan)
from .query import MISSING, Query, compile_path, match_all
from .schema import GeoClass


class QueryResult:
    """Rows plus the execution report."""

    def __init__(self, query: Query, objects: list[GeoObject],
                 rows: list[dict[str, Any]] | None, report: dict[str, Any],
                 _oids: list[str] | None = None):
        self.query = query
        self.objects = objects
        #: projected rows when the query had a projection, else None
        self.rows = rows
        self.report = report
        self._oids = _oids

    def __len__(self) -> int:
        return len(self.objects)

    def __iter__(self):
        return iter(self.rows if self.rows is not None else self.objects)

    def oids(self) -> list[str]:
        """Matching oids, computed once per result.

        Results are shared immutable snapshots (the kernel result cache
        hands the same object to every hit) and live-query maintenance
        re-reads the oid set on every delta, so the list is cached on
        first call instead of rebuilt per call.
        """
        if self._oids is None:
            self._oids = [obj.oid for obj in self.objects]
        return self._oids

    def with_report(self, **extra: Any) -> "QueryResult":
        """A shallow view sharing objects/rows but owning its report.

        Cached results are shared, immutable objects; per-call metadata
        (cache hit/miss, live-maintenance provenance) must not be
        written into the shared report another caller already holds.
        """
        return QueryResult(self.query, self.objects, self.rows,
                           {**self.report, **extra}, _oids=self._oids)

    def explain(self) -> str:
        """Human-readable plan summary (explanation mode, §2.2)."""
        r = self.report
        lines = [
            f"query: {self.query.describe()}",
            f"plan: {r['plan']}",
            f"candidates examined: {r['candidates']}",
            f"matches: {r['matches']}",
        ]
        if r.get("index"):
            lines.insert(2, f"index: {r['index']}")
        for class_plan in r.get("plans", ()):
            detail = f"  {class_plan['class']}: {class_plan['plan']}"
            if class_plan.get("index"):
                detail += f" via {class_plan['index']}"
            detail += (f" (cost ~{class_plan['est_cost']}, "
                       f"rows ~{class_plan['est_rows']})")
            if class_plan.get("reason"):
                detail += f" — {class_plan['reason']}"
            if "columns" in class_plan:
                if class_plan["columns"]:
                    detail += " [columns]"
                elif class_plan.get("columns_reason"):
                    detail += f" [rows: {class_plan['columns_reason']}]"
                else:
                    detail += " [rows]"
            lines.append(detail)
        if r.get("scatter"):
            scatter = r["scatter"]
            lines.append(
                f"scatter: {scatter['shards']} shard(s) executed, "
                f"{scatter['pruned']} pruned, "
                f"workers={scatter['workers']}"
            )
        if r.get("cache"):
            lines.append(f"cache: {r['cache']}")
        return "\n".join(lines)


class QueryEngine:
    """Executes queries against one database."""

    def __init__(self, database: GeographicDatabase,
                 scatter_workers: int = 0, use_columns: bool = True):
        self.database = database
        self.planner = QueryPlanner(database)
        #: thread-pool width for scatter sub-queries; 0/1 = sequential.
        #: Sub-queries are pure reads, so threading is always safe; it
        #: only pays off when candidate fetch releases the GIL or the
        #: host has cores to spare.
        self.scatter_workers = scatter_workers
        #: columnar execution switch — False forces the row path on
        #: every scan (benchmark baselines, equivalence tests)
        self.use_columns = use_columns

    def execute(self, schema_name: str, query: Query) -> QueryResult:
        rec = obs.RECORDER
        if not rec.enabled:
            return self._execute(schema_name, query)
        with rec.timed("query.seconds"), \
                rec.span("query.execute", cls=query.class_name) as span:
            result = self._execute(schema_name, query)
            span.annotate(plan=result.report["plan"],
                          candidates=result.report["candidates"],
                          matches=result.report["matches"])
        rec.inc("query.executed", plan=result.report["plan"])
        for class_plan in result.report["plans"]:
            rec.inc("query.plan", choice=class_plan["plan"])
        rec.registry.histogram(
            "query.candidates", buckets=obs.COUNT_BUCKETS
        ).observe(result.report["candidates"])
        return result

    def _execute(self, schema_name: str, query: Query) -> QueryResult:
        db = self.database
        schema = db.get_schema_object(schema_name)
        geo_class = schema.get_class(query.class_name)
        planner = self.planner
        prefilter, equality = planner.prefilters(query)
        closure = planner.class_closure(schema_name, query)
        shard_plans = [
            shard_plan for class_name in closure
            if (shard_plan := planner.plan_scatter(
                schema_name, class_name, prefilter)) is not None
        ]
        sharded = {shard_plan.class_name for shard_plan in shard_plans}
        plans = [
            planner.plan_class(schema_name, class_name, prefilter, equality)
            for class_name in closure if class_name not in sharded
        ]
        matcher = self._compile(query, geo_class)
        if shard_plans:
            return self._execute_scatter(schema_name, geo_class, query,
                                         plans, shard_plans, prefilter,
                                         equality, matcher)

        candidates = 0
        #: per-plan outcome, in plan order — ("cols", columns, selected
        #: row positions) or ("rows", matched objects)
        parts: list[tuple] = []
        all_columns = True
        for class_plan in plans:
            selected = self._column_select(schema_name, class_plan,
                                           equality, query, geo_class,
                                           matcher)
            if selected is not None:
                columns, row_sel, examined = selected
                candidates += examined
                parts.append(("cols", columns, row_sel))
                continue
            all_columns = False
            objects = self._class_candidates(schema_name, class_plan,
                                             prefilter, equality)
            candidates += len(objects)
            if matcher is match_all:
                parts.append(("rows", list(objects)))
            else:
                # filter() keeps the per-candidate loop in C.
                parts.append(("rows", list(filter(matcher, objects))))

        report = self._report(plans, candidates)
        if all_columns:
            # Every class went columnar: shape directly over columns,
            # constructing objects only for surviving rows.
            return self._shape_columns(
                query, geo_class,
                [(columns, row_sel) for __, columns, row_sel in parts],
                report)

        # Mixed (or pure-row) closure: materialize columnar survivors
        # into the match list and shape through the row path.
        matches: list[GeoObject] = []
        for part in parts:
            if part[0] == "cols":
                __, columns, row_sel = part
                objects = columns.objects
                matches.extend(objects[i] for i in row_sel)
            else:
                matches.extend(part[1])
        if query.aggregates:
            # aggregates reduce the full matching set; limit is moot
            rows = [self._aggregate(matches, geo_class, query)]
            report["matches"] = len(matches)
            return QueryResult(query, matches, rows, report)
        matches = self._order(matches, geo_class, query)
        if query.limit is not None:
            matches = matches[: query.limit]
        rows = self._project(matches, geo_class, query)
        report["matches"] = len(matches)
        return QueryResult(query, matches, rows, report)

    def _column_select(self, schema_name: str, class_plan: ClassPlan,
                       equality, query: Query, geo_class: GeoClass,
                       matcher):
        """Run one class plan's selection over its column snapshot.

        Returns ``(columns, selected row positions, candidates
        examined)``, or ``None`` after downgrading the plan to the row
        path — ``class_plan.columns``/``columns_reason`` always end up
        describing what actually happened.
        """
        if not class_plan.columns:
            return None
        rec = obs.RECORDER
        if not self.use_columns:
            class_plan.columns = False
            class_plan.columns_reason = "columns disabled"
            if rec.enabled:
                rec.inc("query.columns.fallback", reason="disabled")
            return None
        db = self.database
        columns = db.column_cache.for_class(schema_name,
                                            class_plan.class_name)
        if columns is None:
            class_plan.columns = False
            class_plan.columns_reason = "commit in flight"
            if rec.enabled:
                rec.inc("query.columns.fallback",
                        reason="commit-in-flight")
            return None
        if class_plan.kind == HASH_SCAN:
            attr, values = equality
            index = db.attribute_index(schema_name, class_plan.class_name,
                                       attr)
            if len(values) == 1:
                oids = index.lookup_view(values[0])
            else:
                oids = index.lookup_many(values)
            # Same candidate order as the row path: fetch_objects over
            # sorted oids, absent members skipped.
            row_of = columns.row_of
            rows: Any = [row for oid in sorted(oids)
                         if (row := row_of.get(oid)) is not None]
        else:
            rows = range(columns.cardinality)
        if matcher is match_all:
            selected = list(rows)
        else:
            kernel = self._compile_columns(query, geo_class, columns)
            selected = kernel(rows)
        return columns, selected, len(rows)

    def _compile_columns(self, query: Query, geo_class: GeoClass, columns):
        """The query's fused column kernel for one column snapshot."""
        return query.where.compile_columns(geo_class, columns)

    def _class_candidates(self, schema_name: str, class_plan: ClassPlan,
                          prefilter, equality):
        """Candidates for one class via its planned access path."""
        db = self.database
        class_name = class_plan.class_name
        if class_plan.kind == INDEX_SCAN:
            attr, box = prefilter
            index = db.spatial_index(schema_name, class_name, attr)
            return db.fetch_objects(schema_name, class_name,
                                    index.search(box))
        if class_plan.kind == HASH_SCAN:
            attr, values = equality
            index = db.attribute_index(schema_name, class_name, attr)
            if len(values) == 1:
                oids = index.lookup_view(values[0])
            else:
                oids = index.lookup_many(values)
            return db.fetch_objects(schema_name, class_name, sorted(oids))
        return db.extent(schema_name, class_name)

    # -- scatter-gather --------------------------------------------------------

    def _execute_scatter(self, schema_name: str, geo_class: GeoClass,
                         query: Query, plans: list[ClassPlan],
                         shard_plans: list[ShardPlan], prefilter, equality,
                         matcher) -> QueryResult:
        """Scatter the query over live shards, gather shaped results.

        Each *unit* — a live shard of a sharded class, or the whole
        candidate set of an unsharded closure class — refines
        independently. The gather step is shape-aware: ordered queries
        merge locally sorted runs (k-way, via :func:`heapq.merge`),
        aggregates combine per-unit partial states, and plain queries
        concatenate in unit order.

        Sharded classes with a fresh column snapshot refine their
        shards as **column slices**: the kernel is compiled once per
        class (here, on the gather thread), each shard's oid list maps
        to row positions, and only survivors materialize — the per-unit
        results are identical to per-shard fetch + row refine.
        """
        db = self.database
        rec = obs.RECORDER
        units: list[list[GeoObject]] = []
        candidates = 0
        for class_plan in plans:
            selected = self._column_select(schema_name, class_plan,
                                           equality, query, geo_class,
                                           matcher)
            if selected is not None:
                columns, row_sel, examined = selected
                candidates += examined
                objects = columns.objects
                units.append([objects[i] for i in row_sel])
                continue
            objects = self._class_candidates(schema_name, class_plan,
                                             prefilter, equality)
            candidates += len(objects)
            units.append(list(objects) if matcher is match_all
                         else list(filter(matcher, objects)))

        # Column slices for the sharded classes: one snapshot + one
        # compiled kernel per class, shared by all of its shard tasks
        # (kernels close over pre-built columns, so worker threads only
        # read). The report entry records the per-class outcome.
        scatter_entries: list[ClassPlan] = []
        class_slices: dict[str, tuple] = {}
        for shard_plan in shard_plans:
            entry = shard_plan.as_class_plan()
            columns = db.column_cache.for_class(
                schema_name, shard_plan.class_name) if self.use_columns \
                else None
            if columns is not None:
                kernel = None if matcher is match_all else \
                    self._compile_columns(query, geo_class, columns)
                class_slices[shard_plan.class_name] = (columns, kernel)
                entry.columns = True
            else:
                entry.columns_reason = ("commit in flight"
                                        if self.use_columns
                                        else "columns disabled")
                if rec.enabled:
                    rec.inc("query.columns.fallback",
                            reason="commit-in-flight" if self.use_columns
                            else "disabled")
            scatter_entries.append(entry)

        def run_shard(task):
            class_name, shard = task
            slice_ = class_slices.get(class_name)
            if slice_ is not None:
                columns, kernel = slice_
                row_of = columns.row_of
                rows = [row for oid in shard.oids
                        if (row := row_of.get(oid)) is not None]
                selected = rows if kernel is None else kernel(rows)
                objects = columns.objects
                return len(rows), [objects[i] for i in selected]
            objects = db.fetch_objects(schema_name, class_name, shard.oids)
            matched = list(objects) if matcher is match_all \
                else list(filter(matcher, objects))
            return len(objects), matched

        tasks = [(shard_plan.class_name, shard)
                 for shard_plan in shard_plans
                 for shard in shard_plan.shards]
        workers = min(self.scatter_workers or 1, max(len(tasks), 1))
        if workers > 1:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                results = list(pool.map(run_shard, tasks))
        else:
            results = [run_shard(task) for task in tasks]
        for examined, matched in results:
            candidates += examined
            units.append(matched)

        report = self._report(plans + scatter_entries, candidates)
        report["plan"] = SCATTER
        report["scatter"] = {
            "classes": [shard_plan.describe() for shard_plan in shard_plans],
            "shards": len(tasks),
            "pruned": sum(shard_plan.pruned for shard_plan in shard_plans),
            "workers": workers,
        }
        if rec.enabled:
            rec.inc("query.scatter.shards", amount=len(tasks))
            rec.inc("query.scatter.merges")

        if query.aggregates:
            rows = [self._merge_aggregates(units, geo_class, query)]
            matches = [obj for unit in units for obj in unit]
            report["matches"] = len(matches)
            return QueryResult(query, matches, rows, report)
        if query.order_by:
            matches = self._merge_ordered(units, geo_class, query)
        else:
            matches = [obj for unit in units for obj in unit]
        if query.limit is not None:
            matches = matches[: query.limit]
        rows = self._project(matches, geo_class, query)
        report["matches"] = len(matches)
        return QueryResult(query, matches, rows, report)

    def _merge_ordered(self, units: list[list[GeoObject]],
                       geo_class: GeoClass, query: Query) -> list[GeoObject]:
        """K-way merge of per-unit runs, each sorted locally first."""
        key, descending = self._order_key(geo_class, query)
        try:
            runs = [sorted(unit, key=key, reverse=descending)
                    for unit in units]
            return list(heapq.merge(*runs, key=key, reverse=descending))
        except TypeError as exc:
            raise QueryError(
                f"order by {query.order_by!r}: values are not comparable ({exc})"
            ) from exc

    def _merge_aggregates(self, units: list[list[GeoObject]],
                          geo_class: GeoClass,
                          query: Query) -> dict[str, Any]:
        """Combine per-unit partial aggregate states into one row.

        Each unit contributes only its partial (count, sum, min, max)
        over non-None resolved values; the combine step is the algebra
        those partials close under, so the final row matches
        :meth:`_aggregate` over the concatenated set exactly —
        including the SQL-style empty-input conventions.
        """
        row: dict[str, Any] = {}
        for op, path in query.aggregates or ():
            label = f"{op}({path or '*'})"
            if op == "count" and path is None:
                row[label] = sum(len(unit) for unit in units)
                continue
            accessor = compile_path(path, geo_class)
            n = 0
            total: Any = None
            low: Any = None
            high: Any = None
            for unit in units:
                values = [value for value in map(accessor, unit)
                          if value is not MISSING and value is not None]
                if not values:
                    continue
                n += len(values)
                if op in ("sum", "avg"):
                    part = sum(values)
                    total = part if total is None else total + part
                elif op == "min":
                    part = min(values)
                    low = part if low is None else min(low, part)
                elif op == "max":
                    part = max(values)
                    high = part if high is None else max(high, part)
            if op == "count":
                row[label] = n
            elif n == 0:
                row[label] = None
            elif op == "min":
                row[label] = low
            elif op == "max":
                row[label] = high
            elif op == "sum":
                row[label] = total
            else:  # avg
                row[label] = total / n
        return row

    def _compile(self, query: Query, geo_class: GeoClass):
        """The query's compiled refine closure (timed when observable)."""
        rec = obs.RECORDER
        if not rec.enabled:
            return query.where.compile(geo_class)
        # Compilation is sub-microsecond; declare the fine-grained
        # bucket layout before the family is auto-created coarse.
        rec.registry.histogram("query.compile.seconds",
                               buckets=obs.MICRO_BUCKETS)
        with rec.timed("query.compile.seconds"):
            return query.where.compile(geo_class)

    @staticmethod
    def _report(plans, candidates: int) -> dict[str, Any]:
        """The execution report skeleton, truthful about mixed plans."""
        kinds = {class_plan.kind for class_plan in plans}
        overall = kinds.pop() if len(kinds) == 1 else "mixed"
        index_names = [class_plan.index for class_plan in plans
                       if class_plan.index]
        return {
            "plan": overall if plans else FULL_SCAN,
            "index": ", ".join(index_names) if index_names else None,
            "plans": [class_plan.describe() for class_plan in plans],
            "candidates": candidates,
            "matches": 0,
        }

    # -- shaping ---------------------------------------------------------------

    def _order(self, matches: list[GeoObject], geo_class: GeoClass,
               query: Query) -> list[GeoObject]:
        if not query.order_by:
            return matches
        key, descending = self._order_key(geo_class, query)
        try:
            ordered = sorted(matches, key=key, reverse=descending)
        except TypeError as exc:
            raise QueryError(
                f"order by {query.order_by!r}: values are not comparable ({exc})"
            ) from exc
        return ordered

    @staticmethod
    def _order_key(geo_class: GeoClass, query: Query):
        """The (key function, descending) pair for ``order_by``.

        Shared by the single-extent sort and the scatter path's k-way
        merge, so both shapes order identically.
        """
        path = query.order_by
        descending = path.startswith("-")
        if descending:
            path = path[1:]
        accessor = compile_path(path, geo_class)

        def key(obj: GeoObject):
            value = accessor(obj)
            if value is MISSING:
                value = None
            # None sorts last regardless of direction; the oid breaks
            # ties so the ordering is total — the scatter merge then
            # reproduces the single-extent sort byte for byte.
            return (value is None, value, obj.oid)

        return key, descending

    def _aggregate(self, matches: list[GeoObject], geo_class: GeoClass,
                   query: Query) -> dict[str, Any]:
        """One row of aggregate values over the matching set.

        Non-numeric / absent values are skipped by min/max/sum/avg;
        ``count(path)`` counts objects where the path resolves non-None.
        Empty inputs yield ``None`` (0 for counts), SQL-style.
        """
        row: dict[str, Any] = {}
        for op, path in query.aggregates or ():
            label = f"{op}({path or '*'})"
            if op == "count" and path is None:
                row[label] = len(matches)
                continue
            accessor = compile_path(path, geo_class)
            values = []
            for obj in matches:
                value = accessor(obj)
                if value is not MISSING and value is not None:
                    values.append(value)
            if op == "count":
                row[label] = len(values)
            elif not values:
                row[label] = None
            elif op == "min":
                row[label] = min(values)
            elif op == "max":
                row[label] = max(values)
            elif op == "sum":
                row[label] = sum(values)
            else:  # avg
                row[label] = sum(values) / len(values)
        return row

    def _project(self, matches: list[GeoObject], geo_class: GeoClass,
                 query: Query) -> list[dict[str, Any]] | None:
        if query.projection is None:
            return None
        accessors = [
            (path, compile_path(path, geo_class)) for path in query.projection
        ]
        rows = []
        for obj in matches:
            row: dict[str, Any] = {"oid": obj.oid}
            for path, accessor in accessors:
                value = accessor(obj)
                row[path] = None if value is MISSING else value
            rows.append(row)
        return rows

    # -- columnar shaping ------------------------------------------------------

    def _shape_columns(self, query: Query, geo_class: GeoClass,
                       parts: list[tuple], report: dict[str, Any]
                       ) -> QueryResult:
        """Shape an all-columnar selection straight from the columns.

        ``parts`` holds one ``(columns, selected row positions)`` pair
        per closure class, in plan order. Ordering, aggregation and
        projection read value columns; objects are referenced only for
        the rows that survive selection (and limit, for ordered
        queries' projections). Output is byte-identical to the row
        shapes — same key tuples, same empty-input conventions, same
        error text on uncomparable order keys.
        """
        if query.aggregates:
            rows = [self._aggregate_columns(parts, geo_class, query)]
            matches = [columns.objects[i]
                       for columns, selected in parts for i in selected]
            report["matches"] = len(matches)
            return QueryResult(query, matches, rows, report)
        if query.order_by:
            pairs = self._order_columns(parts, geo_class, query)
        else:
            pairs = [(columns, i)
                     for columns, selected in parts for i in selected]
            if query.limit is not None:
                pairs = pairs[: query.limit]
        matches = [columns.objects[i] for columns, i in pairs]
        rows = self._project_columns(pairs, geo_class, query)
        report["matches"] = len(matches)
        return QueryResult(query, matches, rows, report)

    def _order_columns(self, parts: list[tuple], geo_class: GeoClass,
                       query: Query) -> list[tuple]:
        """Sort selected ``(columns, row)`` pairs by the order column.

        The key tuples are exactly :meth:`_order_key`'s — ``(value is
        None, value, oid)`` with MISSING folded to None — and the oid
        tiebreak makes the ordering total, so a multi-class sort equals
        the row path's sort over the concatenated matches. A ``limit``
        switches the full sort to a heap top-k (same total order, so
        the same prefix) and is applied before the pairs are rebuilt.
        """
        path = query.order_by
        descending = path.startswith("-")
        if descending:
            path = path[1:]
        # Decorated flat tuples sorted without a key function: oids are
        # unique, so the trailing (part, row) fields never reach the
        # comparison — they only carry the payload through the sort.
        keyed = []
        for part, (columns, selected) in enumerate(parts):
            column = columns.path_column(path, geo_class)
            oids = columns.oids
            if len(selected) == columns.cardinality and not any(
                    v is None or v is MISSING for v in column):
                # Unfiltered scan, no null keys: decorate at C speed.
                keyed.extend(zip(repeat(False), column, oids,
                                 repeat(part), range(len(column))))
                continue
            append = keyed.append
            for i in selected:
                value = column[i]
                if value is MISSING or value is None:
                    append((True, None, oids[i], part, i))
                else:
                    append((False, value, oids[i], part, i))
        limit = query.limit
        try:
            if limit is not None and 0 <= limit < len(keyed):
                keyed = (heapq.nlargest if descending else
                         heapq.nsmallest)(limit, keyed)
            else:
                keyed.sort(reverse=descending)
        except TypeError as exc:
            raise QueryError(
                f"order by {query.order_by!r}: values are not comparable ({exc})"
            ) from exc
        part_columns = [columns for columns, __ in parts]
        return [(part_columns[entry[3]], entry[4]) for entry in keyed]

    def _aggregate_columns(self, parts: list[tuple], geo_class: GeoClass,
                           query: Query) -> dict[str, Any]:
        """:meth:`_aggregate` over columns — no per-row accessor calls."""
        row: dict[str, Any] = {}
        #: path -> non-null value list, shared across aggregate ops
        #: (min/max/avg over one path scan the column once, not thrice)
        values_by_path: dict[str, list] = {}
        for op, path in query.aggregates or ():
            label = f"{op}({path or '*'})"
            if op == "count" and path is None:
                row[label] = sum(len(selected) for __, selected in parts)
                continue
            values = values_by_path.get(path)
            if values is None:
                values = values_by_path[path] = []
                for columns, selected in parts:
                    column = columns.path_column(path, geo_class)
                    values.extend(
                        v for i in selected
                        if (v := column[i]) is not MISSING and v is not None)
            if op == "count":
                row[label] = len(values)
            elif not values:
                row[label] = None
            elif op == "min":
                row[label] = min(values)
            elif op == "max":
                row[label] = max(values)
            elif op == "sum":
                row[label] = sum(values)
            else:  # avg
                row[label] = sum(values) / len(values)
        return row

    def _project_columns(self, pairs: list[tuple], geo_class: GeoClass,
                         query: Query) -> list[dict[str, Any]] | None:
        """:meth:`_project` over columns for surviving (post-limit) rows."""
        if query.projection is None:
            return None
        #: id(columns) -> (oid column, [(path, value column)])
        resolved: dict[int, tuple] = {}
        rows = []
        for columns, i in pairs:
            entry = resolved.get(id(columns))
            if entry is None:
                entry = (columns.oids,
                         [(path, columns.path_column(path, geo_class))
                          for path in query.projection])
                resolved[id(columns)] = entry
            oids, path_columns = entry
            row: dict[str, Any] = {"oid": oids[i]}
            for path, column in path_columns:
                value = column[i]
                row[path] = None if value is MISSING else value
            rows.append(row)
        return rows
