"""Geometry <-> JSON-safe structure codec for the page store.

A tiny GeoJSON-like encoding: ``{"t": <geom_type>, "c": <coords>}``.
Kept separate from the geometry classes so the spatial package stays free
of storage concerns.
"""

from __future__ import annotations

from typing import Any

from ..errors import StorageError
from ..spatial.geometry import (
    Geometry,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
    Ring,
)


def encode_geometry(geom: Geometry) -> dict[str, Any]:
    """Encode a geometry into a JSON-safe dict."""
    if isinstance(geom, Point):
        return {"t": "point", "c": [geom.x, geom.y]}
    if isinstance(geom, LineString):
        return {"t": "linestring", "c": [list(p) for p in geom.coords]}
    if isinstance(geom, Polygon):
        return {
            "t": "polygon",
            "c": [
                [list(p) for p in ring.coords] for ring in geom.rings()
            ],
        }
    if isinstance(geom, MultiPoint):
        return {"t": "multipoint", "c": [[m.x, m.y] for m in geom]}
    if isinstance(geom, MultiLineString):
        return {
            "t": "multilinestring",
            "c": [[list(p) for p in m.coords] for m in geom],
        }
    if isinstance(geom, MultiPolygon):
        return {
            "t": "multipolygon",
            "c": [
                [[list(p) for p in ring.coords] for ring in m.rings()] for m in geom
            ],
        }
    raise StorageError(f"cannot encode geometry type {type(geom).__name__}")


def decode_geometry(raw: Any) -> Geometry:
    """Inverse of :func:`encode_geometry`."""
    if not isinstance(raw, dict) or "t" not in raw or "c" not in raw:
        raise StorageError(f"malformed geometry encoding: {raw!r}")
    tag, coords = raw["t"], raw["c"]
    if tag == "point":
        return Point(coords[0], coords[1])
    if tag == "linestring":
        return LineString(coords)
    if tag == "polygon":
        return Polygon(Ring(coords[0]), [Ring(r) for r in coords[1:]])
    if tag == "multipoint":
        return MultiPoint([Point(x, y) for x, y in coords])
    if tag == "multilinestring":
        return MultiLineString([LineString(c) for c in coords])
    if tag == "multipolygon":
        return MultiPolygon(
            [Polygon(Ring(rings[0]), [Ring(r) for r in rings[1:]]) for rings in coords]
        )
    raise StorageError(f"unknown geometry tag {tag!r}")
