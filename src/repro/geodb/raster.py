"""Tiled raster attribute storage with zoom-level pyramids.

Vector workloads (poles, ducts, cables) fit one record per page; the
bitmap attributes real GIS front-ends carry — scanned plans, well image
logs, orthophotos — do not. This module stores a raster payload as
fixed-size **tiles** on dedicated pages behind the shared
:class:`~repro.geodb.buffer.BufferManager`, so reads touch only the
tiles a window actually intersects, at a pyramid level chosen from the
display scale.

Layout
------
* A :class:`Raster` is the in-memory payload: ``width`` x ``height``
  8-bit pixels (row-major, one byte per pixel), optionally georeferenced
  by a ground ``extent``.
* At commit time the payload is cut into ``tile`` x ``tile`` pixel tiles
  per pyramid level (power-of-two point-sampled downsamples, the
  coarsest level fitting a single tile). Each tile is framed by
  :func:`encode_tile` — a JSON header carrying the raster id, level,
  tile index, payload length and a CRC32 — and chunked over one or more
  dedicated pages (a 64x64 byte tile does not fit one 4 KiB slotted
  page, so **multi-page tile writes are the norm**, not the exception).
* Tile pages are :class:`~repro.geodb.storage.SlottedPage` containers
  flagged ``is_overflow`` with the chunk in slot 0: the heap's scanner
  and free-map treat them exactly like overflow-chain links (skipped,
  zero free space), so raster pages and record pages share one pager
  and one buffer pool without stepping on each other.
* The **tile directory** (tile key -> page numbers, raster id ->
  descriptor, free page list) lives in memory and is persisted into the
  heap as a single ``_rasterdir`` record at every checkpoint — the same
  durability point at which the tile pages themselves are flushed.

Crash semantics
---------------
Tile writes ride the transaction's existing WAL batch: one ``"R"``
record per tile (base64 payload) is logged *before* the data pages are
dirtied, and the pages are only dirtied inside the buffer's no-steal
scope. A crash before the commit record is durable loses the whole
raster (the directory never referenced it); a crash after replays every
tile record idempotently — recovery can never surface a half-written
raster. Rasters are immutable: updating a raster attribute writes a
complete new tile set under a fresh raster id, so concurrent snapshot
readers keep resolving the old id (MVCC needs no page-level versioning)
and rollback is exact (the new pages return to the free list).

The object's attribute value is a :class:`RasterRef` — a small JSON-safe
descriptor — so records, WAL intents, replication snapshots and the
metadata catalog all round-trip it through the ordinary
``AttributeType.encode``/``decode`` contract.
"""

from __future__ import annotations

import base64
import json
import math
import zlib
from typing import Any, Iterator

from .. import obs
from ..errors import RasterError
from ..spatial.geometry import BBox
from ..spatial.scale import MapScale, Viewport
from .storage import SlottedPage, _header_reserve

#: default tile edge in pixels (64x64 bytes = one 4 KiB page of payload,
#: which chunks over two slotted pages — a genuine multi-page tile write)
DEFAULT_TILE = 64

#: assumed physical pixel pitch when picking a pyramid level for a
#: :class:`MapScale` (0.25 mm/pixel ~ a 100 dpi display)
MM_PER_PIXEL = 0.25


def _level_dim(size: int, level: int) -> int:
    """Pixel extent of one axis at a pyramid level (ceil division)."""
    step = 1 << level
    return max(1, -(-size // step))


def downsample(pixels: bytes, width: int, height: int,
               level: int) -> tuple[bytes, int, int]:
    """Power-of-two point-sampled downsample of a row-major bitmap.

    Level ``k`` keeps every ``2**k``-th pixel (top-left of each block),
    so composing downsamples is exact: ``downsample(downsample(p, j), k)
    == downsample(p, j + k)`` — the idempotence the property suite pins.
    Returns ``(pixels, level_width, level_height)``.
    """
    if level == 0:
        return pixels, width, height
    step = 1 << level
    lw, lh = _level_dim(width, level), _level_dim(height, level)
    out = bytearray(lw * lh)
    pos = 0
    for y in range(0, height, step):
        row = pixels[y * width: y * width + width]
        out[pos:pos + lw] = row[::step]
        pos += lw
    return bytes(out), lw, lh


def level_count(width: int, height: int, tile: int = DEFAULT_TILE) -> int:
    """Pyramid depth: levels until the coarsest fits in a single tile."""
    levels = 1
    while max(_level_dim(width, levels - 1),
              _level_dim(height, levels - 1)) > tile:
        levels += 1
    return levels


def tile_grid(width: int, height: int, tile: int) -> tuple[int, int]:
    """(columns, rows) of the tile grid covering a ``width`` x ``height`` bitmap."""
    return (-(-width // tile), -(-height // tile))


def slice_tile(pixels: bytes, width: int, height: int, tile: int,
               tx: int, ty: int) -> bytes:
    """Cut one tile out of a row-major bitmap.

    Edge tiles keep their true (smaller) size rather than being padded,
    so reassembly is byte-exact without bookkeeping.
    """
    x0, y0 = tx * tile, ty * tile
    tw = min(tile, width - x0)
    th = min(tile, height - y0)
    out = bytearray(tw * th)
    for row in range(th):
        start = (y0 + row) * width + x0
        out[row * tw:(row + 1) * tw] = pixels[start:start + tw]
    return bytes(out)


# ---------------------------------------------------------------------------
# Tile codec
# ---------------------------------------------------------------------------


def encode_tile(rid: str, level: int, index: int, data: bytes) -> bytes:
    """Frame one tile: ``[4-byte header len][header JSON][payload]``.

    The header carries the tile's identity and a CRC32 of the payload,
    so a directory pointing at the wrong pages — or a damaged page —
    is detected on read rather than silently decoded.
    """
    header = json.dumps(
        {"rid": rid, "lv": level, "ix": index, "n": len(data),
         "crc": zlib.crc32(data) & 0xFFFFFFFF},
        separators=(",", ":"),
    ).encode("utf-8")
    return len(header).to_bytes(4, "big") + header + data


def decode_tile(blob: bytes) -> dict[str, Any]:
    """Inverse of :func:`encode_tile`; validates length and checksum.

    Returns the header dict with the payload under ``"data"``; raises
    :class:`~repro.errors.RasterError` on any damage.
    """
    if len(blob) < 4:
        raise RasterError("tile frame is truncated (no header length)")
    header_len = int.from_bytes(blob[:4], "big")
    if 4 + header_len > len(blob):
        raise RasterError("tile frame is truncated (header cut off)")
    try:
        header = json.loads(blob[4:4 + header_len].decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise RasterError(f"tile header does not decode: {exc}") from exc
    data = blob[4 + header_len:4 + header_len + header["n"]]
    if len(data) != header["n"]:
        raise RasterError(
            f"tile {header.get('rid')}/{header.get('lv')}/{header.get('ix')}"
            f" is truncated: expected {header['n']} bytes, got {len(data)}"
        )
    if (zlib.crc32(data) & 0xFFFFFFFF) != header["crc"]:
        raise RasterError(
            f"tile {header.get('rid')}/{header.get('lv')}/{header.get('ix')}"
            " failed its CRC check (damaged page?)"
        )
    header["data"] = data
    return header


# ---------------------------------------------------------------------------
# Value objects
# ---------------------------------------------------------------------------


class Raster:
    """An in-memory raster payload staged for commit.

    ``pixels`` is a row-major bytes object, one byte per pixel; ``extent``
    georeferences the bitmap (row 0 is the *north* edge, the screen
    convention :class:`~repro.spatial.scale.Viewport` uses).
    """

    __slots__ = ("width", "height", "pixels", "extent")

    def __init__(self, width: int, height: int, pixels: bytes,
                 extent: BBox | None = None):
        if width < 1 or height < 1:
            raise RasterError(f"raster must be at least 1x1, got {width}x{height}")
        pixels = bytes(pixels)
        if len(pixels) != width * height:
            raise RasterError(
                f"raster payload is {len(pixels)} bytes; "
                f"{width}x{height} needs {width * height}"
            )
        self.width = width
        self.height = height
        self.pixels = pixels
        self.extent = extent

    def __repr__(self) -> str:
        return f"<Raster {self.width}x{self.height}, {len(self.pixels)} bytes>"


class RasterRef:
    """The committed, JSON-safe descriptor of a stored raster.

    This is what lives in the object's attribute value (and therefore in
    heap records, WAL intents and replication snapshots); the pixel data
    stays in the tile pages and is read through
    :class:`RasterStore`. Immutable and cheap to copy.
    """

    __slots__ = ("rid", "width", "height", "tile", "levels", "extent")

    def __init__(self, rid: str, width: int, height: int, tile: int,
                 levels: int, extent: tuple[float, float, float, float] | None):
        self.rid = rid
        self.width = width
        self.height = height
        self.tile = tile
        self.levels = levels
        self.extent = tuple(extent) if extent is not None else None

    # -- geometry ------------------------------------------------------------

    def level_dims(self, level: int) -> tuple[int, int]:
        if not 0 <= level < self.levels:
            raise RasterError(
                f"raster {self.rid} has levels 0..{self.levels - 1}, "
                f"asked for {level}"
            )
        return (_level_dim(self.width, level), _level_dim(self.height, level))

    def tile_counts(self, level: int) -> tuple[int, int]:
        lw, lh = self.level_dims(level)
        return tile_grid(lw, lh, self.tile)

    def tiles_at(self, level: int) -> int:
        tx, ty = self.tile_counts(level)
        return tx * ty

    def total_tiles(self) -> int:
        return sum(self.tiles_at(level) for level in range(self.levels))

    def bbox(self) -> BBox | None:
        if self.extent is None:
            return None
        return BBox(*self.extent)

    # -- pyramid level selection ----------------------------------------------

    def level_for(self, scale: "MapScale | Viewport | int | None",
                  mm_per_pixel: float = MM_PER_PIXEL) -> int:
        """The pyramid level to read for a display scale or viewport.

        Picks the coarsest level whose ground-units-per-pixel still
        meets the display's resolution — coarse levels when zoomed out,
        level 0 when zoomed in (or when the raster is not
        georeferenced). An ``int`` is taken as an explicit level.
        """
        if scale is None:
            return 0
        if isinstance(scale, int):
            if not 0 <= scale < self.levels:
                raise RasterError(
                    f"raster {self.rid} has levels 0..{self.levels - 1}, "
                    f"asked for {scale}"
                )
            return scale
        if self.extent is None:
            return 0
        base_gpp = (self.extent[2] - self.extent[0]) / self.width
        if base_gpp <= 0:
            return 0
        if isinstance(scale, Viewport):
            target = scale.cell_ground_size()[0]
        elif isinstance(scale, MapScale):
            target = scale.ground_units_per_mm() * mm_per_pixel
        else:
            raise RasterError(
                f"cannot select a pyramid level from {type(scale).__name__}"
            )
        level = 0
        while (level + 1 < self.levels
               and base_gpp * (1 << (level + 1)) <= target):
            level += 1
        return level

    # -- (de)serialization ------------------------------------------------------

    def describe(self) -> dict[str, Any]:
        return {
            "rid": self.rid,
            "w": self.width,
            "h": self.height,
            "tile": self.tile,
            "levels": self.levels,
            "extent": list(self.extent) if self.extent is not None else None,
        }

    @classmethod
    def from_description(cls, desc: dict[str, Any]) -> "RasterRef":
        return cls(desc["rid"], desc["w"], desc["h"], desc["tile"],
                   desc["levels"], desc.get("extent"))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RasterRef):
            return NotImplemented
        return self.describe() == other.describe()

    def __hash__(self) -> int:
        return hash((self.rid, self.width, self.height))

    def __repr__(self) -> str:
        return (f"<RasterRef {self.rid} {self.width}x{self.height}, "
                f"{self.levels} levels, tile {self.tile}>")


class RasterWindow:
    """The pixels of one windowed read, at the level it was served from."""

    __slots__ = ("level", "x", "y", "width", "height", "pixels")

    def __init__(self, level: int, x: int, y: int, width: int, height: int,
                 pixels: bytes):
        self.level = level
        self.x = x
        self.y = y
        self.width = width
        self.height = height
        self.pixels = pixels

    def __repr__(self) -> str:
        return (f"<RasterWindow level={self.level} "
                f"[{self.x},{self.y} {self.width}x{self.height}]>")


class RasterWrite:
    """The staged tile set of one raster payload (commit-internal)."""

    __slots__ = ("rid", "ref", "tiles")

    def __init__(self, rid: str, ref: RasterRef,
                 tiles: list[tuple[int, int, bytes]]):
        self.rid = rid
        self.ref = ref
        #: (level, tile index, tile payload bytes), level-major order
        self.tiles = tiles

    def wal_docs(self) -> Iterator[dict[str, Any]]:
        """One JSON-safe redo record per tile for the commit's WAL batch."""
        desc = self.ref.describe()
        for level, index, data in self.tiles:
            yield {
                "rid": self.rid,
                "lv": level,
                "ix": index,
                "desc": desc,
                "data": base64.b64encode(data).decode("ascii"),
            }


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------


class RasterStore:
    """Tile pages, directory and pyramid reads for one database.

    Shares the database's pager and buffer manager: tile reads populate
    the same pool vector pages live in (which is what makes the buffer's
    ``bulk_scan`` hint matter), and tile writes obey the same no-steal /
    WAL-rule machinery as record pages.
    """

    #: marker key of the persisted directory record in the heap
    DIRECTORY_MARKER = "_rasterdir"

    def __init__(self, db, tile: int = DEFAULT_TILE):
        self.db = db
        self.tile = tile
        #: "rid/level/index" -> [page numbers]
        self._tiles: dict[str, list[int]] = {}
        #: rid -> descriptor dict (RasterRef.describe())
        self._rasters: dict[str, dict[str, Any]] = {}
        #: pages released by :meth:`release`, reused before allocating
        self._free: list[int] = []
        self._next = 1
        #: RecordId of the persisted directory record, once written
        self._dir_rid = None
        #: True when the in-memory directory diverges from the persisted one
        self._dirty = False
        # plain counters (obs mirrors them when enabled)
        self.tile_reads = 0
        self.tile_writes = 0
        self.window_reads = 0

    # -- small helpers -----------------------------------------------------------

    @property
    def _pager(self):
        return self.db.pager

    @property
    def _buffer(self):
        return self.db.buffer

    def _chunk_size(self) -> int:
        size = self._pager.page_size
        return size - _header_reserve(size) - 128

    def _take_page(self) -> int:
        if self._free:
            return self._free.pop()
        return self._pager.allocate_page()

    @staticmethod
    def tile_key(rid: str, level: int, index: int) -> str:
        return f"{rid}/{level}/{index}"

    # -- staging (compute tiles outside the apply phase) --------------------------

    def stage(self, raster: Raster) -> RasterWrite:
        """Cut a payload into per-level tiles under a fresh raster id.

        Pure computation — nothing is written until :meth:`apply`, so a
        transaction that aborts before its apply phase leaves no trace.
        """
        rid = f"r{self._next}"
        self._next += 1
        levels = level_count(raster.width, raster.height, self.tile)
        extent = None
        if raster.extent is not None:
            extent = (raster.extent.min_x, raster.extent.min_y,
                      raster.extent.max_x, raster.extent.max_y)
        ref = RasterRef(rid, raster.width, raster.height, self.tile,
                        levels, extent)
        tiles: list[tuple[int, int, bytes]] = []
        for level in range(levels):
            pixels, lw, lh = downsample(raster.pixels, raster.width,
                                        raster.height, level)
            cols, rows = tile_grid(lw, lh, self.tile)
            for ty in range(rows):
                for tx in range(cols):
                    tiles.append((level, ty * cols + tx,
                                  slice_tile(pixels, lw, lh, self.tile,
                                             tx, ty)))
        return RasterWrite(rid, ref, tiles)

    # -- apply / undo (runs inside the commit's no-steal scope) -------------------

    def apply(self, write: RasterWrite, undo: list) -> None:
        """Write a staged tile set through the buffer, journaling undo ops."""
        for level, index, data in write.tiles:
            self._write_tile(write.rid, level, index, data, undo)
        self._rasters[write.rid] = write.ref.describe()
        undo.append(lambda: self._rasters.pop(write.rid, None))
        self._dirty = True

    def _write_tile(self, rid: str, level: int, index: int, data: bytes,
                    undo: list | None) -> None:
        key = self.tile_key(rid, level, index)
        blob = encode_tile(rid, level, index, data)
        chunk = self._chunk_size()
        size = self._pager.page_size
        pages: list[int] = []
        for start in range(0, len(blob), chunk):
            page_no = self._take_page()
            page = SlottedPage(size)
            # Tile pages masquerade as overflow links: the heap scanner
            # skips them and its free map never hands them to records.
            page.is_overflow = True
            page.add(blob[start:start + chunk])
            self._buffer.write_page(page_no, page.to_bytes())
            pages.append(page_no)
        previous = self._tiles.get(key)
        self._tiles[key] = pages
        if undo is not None:
            def restore(key=key, pages=pages, previous=previous):
                if previous is None:
                    self._tiles.pop(key, None)
                else:
                    self._tiles[key] = previous
                self._free.extend(pages)
            undo.append(restore)
        self.tile_writes += 1
        self._dirty = True
        rec = obs.RECORDER
        if rec.enabled:
            rec.inc("raster.tile_writes")

    def release(self, ref: "RasterRef | str") -> int:
        """Free a raster's tile pages; returns how many pages went back.

        Rasters are immutable and copy-on-write, so this is a
        maintenance call for rasters no live object *or snapshot* still
        references (e.g. after :meth:`GeographicDatabase.gc_versions`
        passed the overwriting commit).
        """
        rid = ref.rid if isinstance(ref, RasterRef) else ref
        if rid not in self._rasters:
            raise RasterError(f"unknown raster {rid!r}")
        freed = 0
        prefix = f"{rid}/"
        for key in [k for k in self._tiles if k.startswith(prefix)]:
            pages = self._tiles.pop(key)
            self._free.extend(pages)
            freed += len(pages)
        del self._rasters[rid]
        self._dirty = True
        return freed

    # -- recovery / replication ----------------------------------------------------

    def replay_tile(self, doc: dict[str, Any]) -> bool:
        """Idempotently redo one logged tile write; True when applied.

        A tile already present (its pages decode to the same payload) is
        skipped, so replaying the same batch twice — or replaying after
        a crash that flushed half the tiles — converges on the same
        state.
        """
        rid, level, index = doc["rid"], doc["lv"], doc["ix"]
        self._rasters.setdefault(rid, dict(doc["desc"]))
        suffix = rid[1:]
        if suffix.isdigit():
            self._next = max(self._next, int(suffix) + 1)
        data = base64.b64decode(doc["data"])
        key = self.tile_key(rid, level, index)
        if key in self._tiles:
            try:
                if self.read_tile(rid, level, index) == data:
                    return False
            except RasterError:
                pass  # damaged or stale pages: rewrite below
        self._write_tile(rid, level, index, data, undo=None)
        return True

    def export(self) -> list[dict[str, Any]]:
        """Every tile as a replayable doc (follower bootstrap snapshots)."""
        docs = []
        for rid, desc in sorted(self._rasters.items()):
            ref = RasterRef.from_description(desc)
            for level in range(ref.levels):
                for index in range(ref.tiles_at(level)):
                    docs.append({
                        "rid": rid, "lv": level, "ix": index, "desc": desc,
                        "data": base64.b64encode(
                            self.read_tile(rid, level, index)).decode("ascii"),
                    })
        return docs

    # -- directory persistence ------------------------------------------------------

    def persist(self) -> None:
        """Write the directory into the heap (called at checkpoint time).

        Runs before the buffer flush inside
        :meth:`GeographicDatabase.checkpoint`, so the directory and the
        tile pages it references reach the pager under the same sync.
        """
        if not self._dirty and self._dir_rid is not None:
            return
        if not self._rasters and self._dir_rid is None and not self._free:
            return  # nothing raster-shaped ever happened
        record = {
            self.DIRECTORY_MARKER: True,
            "next": self._next,
            "tile": self.tile,
            "tiles": self._tiles,
            "rasters": self._rasters,
            "free": self._free,
        }
        heap = self.db.heap
        if self._dir_rid is not None:
            self._dir_rid = heap.overwrite(self._dir_rid, record)
        else:
            self._dir_rid = heap.insert(record)
        self._dirty = False

    def adopt(self, rid, record: dict[str, Any]) -> None:
        """Restore the directory from its persisted heap record.

        Called by :meth:`GeographicDatabase.load_from_storage` when the
        scan encounters the ``_rasterdir`` record.
        """
        self._dir_rid = rid
        self._next = max(self._next, record.get("next", 1))
        self.tile = record.get("tile", self.tile)
        self._tiles = {key: list(pages)
                       for key, pages in record.get("tiles", {}).items()}
        self._rasters = dict(record.get("rasters", {}))
        self._free = list(record.get("free", []))
        self._dirty = False

    # -- reads ------------------------------------------------------------------------

    def ref(self, rid: str) -> RasterRef:
        desc = self._rasters.get(rid)
        if desc is None:
            raise RasterError(f"unknown raster {rid!r}")
        return RasterRef.from_description(desc)

    def read_tile(self, rid: str, level: int, index: int) -> bytes:
        """One tile's payload, lazily through the buffer manager."""
        key = self.tile_key(rid, level, index)
        pages = self._tiles.get(key)
        if pages is None:
            raise RasterError(f"raster tile {key} is not in the directory")
        size = self._pager.page_size
        parts = []
        for page_no in pages:
            page = SlottedPage.from_bytes(self._buffer.read_page(page_no),
                                          size)
            parts.append(page.get(0))
        doc = decode_tile(b"".join(parts))
        if (doc["rid"], doc["lv"], doc["ix"]) != (rid, level, index):
            raise RasterError(
                f"directory for {key} points at tile "
                f"{doc['rid']}/{doc['lv']}/{doc['ix']}"
            )
        self.tile_reads += 1
        rec = obs.RECORDER
        if rec.enabled:
            rec.inc("raster.tile_reads")
        return doc["data"]

    def read_region(self, ref: RasterRef, level: int, x0: int, y0: int,
                    width: int, height: int) -> bytes:
        """Pixels of a level-space rectangle, touching only its tiles."""
        lw, lh = ref.level_dims(level)
        if not (0 <= x0 and 0 <= y0 and x0 + width <= lw
                and y0 + height <= lh):
            raise RasterError(
                f"region [{x0},{y0} {width}x{height}] exceeds level {level} "
                f"({lw}x{lh}) of raster {ref.rid}"
            )
        if width == 0 or height == 0:
            return b""
        tile = ref.tile
        cols, __ = ref.tile_counts(level)
        out = bytearray(width * height)
        for ty in range(y0 // tile, (y0 + height - 1) // tile + 1):
            for tx in range(x0 // tile, (x0 + width - 1) // tile + 1):
                data = self.read_tile(ref.rid, level, ty * cols + tx)
                tw = min(tile, lw - tx * tile)
                # overlap of this tile with the requested rect
                ox0 = max(x0, tx * tile)
                ox1 = min(x0 + width, tx * tile + tw)
                oy0 = max(y0, ty * tile)
                oy1 = min(y0 + height, ty * tile + min(tile, lh - ty * tile))
                for y in range(oy0, oy1):
                    src = (y - ty * tile) * tw + (ox0 - tx * tile)
                    dst = (y - y0) * width + (ox0 - x0)
                    out[dst:dst + (ox1 - ox0)] = data[src:src + (ox1 - ox0)]
        return bytes(out)

    def read_level(self, ref: RasterRef, level: int = 0) -> bytes:
        """A whole pyramid level, reassembled from its tiles.

        Full-bitmap sweeps go through the buffer's scan-resistant hint,
        so reading a big raster once does not evict the hot vector
        working set.
        """
        lw, lh = ref.level_dims(level)
        with self._buffer.bulk_scan():
            return self.read_region(ref, level, 0, 0, lw, lh)

    def read_window(self, ref: RasterRef, window: BBox,
                    scale: "MapScale | Viewport | int | None" = None
                    ) -> RasterWindow:
        """Pixels of a ground-space window at the scale-chosen level.

        Maps ``window`` (ground coordinates) onto the pyramid level
        :meth:`RasterRef.level_for` picks for ``scale``, then reads only
        the tiles that rectangle intersects. Row 0 of the result is the
        window's north edge.
        """
        extent = ref.bbox()
        if extent is None:
            raise RasterError(
                f"raster {ref.rid} has no ground extent; use read_region "
                "for pixel-space access"
            )
        level = ref.level_for(scale)
        rec = obs.RECORDER
        self.window_reads += 1
        if rec.enabled:
            rec.inc("raster.window_reads")
            rec.inc("raster.pyramid_level", level=level)
        lw, lh = ref.level_dims(level)
        ix0 = max(window.min_x, extent.min_x)
        ix1 = min(window.max_x, extent.max_x)
        iy0 = max(window.min_y, extent.min_y)
        iy1 = min(window.max_y, extent.max_y)
        if ix0 >= ix1 or iy0 >= iy1:
            return RasterWindow(level, 0, 0, 0, 0, b"")
        fx0 = (ix0 - extent.min_x) / extent.width
        fx1 = (ix1 - extent.min_x) / extent.width
        # row 0 is the north (max_y) edge
        fy0 = (extent.max_y - iy1) / extent.height
        fy1 = (extent.max_y - iy0) / extent.height
        x0 = min(int(fx0 * lw), lw - 1)
        x1 = max(x0 + 1, min(math.ceil(fx1 * lw), lw))
        y0 = min(int(fy0 * lh), lh - 1)
        y1 = max(y0 + 1, min(math.ceil(fy1 * lh), lh))
        pixels = self.read_region(ref, level, x0, y0, x1 - x0, y1 - y0)
        return RasterWindow(level, x0, y0, x1 - x0, y1 - y0, pixels)

    # -- introspection -----------------------------------------------------------------

    def status(self) -> dict[str, Any]:
        """Directory and counter summary for the CLI and benchmarks."""
        tile_pages = sum(len(pages) for pages in self._tiles.values())
        levels: dict[str, int] = {}
        for key in self._tiles:
            level = key.split("/")[1]
            levels[level] = levels.get(level, 0) + 1
        return {
            "rasters": len(self._rasters),
            "tiles": len(self._tiles),
            "tile_pages": tile_pages,
            "free_pages": len(self._free),
            "tile_size": self.tile,
            "tiles_per_level": dict(sorted(levels.items())),
            "tile_reads": self.tile_reads,
            "tile_writes": self.tile_writes,
            "window_reads": self.window_reads,
        }

    def __repr__(self) -> str:
        return (f"<RasterStore rasters={len(self._rasters)} "
                f"tiles={len(self._tiles)} tile={self.tile}>")
