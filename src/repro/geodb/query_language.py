"""A textual query language for the *analysis* interaction mode.

§2.2: "In the analysis mode, the goal is to evaluate conditions, usually
via query predicates." The paper's related work cites Egenhofer's Spatial
SQL [4] as the style of language such a mode needs. This module provides
a small query language over the declarative predicate model::

    select * from Pole
        where pole_type = 1 and within(pole_location, bbox(0, 0, 200, 40))
        order by pole_type limit 10

    select pole_composition.pole_material from Pole
        where distance(pole_location, point(10, 20)) <= 50

Grammar (case-insensitive keywords)::

    query      := "select" ("*" | path ("," path)*) "from" NAME
                  ("where" or_expr)? ("order" "by" ("-")? path)?
                  ("limit" INT)? ("including" "subclasses")?
    or_expr    := and_expr ("or" and_expr)*
    and_expr   := unary ("and" unary)*
    unary      := "not" unary | "(" or_expr ")" | condition
    condition  := comparison | spatial | proximity
    comparison := path OP literal        OP in = != < <= > >= like in
    spatial    := REL "(" path "," probe ")"
                  REL in equals disjoint intersects touches overlaps
                         crosses within contains covers covered_by
    proximity  := "distance" "(" path "," probe ")" "<=" NUMBER
    probe      := "bbox" "(" N "," N "," N "," N ")"
                | "point" "(" N "," N ")"
                | "line" "(" N N ("," N N)+ ")"
                | "polygon" "(" N N ("," N N)+ ")"
    literal    := NUMBER | STRING | "true" | "false" | "null"
                | "[" literal ("," literal)* "]"
"""

from __future__ import annotations

import re
from typing import Any

from ..errors import QueryError
from ..spatial.geometry import BBox, Geometry, LineString, Point, Polygon
from ..spatial.topology import PREDICATES
from .query import (
    And,
    Comparison,
    Not,
    Or,
    Predicate,
    Query,
    SpatialPredicate,
    WithinDistance,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<op><=|>=|!=|=|<|>)
  | (?P<punct>[(),*\[\]])
  | (?P<word>[A-Za-z_][A-Za-z0-9_.]*)
    """,
    re.VERBOSE,
)

_COMPARE_OPS = {"=", "!=", "<", "<=", ">", ">="}


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise QueryError(
                f"query syntax error near {text[pos:pos + 12]!r}"
            )
        kind = match.lastgroup
        value = match.group()
        pos = match.end()
        if kind == "ws":
            continue
        if kind == "string":
            value = value[1:-1]
        tokens.append((kind, value))
    tokens.append(("eof", ""))
    return tokens


class _QueryParser:
    def __init__(self, text: str):
        self._tokens = _tokenize(text)
        self._pos = 0

    def _peek(self) -> tuple[str, str]:
        return self._tokens[self._pos]

    def _next(self) -> tuple[str, str]:
        token = self._tokens[self._pos]
        if token[0] != "eof":
            self._pos += 1
        return token

    def _accept_word(self, *words: str) -> bool:
        kind, value = self._peek()
        if kind == "word" and value.lower() in words:
            self._next()
            return True
        return False

    def _expect_word(self, word: str) -> None:
        if not self._accept_word(word):
            raise QueryError(f"expected {word!r}, found {self._peek()[1]!r}")

    def _expect_punct(self, punct: str) -> None:
        kind, value = self._peek()
        if kind == "punct" and value == punct:
            self._next()
            return
        raise QueryError(f"expected {punct!r}, found {value!r}")

    def _expect_number(self) -> float:
        kind, value = self._next()
        if kind != "number":
            raise QueryError(f"expected a number, found {value!r}")
        return float(value)

    def _expect_path(self) -> str:
        kind, value = self._next()
        if kind != "word":
            raise QueryError(f"expected an attribute path, found {value!r}")
        return value

    # -- grammar -------------------------------------------------------------

    def parse_query(self) -> Query:
        from .query import AGGREGATE_OPS

        self._expect_word("select")
        projection: list[str] | None = None
        aggregates: list[tuple[str, str | None]] = []
        if self._peek() == ("punct", "*"):
            self._next()
        else:
            items: list[str] = []
            while True:
                kind, value = self._peek()
                if (kind == "word" and value.lower() in AGGREGATE_OPS
                        and self._tokens[self._pos + 1] == ("punct", "(")):
                    self._next()
                    self._expect_punct("(")
                    if self._peek() == ("punct", "*"):
                        self._next()
                        arg: str | None = None
                    else:
                        arg = self._expect_path()
                    self._expect_punct(")")
                    aggregates.append((value.lower(), arg))
                else:
                    items.append(self._expect_path())
                if self._peek() == ("punct", ","):
                    self._next()
                    continue
                break
            if items and aggregates:
                raise QueryError(
                    "select either aggregates or attribute paths, not both")
            projection = items or None
        self._expect_word("from")
        class_name = self._expect_path()

        where: Predicate | None = None
        if self._accept_word("where"):
            where = self._parse_or()

        order_by = None
        if self._accept_word("order"):
            self._expect_word("by")
            descending = False
            if self._peek() == ("op", "-") or (
                self._peek()[0] == "number"
                and self._peek()[1].startswith("-")
            ):
                raise QueryError("use 'order by desc <path>' for descending")
            if self._accept_word("desc"):
                descending = True
            order_by = self._expect_path()
            if descending:
                order_by = "-" + order_by

        limit = None
        if self._accept_word("limit"):
            limit = int(self._expect_number())

        include_subclasses = False
        if self._accept_word("including"):
            self._expect_word("subclasses")
            include_subclasses = True

        if self._peek()[0] != "eof":
            raise QueryError(
                f"unexpected trailing input: {self._peek()[1]!r}"
            )
        return Query(
            class_name,
            where=where,
            projection=projection,
            aggregates=aggregates or None,
            order_by=order_by,
            limit=limit,
            include_subclasses=include_subclasses,
        )

    def _parse_or(self) -> Predicate:
        parts = [self._parse_and()]
        while self._accept_word("or"):
            parts.append(self._parse_and())
        return parts[0] if len(parts) == 1 else Or(parts)

    def _parse_and(self) -> Predicate:
        parts = [self._parse_unary()]
        while self._accept_word("and"):
            parts.append(self._parse_unary())
        return parts[0] if len(parts) == 1 else And(parts)

    def _parse_unary(self) -> Predicate:
        if self._accept_word("not"):
            return Not(self._parse_unary())
        if self._peek() == ("punct", "("):
            self._next()
            inner = self._parse_or()
            self._expect_punct(")")
            return inner
        return self._parse_condition()

    def _parse_condition(self) -> Predicate:
        kind, value = self._peek()
        if kind != "word":
            raise QueryError(f"expected a condition, found {value!r}")
        lowered = value.lower()
        if lowered == "distance":
            return self._parse_proximity()
        if lowered == "relate":
            return self._parse_relate()
        if lowered in PREDICATES:
            return self._parse_spatial()
        return self._parse_comparison()

    def _parse_relate(self) -> Predicate:
        from .query import RelateMask

        self._next()  # relate
        self._expect_punct("(")
        attr = self._expect_path()
        self._expect_punct(",")
        probe = self._parse_probe()
        self._expect_punct(",")
        kind, mask = self._next()
        if kind != "string":
            raise QueryError("relate(...) needs a quoted DE-9IM mask")
        self._expect_punct(")")
        return RelateMask(attr, probe, mask)

    def _parse_proximity(self) -> Predicate:
        self._next()  # distance
        self._expect_punct("(")
        attr = self._expect_path()
        self._expect_punct(",")
        probe = self._parse_probe()
        self._expect_punct(")")
        kind, op = self._next()
        if (kind, op) != ("op", "<="):
            raise QueryError("distance(...) must be compared with <=")
        radius = self._expect_number()
        return WithinDistance(attr, probe, radius)

    def _parse_spatial(self) -> Predicate:
        __, relation = self._next()
        self._expect_punct("(")
        attr = self._expect_path()
        self._expect_punct(",")
        probe = self._parse_probe()
        self._expect_punct(")")
        return SpatialPredicate(attr, relation.lower(), probe)

    def _parse_probe(self) -> Geometry:
        kind, value = self._next()
        if kind != "word":
            raise QueryError(f"expected a geometry probe, found {value!r}")
        shape = value.lower()
        self._expect_punct("(")
        if shape == "bbox":
            numbers = [self._expect_number()]
            for __ in range(3):
                self._expect_punct(",")
                numbers.append(self._expect_number())
            self._expect_punct(")")
            return Polygon.from_bbox(BBox(*numbers))
        if shape == "point":
            x = self._expect_number()
            self._expect_punct(",")
            y = self._expect_number()
            self._expect_punct(")")
            return Point(x, y)
        if shape in ("line", "polygon"):
            coords = [(self._expect_number(), self._expect_number())]
            while self._peek() == ("punct", ","):
                self._next()
                coords.append((self._expect_number(), self._expect_number()))
            self._expect_punct(")")
            if shape == "line":
                return LineString(coords)
            return Polygon(coords)
        raise QueryError(
            f"unknown probe shape {shape!r}; use bbox/point/line/polygon"
        )

    def _parse_comparison(self) -> Predicate:
        path = self._expect_path()
        kind, op = self._next()
        word_op = op.lower() if kind == "word" else op
        if kind == "word" and word_op == "like":
            literal = self._parse_literal()
            return Comparison(path, "like", literal)
        if kind == "word" and word_op == "in":
            literal = self._parse_literal()
            if not isinstance(literal, list):
                raise QueryError("'in' needs a [list, of, literals]")
            return Comparison(path, "in", literal)
        if kind == "op" and op in _COMPARE_OPS:
            literal = self._parse_literal()
            return Comparison(path, op, literal)
        raise QueryError(f"unknown comparison operator {op!r}")

    def _parse_literal(self) -> Any:
        kind, value = self._next()
        if kind == "number":
            number = float(value)
            return int(number) if number.is_integer() else number
        if kind == "string":
            return value
        if kind == "word":
            lowered = value.lower()
            if lowered == "true":
                return True
            if lowered == "false":
                return False
            if lowered == "null":
                return None
            raise QueryError(
                f"bare word {value!r} is not a literal (quote strings)"
            )
        if kind == "punct" and value == "[":
            items = []
            if self._peek() != ("punct", "]"):
                items.append(self._parse_literal())
                while self._peek() == ("punct", ","):
                    self._next()
                    items.append(self._parse_literal())
            self._expect_punct("]")
            return items
        raise QueryError(f"expected a literal, found {value!r}")


def parse_query(text: str) -> Query:
    """Parse a textual analysis-mode query into a :class:`Query`."""
    return _QueryParser(text).parse_query()


def run_query(database, schema_name: str, text: str):
    """Parse and execute in one call; returns a
    :class:`~repro.geodb.query_engine.QueryResult`."""
    from .query_engine import QueryEngine

    return QueryEngine(database).execute(schema_name, parse_query(text))
