"""Cost-based query planning over class extents and their indexes.

Until now the query engine picked its access path by fixed priority
(spatial index, then hash index, then full scan). That heuristic is
wrong in both directions: a bounding box covering the whole map still
pays the R-tree walk plus a per-candidate refine, while a highly
selective hash bucket is ignored whenever any spatial prefilter exists.
This module replaces the priority rule with estimated costs:

* :class:`Statistics` — per-(schema, class) measurements: extent
  cardinality, hash-index selectivity (via
  :meth:`~repro.geodb.attr_index.HashIndex.stats`), and R-tree coverage
  (entry count plus the index's bounding box). Snapshots are cached and
  keyed by the class's **commit version**
  (:meth:`~repro.geodb.database.GeographicDatabase.class_version`), so
  they refresh lazily after every commit that touches the class and are
  free between commits.
* :class:`QueryPlanner` — chooses, **per class** of the query's closure
  (the class plus its transitive subclasses when ``include_subclasses``
  is set), the cheapest of full scan / hash scan / R-tree scan by the
  cost model below. Mixed closures therefore mix access paths — one
  subclass may scan its R-tree while an unindexed sibling falls back to
  its extent — and the per-class decisions are reported truthfully in
  the execution report.

Cost model (unit: one extent-row visit)
---------------------------------------

``full-scan``      ``1 + N`` — touch every row of the extent.
``hash-scan``      ``2 + est_rows`` — bucket probes are O(1); the work
                   is fetching and refining the bucket members.
                   ``est_rows`` is exact when the index is consulted
                   (bucket lengths are known), else the average bucket
                   size times the number of probe values.
``index-scan``     ``2·log2(N+2) + 1.15·est_rows`` — the tree descent
                   plus fetch/refine of the overlap estimate, with a
                   mild penalty for the R-tree's rectangle tests.
                   ``est_rows`` is ``N`` scaled by the probe box's
                   per-dimension overlap with the index's bounding box
                   (degenerate dimensions count as full overlap when the
                   probe spans them, zero otherwise).

A hash path is only *eligible* when every probe value is indexable —
``= None`` never consults the index (``None`` is not a key; absent
attributes resolve to type defaults, so a bucket miss does not prove a
predicate miss) — and a spatial path is only eligible when the class
actually declares the geometry attribute (a class that does not gets a
``full-scan`` plan and a ``query.index_fallback`` counter instead of a
silently swallowed exception).
"""

from __future__ import annotations

import math
from typing import Any

from .. import obs
from ..spatial.geometry import BBox

#: Plan kinds, as they appear in execution reports.
FULL_SCAN = "full-scan"
HASH_SCAN = "hash-scan"
INDEX_SCAN = "index-scan"
SCATTER = "scatter"

#: Cost constants (in extent-row-visit units). The absolute scale is
#: irrelevant; only the ratios steer decisions.
_ROW_COST = 1.0
_HASH_SETUP = 2.0
_RTREE_ROW_COST = 1.15
_SCAN_SETUP = 1.0


class ClassPlan:
    """The chosen access path for one class of a query's closure."""

    __slots__ = ("class_name", "kind", "index", "est_cost", "est_rows",
                 "reason", "columns", "columns_reason")

    def __init__(self, class_name: str, kind: str, index: str | None,
                 est_cost: float, est_rows: float, reason: str = "",
                 columns: bool = False, columns_reason: str = ""):
        self.class_name = class_name
        self.kind = kind
        #: index identity (``rtree(Cls.attr)`` / ``hash(Cls.attr)``), or None
        self.index = index
        self.est_cost = est_cost
        self.est_rows = est_rows
        #: why this path won (or why an index was not usable)
        self.reason = reason
        #: whether this class scans the columnar path (set eligible by
        #: the planner, downgraded by the engine if the column set
        #: cannot be used at execution time — see docs/COLUMNS.md)
        self.columns = columns
        #: why the row path was used when ``columns`` is False
        self.columns_reason = columns_reason

    def describe(self) -> dict[str, Any]:
        described = {
            "class": self.class_name,
            "plan": self.kind,
            "index": self.index,
            "est_cost": round(self.est_cost, 2),
            "est_rows": round(self.est_rows, 2),
            "reason": self.reason,
            "columns": self.columns,
        }
        if not self.columns and self.columns_reason:
            described["columns_reason"] = self.columns_reason
        return described

    def __repr__(self) -> str:
        return (f"<ClassPlan {self.class_name}: {self.kind}"
                f"{' via ' + self.index if self.index else ''}>")


class ShardPlan:
    """The live shard set for one sharded class of a query's closure.

    Produced by :meth:`QueryPlanner.plan_scatter` when the class's extent
    is partitioned (see :mod:`repro.geodb.sharding`). ``shards`` holds
    only the shards the query must actually execute on — grid cells
    whose bounding box is disjoint from the query's spatial prefilter
    are pruned, and the residual (no-geometry) shard is pruned whenever
    the prefilter is a necessary condition of the predicate.
    """

    __slots__ = ("class_name", "attr", "shards", "total_shards", "windowed")

    def __init__(self, class_name: str, attr: str, shards: list,
                 total_shards: int, windowed: bool):
        self.class_name = class_name
        #: the partition attribute (the geometry the grid is built on)
        self.attr = attr
        #: live shards, in shard-map order (residual last if present)
        self.shards = shards
        self.total_shards = total_shards
        #: whether a spatial window on the partition attribute pruned
        self.windowed = windowed

    @property
    def pruned(self) -> int:
        return self.total_shards - len(self.shards)

    def as_class_plan(self) -> ClassPlan:
        """The report entry for this class: a scatter over live shards."""
        rows = float(sum(shard.cardinality for shard in self.shards))
        cost = _SCAN_SETUP * len(self.shards) + rows * _ROW_COST
        return ClassPlan(
            self.class_name, SCATTER, None, cost, rows,
            reason=(f"{len(self.shards)}/{self.total_shards} shards live"
                    + (" (window pruned)" if self.windowed else "")),
        )

    def describe(self) -> dict[str, Any]:
        return {
            "class": self.class_name,
            "attr": self.attr,
            "shards": [shard.shard_id for shard in self.shards],
            "total_shards": self.total_shards,
            "pruned": self.pruned,
            "windowed": self.windowed,
        }

    def __repr__(self) -> str:
        return (f"<ShardPlan {self.class_name}: "
                f"{len(self.shards)}/{self.total_shards} shards>")


class ClassStats:
    """One class's statistics snapshot (valid for one commit version)."""

    __slots__ = ("version", "cardinality", "spatial", "hash")

    def __init__(self, version: int, cardinality: int,
                 spatial: dict[str, dict[str, Any]],
                 hash_: dict[str, dict[str, Any]]):
        self.version = version
        self.cardinality = cardinality
        #: attr -> {entries, bbox (BBox|None)}
        self.spatial = spatial
        #: attr -> {entries, distinct, avg_bucket, max_bucket}
        self.hash = hash_

    def describe(self) -> dict[str, Any]:
        return {
            "version": self.version,
            "cardinality": self.cardinality,
            "spatial": {
                attr: {
                    "entries": info["entries"],
                    "bbox": None if info["bbox"] is None else [
                        info["bbox"].min_x, info["bbox"].min_y,
                        info["bbox"].max_x, info["bbox"].max_y,
                    ],
                }
                for attr, info in self.spatial.items()
            },
            "hash": dict(self.hash),
        }


class Statistics:
    """Catalog-level planner statistics for one database.

    Snapshots are computed lazily on first use and cached keyed by
    ``(class commit version, extent length)``: every commit that touches
    a class bumps its version (see ``GeographicDatabase._commit_locked``),
    and bulk loads outside the commit path move the extent length, so a
    cached snapshot is exactly as fresh as the class it describes.
    """

    def __init__(self, database):
        self._db = database
        #: (schema, class) -> ClassStats
        self._cache: dict[tuple[str, str], ClassStats] = {}

    def for_class(self, schema_name: str, class_name: str,
                  schema=None) -> ClassStats:
        key = (schema_name, class_name)
        db = self._db
        version = db.class_version(schema_name, class_name)
        if schema is None:
            cardinality = len(db.extent(schema_name, class_name))
        else:
            # Batched callers (snapshot) have already validated the
            # schema/class pair — probe the extent table directly
            # instead of re-walking the catalog per class.
            extent = db._extents.get(key)
            cardinality = 0 if extent is None else len(extent)
        cached = self._cache.get(key)
        if cached is not None and cached.version == version \
                and cached.cardinality == cardinality:
            return cached
        stats = self._compute(schema_name, class_name, version, cardinality,
                              schema=schema)
        self._cache[key] = stats
        return stats

    def _compute(self, schema_name: str, class_name: str, version: int,
                 cardinality: int, schema=None) -> ClassStats:
        db = self._db
        if schema is None:
            schema = db.get_schema_object(schema_name)
        spatial: dict[str, dict[str, Any]] = {}
        hash_: dict[str, dict[str, Any]] = {}
        for attr in schema.effective_attributes(class_name):
            if attr.is_spatial():
                index = db._spatial.get((schema_name, class_name, attr.name))
                if index is not None and len(index):
                    spatial[attr.name] = {
                        "entries": len(index), "bbox": index.bbox(),
                    }
            else:
                index = db.attribute_index(schema_name, class_name, attr.name)
                if index is not None:
                    info = index.stats()
                    distinct = info["distinct_values"]
                    hash_[attr.name] = {
                        "entries": info["entries"],
                        "distinct": distinct,
                        "avg_bucket": (info["entries"] / distinct
                                       if distinct else 0.0),
                        "max_bucket": info["max_bucket"],
                    }
        return ClassStats(version, cardinality, spatial, hash_)

    def invalidate(self) -> None:
        """Drop every cached snapshot (tests / bulk administrative ops)."""
        self._cache.clear()

    def snapshot(self, schema_name: str | None = None) -> dict[str, Any]:
        """A JSON-safe export of the statistics for persistence / CLI.

        Computes fresh snapshots for every class of the named schema (or
        all schemas), so the export reflects the current commit state.
        Batched: the schema object is fetched once per schema and passed
        through, so each class costs one extent/version probe instead of
        a catalog walk plus an extent validation of its own.
        """
        db = self._db
        out: dict[str, Any] = {}
        names = [schema_name] if schema_name else db.schema_names()
        for name in names:
            schema = db.get_schema_object(name)
            out[name] = {
                cls: self.for_class(name, cls, schema=schema).describe()
                for cls in schema.class_names()
            }
        return out


def _overlap_ratio(probe: BBox, extent: BBox) -> float:
    """Fraction of the index's coverage a probe box selects, in [0, 1].

    Per-dimension overlap ratios are multiplied (the uniform-spread
    assumption). A degenerate index dimension (all geometry at one
    coordinate) contributes 1 when the probe spans it, 0 otherwise.
    """

    def axis(p_min: float, p_max: float, e_min: float, e_max: float) -> float:
        lo, hi = max(p_min, e_min), min(p_max, e_max)
        if hi < lo:
            return 0.0
        span = e_max - e_min
        if span <= 0.0:
            return 1.0
        return min(1.0, (hi - lo) / span)

    return (axis(probe.min_x, probe.max_x, extent.min_x, extent.max_x)
            * axis(probe.min_y, probe.max_y, extent.min_y, extent.max_y))


class QueryPlanner:
    """Chooses the cheapest access path per class of a query's closure."""

    def __init__(self, database, statistics: Statistics | None = None):
        self._db = database
        self.statistics = statistics if statistics is not None \
            else database.statistics

    # -- closure ---------------------------------------------------------

    def class_closure(self, schema_name: str, query) -> list[str]:
        """The classes the query touches, in deterministic order."""
        if not query.include_subclasses:
            return [query.class_name]
        schema = self._db.get_schema_object(schema_name)
        closure: list[str] = []
        pending = [query.class_name]
        while pending:
            current = pending.pop()
            closure.append(current)
            pending.extend(schema.subclasses(current))
        return closure

    # -- planning --------------------------------------------------------

    def prefilters(self, query) -> tuple[tuple[str, BBox] | None,
                                         tuple[str, list] | None]:
        """The query's *usable* spatial and equality prefilters.

        Applies the planner's eligibility rules: an empty probe bbox
        carries no information (the index would return nothing while
        the predicate may still match), and ``= None`` cannot use a
        hash index (``None`` is not an index key, and absent attributes
        resolve to type defaults, so a bucket miss does not prove a
        predicate miss).
        """
        prefilter = query.where.spatial_prefilter()
        if prefilter is not None and prefilter[1].is_empty():
            prefilter = None
        equality = query.where.equality_prefilter()
        if equality is not None and any(v is None for v in equality[1]):
            equality = None
        return prefilter, equality

    def plan_scatter(self, schema_name: str, class_name: str,
                     prefilter: tuple[str, BBox] | None) -> ShardPlan | None:
        """The scatter plan for one class, or None if it is not sharded.

        A class participates in scatter-gather execution when the
        catalog holds a shard map with at least two shards for it.
        Pruning applies only when the query's spatial prefilter names
        the partition attribute: the prefilter extraction already
        guarantees the window is a *necessary* condition of the
        predicate, so cells disjoint from it (and the residual shard,
        whose members have no geometry to intersect anything) cannot
        contribute a match. A prefilter on a *different* spatial
        attribute says nothing about the partition geometry — every
        shard stays live.
        """
        shard_map = self._db.shard_map(schema_name, class_name)
        if shard_map is None or len(shard_map.shards) < 2:
            return None
        window = None
        prune_residual = False
        if prefilter is not None and prefilter[0] == shard_map.attr:
            window = prefilter[1]
            prune_residual = True
        live = shard_map.live_shards(window, prune_residual)
        return ShardPlan(class_name, shard_map.attr, live,
                         len(shard_map.shards), window is not None)

    def plan(self, schema_name: str, query) -> list[ClassPlan]:
        """One :class:`ClassPlan` per class of the query's closure."""
        prefilter, equality = self.prefilters(query)
        plans = []
        for class_name in self.class_closure(schema_name, query):
            plans.append(
                self.plan_class(schema_name, class_name, prefilter, equality)
            )
        return plans

    def plan_class(
        self,
        schema_name: str,
        class_name: str,
        prefilter: tuple[str, BBox] | None,
        equality: tuple[str, list] | None,
    ) -> ClassPlan:
        """The cheapest access path for one class."""
        db = self._db
        stats = self.statistics.for_class(schema_name, class_name)
        n = stats.cardinality
        best = ClassPlan(class_name, FULL_SCAN, None,
                         _SCAN_SETUP + n * _ROW_COST, float(n),
                         reason="extent scan")

        if equality is not None:
            attr, values = equality
            index = db.attribute_index(schema_name, class_name, attr)
            if index is not None:
                # Bucket lengths are known exactly — use them instead of
                # the average-bucket estimate.
                est_rows = float(sum(
                    len(index.lookup_view(value)) for value in values
                ))
                cost = _HASH_SETUP + est_rows * _ROW_COST
                if cost < best.est_cost:
                    best = ClassPlan(
                        class_name, HASH_SCAN, f"hash({class_name}.{attr})",
                        cost, est_rows,
                        reason=f"{len(values)} bucket probe(s), "
                               f"~{est_rows:.0f} rows",
                    )

        if prefilter is not None:
            attr, box = prefilter
            info = stats.spatial.get(attr)
            if info is not None:
                # A populated R-tree proves the attribute is spatial
                # here; no schema walk needed on the common path.
                entries = info["entries"]
                ratio = _overlap_ratio(box, info["bbox"])
                est_rows = entries * ratio
                cost = (2.0 * math.log2(entries + 2)
                        + est_rows * _RTREE_ROW_COST)
                if cost < best.est_cost:
                    best = ClassPlan(
                        class_name, INDEX_SCAN,
                        f"rtree({class_name}.{attr})", cost, est_rows,
                        reason=f"bbox covers ~{ratio:.1%} of the index",
                    )
            elif not self._attr_is_spatial(schema_name, class_name, attr):
                # The prefilter names an attribute this class does not
                # declare as a geometry — observable fallback, not a
                # swallowed exception (the closure may mix classes).
                rec = obs.RECORDER
                if rec.enabled:
                    rec.inc("query.index_fallback", cls=class_name, attr=attr)
                if best.kind == FULL_SCAN:
                    best.reason = f"attribute {attr!r} not spatial here"
            else:
                # Spatial attribute exists but its R-tree is empty (the
                # extent is empty, or no row has geometry set): the full
                # scan is the only correct path and already selected.
                pass
        # Column eligibility: full and hash scans visit rows the column
        # snapshot covers one-for-one; an index scan's candidate set
        # comes from the R-tree, which has no column-side equivalent.
        if best.kind in (FULL_SCAN, HASH_SCAN):
            best.columns = True
        else:
            best.columns_reason = "index scan"
        return best

    def _attr_is_spatial(self, schema_name: str, class_name: str,
                         attr: str) -> bool:
        schema = self._db.get_schema_object(schema_name)
        for candidate in schema.effective_attributes(class_name):
            if candidate.name == attr:
                return candidate.is_spatial()
        return False
