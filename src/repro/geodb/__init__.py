"""Object-oriented geographic DBMS substrate.

Provides the storage, schema, query, transaction and event surfaces the
paper's architecture assumes of its "geographic database".
"""

from .types import (
    BITMAP,
    BOOLEAN,
    FLOAT,
    INTEGER,
    RASTER,
    TEXT,
    AttributeType,
    BitmapType,
    BooleanType,
    FloatType,
    GeometryType,
    IntegerType,
    ListType,
    RasterType,
    ReferenceType,
    TextType,
    TupleType,
    scalar,
    type_from_description,
)
from .raster import (
    DEFAULT_TILE,
    Raster,
    RasterRef,
    RasterStore,
    RasterWindow,
)
from .schema import Attribute, GeoClass, Method, Schema
from .instances import Extent, GeoObject, fresh_oid
from .storage import FilePager, HeapFile, MemoryPager, RecordId, PAGE_SIZE
from .buffer import BufferManager, BufferStats
from .wal import FaultInjectingPager, LogShipper, WriteAheadLog
from .database import GeographicDatabase
from .mvcc import Version, VersionStore
from .replication import LocalReplicationSource, RemoteReplicationSource
from .sharding import Shard, ShardMap, build_shard_map
from .columns import ClassColumns, ColumnCache
from .transactions import Transaction, TxnState
from .query import (
    And,
    Comparison,
    Not,
    Or,
    Predicate,
    Query,
    RelateMask,
    SpatialPredicate,
    TruePredicate,
    WithinDistance,
)
from .query_engine import QueryEngine, QueryResult
from .attr_index import HashIndex
from .query_language import parse_query, run_query
from .scenario import Scenario
from .catalog import (
    KIND_CUSTOMIZATION,
    KIND_PRESENTATION,
    KIND_RULE,
    KIND_SCHEMA,
    KIND_WIDGET,
    MetadataCatalog,
)

__all__ = [
    "AttributeType", "IntegerType", "FloatType", "TextType", "BooleanType",
    "BitmapType", "GeometryType", "ReferenceType", "TupleType", "ListType",
    "RasterType",
    "INTEGER", "FLOAT", "TEXT", "BOOLEAN", "BITMAP", "RASTER",
    "scalar", "type_from_description",
    "Raster", "RasterRef", "RasterStore", "RasterWindow", "DEFAULT_TILE",
    "Attribute", "Method", "GeoClass", "Schema",
    "GeoObject", "Extent", "fresh_oid",
    "MemoryPager", "FilePager", "HeapFile", "RecordId", "PAGE_SIZE",
    "BufferManager", "BufferStats",
    "WriteAheadLog", "FaultInjectingPager", "LogShipper",
    "GeographicDatabase", "Transaction", "TxnState",
    "Version", "VersionStore",
    "LocalReplicationSource", "RemoteReplicationSource",
    "Shard", "ShardMap", "build_shard_map",
    "ClassColumns", "ColumnCache",
    "Predicate", "Comparison", "SpatialPredicate", "WithinDistance",
    "And", "Or", "Not", "TruePredicate", "Query", "RelateMask",
    "QueryEngine", "QueryResult",
    "parse_query", "run_query", "Scenario", "HashIndex",
    "MetadataCatalog", "KIND_SCHEMA", "KIND_WIDGET", "KIND_CUSTOMIZATION",
    "KIND_RULE", "KIND_PRESENTATION",
]
