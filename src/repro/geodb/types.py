"""Attribute type system of the object-oriented geographic database.

The §4 example class (paper Figure 5) exercises the whole type lattice::

    Class Pole {
        pole_type:        integer;
        pole_composition: tuple(pole_material: text;
                                pole_diameter: float;
                                pole_height:   float);
        pole_supplier:    Supplier;      # reference to another class
        pole_location:    Geometry;
        pole_picture:     bitmap;
        pole_historic:    text;
        Methods: get_supplier_name(Supplier);
    }

Every type knows how to ``validate`` a candidate value, produce a neutral
``default()``, serialize values to JSON-safe structures (``encode`` /
``decode``) for the page store, and render a short ``spec()`` string for
catalog listings and the Schema window.
"""

from __future__ import annotations

import base64
from typing import Any

from ..errors import SchemaError, TypeMismatchError
from ..spatial.geometry import GEOMETRY_TYPES, Geometry


class AttributeType:
    """Base class for attribute types. Types are immutable descriptors."""

    #: Short tag used by the serializer and the customization language.
    tag: str = "any"

    def validate(self, value: Any, attr_name: str = "?") -> None:
        """Raise :class:`TypeMismatchError` unless ``value`` conforms."""
        raise NotImplementedError

    def default(self) -> Any:
        """A neutral value of this type (used for unset attributes)."""
        raise NotImplementedError

    def encode(self, value: Any) -> Any:
        """JSON-safe representation of a validated value."""
        return value

    def decode(self, raw: Any) -> Any:
        """Inverse of :meth:`encode`."""
        return raw

    def spec(self) -> str:
        """Human-readable type spec for catalogs and the Schema window."""
        return self.tag

    def describe(self) -> dict[str, Any]:
        """Structured description, used by the metadata catalog."""
        return {"tag": self.tag}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AttributeType):
            return NotImplemented
        return self.describe() == other.describe()

    def __hash__(self) -> int:
        return hash(self.spec())

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.spec()}>"


class IntegerType(AttributeType):
    tag = "integer"

    def validate(self, value: Any, attr_name: str = "?") -> None:
        if isinstance(value, bool) or not isinstance(value, int):
            raise TypeMismatchError(
                f"attribute {attr_name!r} expects integer, got {value!r}"
            )

    def default(self) -> int:
        return 0


class FloatType(AttributeType):
    tag = "float"

    def validate(self, value: Any, attr_name: str = "?") -> None:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeMismatchError(
                f"attribute {attr_name!r} expects float, got {value!r}"
            )

    def default(self) -> float:
        return 0.0

    def decode(self, raw: Any) -> float:
        return float(raw)


class TextType(AttributeType):
    tag = "text"

    def validate(self, value: Any, attr_name: str = "?") -> None:
        if not isinstance(value, str):
            raise TypeMismatchError(
                f"attribute {attr_name!r} expects text, got {value!r}"
            )

    def default(self) -> str:
        return ""


class BooleanType(AttributeType):
    tag = "boolean"

    def validate(self, value: Any, attr_name: str = "?") -> None:
        if not isinstance(value, bool):
            raise TypeMismatchError(
                f"attribute {attr_name!r} expects boolean, got {value!r}"
            )

    def default(self) -> bool:
        return False


class BitmapType(AttributeType):
    """Opaque binary payloads — the paper's ``pole_picture: bitmap``."""

    tag = "bitmap"

    def validate(self, value: Any, attr_name: str = "?") -> None:
        if not isinstance(value, (bytes, bytearray)):
            raise TypeMismatchError(
                f"attribute {attr_name!r} expects bitmap bytes, got {type(value).__name__}"
            )

    def default(self) -> bytes:
        return b""

    def encode(self, value: Any) -> str:
        return base64.b64encode(bytes(value)).decode("ascii")

    def decode(self, raw: Any) -> bytes:
        return base64.b64decode(raw)


class RasterType(AttributeType):
    """A tiled, pyramid-structured raster attribute (image logs, scans).

    Where :class:`BitmapType` inlines its bytes into the record — fine
    for thumbnails, hopeless for a 4096x4096 scan — a raster attribute
    stores only a :class:`~repro.geodb.raster.RasterRef` descriptor in
    the record; the pixel data lives in dedicated tile pages managed by
    :class:`~repro.geodb.raster.RasterStore`. Writers stage an in-memory
    :class:`~repro.geodb.raster.Raster` payload; the commit path cuts it
    into tiles and swaps the ref in before the intent is encoded.
    """

    tag = "raster"

    def validate(self, value: Any, attr_name: str = "?") -> None:
        from .raster import Raster, RasterRef  # local import: raster uses storage

        if not isinstance(value, (Raster, RasterRef)):
            raise TypeMismatchError(
                f"attribute {attr_name!r} expects a Raster payload or "
                f"RasterRef, got {type(value).__name__}"
            )

    def default(self) -> None:
        return None  # raster attributes have no neutral value; stay unset

    def encode(self, value: Any) -> dict[str, Any]:
        from .raster import RasterRef

        if not isinstance(value, RasterRef):
            # A staged Raster payload must be swapped for its RasterRef
            # by the commit path before any encode runs; reaching here
            # means a write path skipped RasterStore staging.
            raise TypeMismatchError(
                "raster payloads must be committed through a transaction; "
                f"cannot encode {type(value).__name__} directly"
            )
        return value.describe()

    def decode(self, raw: Any) -> Any:
        from .raster import RasterRef

        return RasterRef.from_description(raw) if raw is not None else None


class GeometryType(AttributeType):
    """A georeferenced attribute; optionally restricted to one geometry kind.

    ``GeometryType()`` accepts any geometry, ``GeometryType("point")`` only
    points — poles are points, ducts are lines, districts are polygons.
    """

    tag = "geometry"

    def __init__(self, subtype: str | None = None):
        if subtype is not None and subtype not in GEOMETRY_TYPES:
            raise SchemaError(
                f"unknown geometry subtype {subtype!r}; "
                f"known: {sorted(GEOMETRY_TYPES)}"
            )
        self.subtype = subtype

    def validate(self, value: Any, attr_name: str = "?") -> None:
        if not isinstance(value, Geometry):
            raise TypeMismatchError(
                f"attribute {attr_name!r} expects geometry, got {type(value).__name__}"
            )
        if self.subtype is not None and value.geom_type != self.subtype:
            raise TypeMismatchError(
                f"attribute {attr_name!r} expects {self.subtype}, got {value.geom_type}"
            )

    def default(self) -> None:
        return None  # geometry attributes have no neutral value; stay unset

    def encode(self, value: Geometry) -> dict[str, Any]:
        from . import geo_codec  # local import: codec depends on types

        return geo_codec.encode_geometry(value)

    def decode(self, raw: Any) -> Geometry:
        from . import geo_codec

        return geo_codec.decode_geometry(raw)

    def spec(self) -> str:
        return f"geometry({self.subtype})" if self.subtype else "geometry"

    def describe(self) -> dict[str, Any]:
        return {"tag": self.tag, "subtype": self.subtype}


class ReferenceType(AttributeType):
    """A reference to an instance of another class (``pole_supplier: Supplier``).

    Values are object ids (strings) at run time; referential integrity is
    enforced by the database layer, not the type.
    """

    tag = "reference"

    def __init__(self, class_name: str):
        if not class_name or not isinstance(class_name, str):
            raise SchemaError("reference type needs a target class name")
        self.class_name = class_name

    def validate(self, value: Any, attr_name: str = "?") -> None:
        if not isinstance(value, str) or not value:
            raise TypeMismatchError(
                f"attribute {attr_name!r} expects an object id referencing "
                f"{self.class_name}, got {value!r}"
            )

    def default(self) -> None:
        return None

    def spec(self) -> str:
        return self.class_name

    def describe(self) -> dict[str, Any]:
        return {"tag": self.tag, "class_name": self.class_name}


class TupleType(AttributeType):
    """A named-field record type (``pole_composition: tuple(...)``)."""

    tag = "tuple"

    def __init__(self, fields: dict[str, AttributeType]):
        if not fields:
            raise SchemaError("tuple type needs at least one field")
        for name, ftype in fields.items():
            if not isinstance(ftype, AttributeType):
                raise SchemaError(f"tuple field {name!r} has a non-type {ftype!r}")
            if isinstance(ftype, TupleType):
                raise SchemaError("tuple types cannot nest (matches the paper's model)")
        self.fields = dict(fields)

    def validate(self, value: Any, attr_name: str = "?") -> None:
        if not isinstance(value, dict):
            raise TypeMismatchError(
                f"attribute {attr_name!r} expects a tuple value (dict), got {value!r}"
            )
        unknown = set(value) - set(self.fields)
        if unknown:
            raise TypeMismatchError(
                f"attribute {attr_name!r} has unknown tuple fields {sorted(unknown)}"
            )
        for fname, ftype in self.fields.items():
            if fname not in value:
                raise TypeMismatchError(
                    f"attribute {attr_name!r} is missing tuple field {fname!r}"
                )
            ftype.validate(value[fname], f"{attr_name}.{fname}")

    def default(self) -> dict[str, Any]:
        return {name: ftype.default() for name, ftype in self.fields.items()}

    def encode(self, value: dict[str, Any]) -> dict[str, Any]:
        return {name: self.fields[name].encode(val) for name, val in value.items()}

    def decode(self, raw: Any) -> dict[str, Any]:
        return {name: self.fields[name].decode(val) for name, val in raw.items()}

    def spec(self) -> str:
        inner = "; ".join(f"{n}: {t.spec()}" for n, t in self.fields.items())
        return f"tuple({inner})"

    def describe(self) -> dict[str, Any]:
        return {
            "tag": self.tag,
            "fields": {n: t.describe() for n, t in self.fields.items()},
        }


class ListType(AttributeType):
    """A homogeneous ordered collection (e.g. duct cable ids)."""

    tag = "list"

    def __init__(self, element: AttributeType):
        if not isinstance(element, AttributeType):
            raise SchemaError("list type needs an element type")
        self.element = element

    def validate(self, value: Any, attr_name: str = "?") -> None:
        if not isinstance(value, list):
            raise TypeMismatchError(
                f"attribute {attr_name!r} expects a list, got {value!r}"
            )
        for i, item in enumerate(value):
            self.element.validate(item, f"{attr_name}[{i}]")

    def default(self) -> list:
        return []

    def encode(self, value: list) -> list:
        return [self.element.encode(v) for v in value]

    def decode(self, raw: Any) -> list:
        return [self.element.decode(v) for v in raw]

    def spec(self) -> str:
        return f"list({self.element.spec()})"

    def describe(self) -> dict[str, Any]:
        return {"tag": self.tag, "element": self.element.describe()}


#: Singleton instances for the scalar types (types are stateless).
INTEGER = IntegerType()
FLOAT = FloatType()
TEXT = TextType()
BOOLEAN = BooleanType()
BITMAP = BitmapType()
RASTER = RasterType()

_SCALARS: dict[str, AttributeType] = {
    "integer": INTEGER,
    "float": FLOAT,
    "text": TEXT,
    "boolean": BOOLEAN,
    "bitmap": BITMAP,
}


def type_from_description(desc: dict[str, Any]) -> AttributeType:
    """Rebuild an :class:`AttributeType` from :meth:`AttributeType.describe`."""
    tag = desc.get("tag")
    if tag in _SCALARS:
        return _SCALARS[tag]
    if tag == "raster":
        return RASTER
    if tag == "geometry":
        return GeometryType(desc.get("subtype"))
    if tag == "reference":
        return ReferenceType(desc["class_name"])
    if tag == "tuple":
        return TupleType(
            {n: type_from_description(f) for n, f in desc["fields"].items()}
        )
    if tag == "list":
        return ListType(type_from_description(desc["element"]))
    raise SchemaError(f"unknown type description {desc!r}")


def scalar(tag: str) -> AttributeType:
    """Look up a scalar type by tag (used by the customization language)."""
    if tag not in _SCALARS:
        raise SchemaError(f"unknown scalar type {tag!r}; known: {sorted(_SCALARS)}")
    return _SCALARS[tag]
