"""``python -m repro`` starts the interactive browser (see repro.cli)."""

import sys

from .cli import main

sys.exit(main())
