"""Metric instruments and the registry that owns them.

The observability layer (see ``docs/OBSERVABILITY.md``) gives the
reproduction the measurement substrate its north star needs: the paper's
argument is that customization happens *inside* the DBMS event pipeline,
so the pipeline must be observable to be tuned. Three instrument kinds,
modelled on the Prometheus data model but dependency-free:

* :class:`Counter` — a monotonically increasing count (events published,
  rules fired, buffer hits);
* :class:`Gauge` — a value that goes up and down (resident buffer
  frames, open windows);
* :class:`Histogram` — observations bucketed into **fixed** upper-bound
  buckets plus a ``+Inf`` overflow bucket, with running sum and count
  (latencies, candidate-set sizes).

Instruments are identified by ``(name, labels)``: asking the registry for
the same name with the same labels returns the same instrument, so call
sites never hold module-level instrument globals. Labels are plain
keyword arguments with string-convertible values.

The registry snapshots to a JSON-safe dict (:meth:`MetricsRegistry.export`)
that round-trips through :meth:`MetricsRegistry.from_export`, and renders
a human-readable table (:meth:`MetricsRegistry.render_table`) for the CLI
``stats`` command and the benchmark reports.
"""

from __future__ import annotations

from typing import Any, Iterator

#: Default histogram upper bounds, in seconds — tuned for the latencies of
#: this codebase (sub-millisecond bus publishes up to multi-second scans).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)

#: Power-of-4 bounds for size-type observations (candidate sets, rows).
COUNT_BUCKETS: tuple[float, ...] = (1, 4, 16, 64, 256, 1024, 4096, 16384)

#: Finer sub-microsecond bounds for very short code paths (predicate
#: compilation, cache probes) that DEFAULT_BUCKETS would lump into its
#: first bucket.
MICRO_BUCKETS: tuple[float, ...] = (
    0.000001, 0.0000025, 0.000005, 0.00001, 0.000025, 0.00005,
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    """Canonical, hashable identity of a label set."""
    if not labels:
        return ()
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _format_labels(key: LabelKey) -> str:
    if not key:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in key) + "}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (inc({amount}))"
            )
        self.value += amount


class Gauge:
    """A value that can move in both directions."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount


class Histogram:
    """Observations over fixed cumulative-style buckets.

    ``bucket_counts[i]`` counts observations ``<= uppers[i]`` that were
    not captured by an earlier bucket (i.e. per-bucket, not cumulative);
    the final slot counts the ``+Inf`` overflow. ``sum``/``count`` track
    the running total for mean computation.
    """

    __slots__ = ("name", "labels", "uppers", "bucket_counts", "sum", "count")

    def __init__(self, name: str, labels: LabelKey = (),
                 buckets: tuple[float, ...] = DEFAULT_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be a sorted, non-empty "
                             "sequence of upper bounds")
        self.name = name
        self.labels = labels
        self.uppers = tuple(float(b) for b in buckets)
        self.bucket_counts = [0] * (len(self.uppers) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, upper in enumerate(self.uppers):
            if value <= upper:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the bucket holding it."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        if not self.count:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, n in enumerate(self.bucket_counts):
            seen += n
            if seen >= rank and n:
                return (self.uppers[i] if i < len(self.uppers)
                        else float("inf"))
        return float("inf")


class MetricsRegistry:
    """Owns every instrument; the single source of truth for metrics."""

    def __init__(self) -> None:
        self._counters: dict[tuple[str, LabelKey], Counter] = {}
        self._gauges: dict[tuple[str, LabelKey], Gauge] = {}
        self._histograms: dict[tuple[str, LabelKey], Histogram] = {}
        #: name -> bucket bounds, enforced across a histogram family
        self._hist_buckets: dict[str, tuple[float, ...]] = {}

    # -- instrument access ---------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _label_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(name, key[1])
        return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _label_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(name, key[1])
        return instrument

    def histogram(self, name: str, buckets: tuple[float, ...] | None = None,
                  **labels: Any) -> Histogram:
        bounds = tuple(buckets) if buckets else None
        known = self._hist_buckets.get(name)
        if known is not None and bounds is not None and bounds != known:
            raise ValueError(
                f"histogram family {name!r} already uses buckets {known}; "
                f"cannot re-declare with {bounds}"
            )
        effective = known or bounds or DEFAULT_BUCKETS
        key = (name, _label_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(
                name, key[1], effective
            )
            self._hist_buckets[name] = effective
        return instrument

    # -- convenience write paths (what the Recorder calls) --------------------

    def inc(self, name: str, amount: float = 1, **labels: Any) -> None:
        self.counter(name, **labels).inc(amount)

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        self.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        self.histogram(name, **labels).observe(value)

    # -- reads ---------------------------------------------------------------

    def counter_value(self, name: str, **labels: Any) -> float:
        instrument = self._counters.get((name, _label_key(labels)))
        return instrument.value if instrument else 0.0

    def counter_total(self, name: str) -> float:
        """Sum of one counter family across every label set."""
        return sum(c.value for (n, __), c in self._counters.items()
                   if n == name)

    def gauge_value(self, name: str, **labels: Any) -> float:
        instrument = self._gauges.get((name, _label_key(labels)))
        return instrument.value if instrument else 0.0

    def counters(self) -> Iterator[Counter]:
        return iter(self._counters.values())

    def gauges(self) -> Iterator[Gauge]:
        return iter(self._gauges.values())

    def histograms(self) -> Iterator[Histogram]:
        return iter(self._histograms.values())

    def __len__(self) -> int:
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms))

    # -- lifecycle -----------------------------------------------------------

    def reset(self) -> None:
        """Drop every instrument (tests isolate themselves with this)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._hist_buckets.clear()

    # -- export / import -----------------------------------------------------

    def export(self) -> dict[str, Any]:
        """JSON-safe snapshot of every instrument."""
        return {
            "counters": [
                {"name": c.name, "labels": dict(c.labels), "value": c.value}
                for c in sorted(self._counters.values(),
                                key=lambda c: (c.name, c.labels))
            ],
            "gauges": [
                {"name": g.name, "labels": dict(g.labels), "value": g.value}
                for g in sorted(self._gauges.values(),
                                key=lambda g: (g.name, g.labels))
            ],
            "histograms": [
                {
                    "name": h.name,
                    "labels": dict(h.labels),
                    "buckets": list(h.uppers),
                    "counts": list(h.bucket_counts),
                    "sum": h.sum,
                    "count": h.count,
                }
                for h in sorted(self._histograms.values(),
                                key=lambda h: (h.name, h.labels))
            ],
        }

    @classmethod
    def from_export(cls, data: dict[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`export` output."""
        registry = cls()
        for item in data.get("counters", ()):
            registry.counter(item["name"], **item["labels"]).inc(item["value"])
        for item in data.get("gauges", ()):
            registry.gauge(item["name"], **item["labels"]).set(item["value"])
        for item in data.get("histograms", ()):
            hist = registry.histogram(
                item["name"], buckets=tuple(item["buckets"]), **item["labels"]
            )
            hist.bucket_counts = list(item["counts"])
            hist.sum = item["sum"]
            hist.count = item["count"]
        return registry

    # -- presentation ----------------------------------------------------------

    def render_table(self) -> str:
        """Human-readable dump, one instrument per line, grouped by kind."""
        lines: list[str] = []
        counters = sorted(self._counters.values(),
                          key=lambda c: (c.name, c.labels))
        gauges = sorted(self._gauges.values(),
                        key=lambda g: (g.name, g.labels))
        histograms = sorted(self._histograms.values(),
                            key=lambda h: (h.name, h.labels))
        if counters:
            lines.append("counters:")
            for c in counters:
                value = int(c.value) if c.value == int(c.value) else c.value
                lines.append(
                    f"  {c.name}{_format_labels(c.labels)} = {value}"
                )
        if gauges:
            lines.append("gauges:")
            for g in gauges:
                lines.append(
                    f"  {g.name}{_format_labels(g.labels)} = {g.value:g}"
                )
        if histograms:
            lines.append("histograms:")
            for h in histograms:
                lines.append(
                    f"  {h.name}{_format_labels(h.labels)}: "
                    f"count={h.count} mean={h.mean:.6g} "
                    f"p50={h.quantile(0.5):.6g} p95={h.quantile(0.95):.6g}"
                )
        if not lines:
            return "(no metrics recorded)"
        return "\n".join(lines)
