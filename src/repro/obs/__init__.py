"""Zero-dependency observability: metrics registry + pipeline tracing.

This package is the measurement substrate for the whole reproduction
(see ``docs/OBSERVABILITY.md`` for the metric and span name catalog).
It is **off by default**: the module-level :data:`RECORDER` starts as a
:class:`~repro.obs.recorder.NullRecorder` whose methods do nothing, so
the instrumentation threaded through the event pipeline and the geodb
layers costs approximately nothing until someone opts in::

    from repro import obs

    recorder = obs.enable()
    ... run a session ...
    print(recorder.registry.render_table())
    print(recorder.tracer.last_trace().render())
    obs.disable()

Instrumented modules must access the recorder as ``obs.RECORDER``
(attribute lookup on the module) — never ``from repro.obs import
RECORDER`` — so that :func:`enable`/:func:`disable` swaps take effect
everywhere immediately.
"""

from __future__ import annotations

from .metrics import (
    COUNT_BUCKETS,
    DEFAULT_BUCKETS,
    MICRO_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .recorder import NOOP_SPAN, NullRecorder, Recorder
from .tracing import Span, Tracer

__all__ = [
    "COUNT_BUCKETS",
    "DEFAULT_BUCKETS",
    "MICRO_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "NullRecorder",
    "Recorder",
    "Span",
    "Tracer",
    "RECORDER",
    "enable",
    "disable",
    "is_enabled",
    "reset",
]

_NULL = NullRecorder()

#: The process-wide recorder every instrumented call site goes through.
RECORDER: NullRecorder | Recorder = _NULL


def enable(registry: MetricsRegistry | None = None,
           tracer: Tracer | None = None,
           trace_capacity: int = 64) -> Recorder:
    """Install (or return) the live recorder.

    Idempotent: enabling while already enabled returns the existing
    recorder unchanged, unless an explicit ``registry``/``tracer`` is
    passed, in which case a fresh recorder replaces it.
    """
    global RECORDER
    if isinstance(RECORDER, Recorder) and registry is None and tracer is None:
        return RECORDER
    RECORDER = Recorder(
        registry=registry,
        tracer=tracer if tracer is not None else Tracer(capacity=trace_capacity),
    )
    return RECORDER


def disable() -> None:
    """Swap the no-op recorder back in; recorded data is discarded."""
    global RECORDER
    RECORDER = _NULL


def is_enabled() -> bool:
    return RECORDER.enabled


def reset() -> None:
    """Clear metrics and traces without toggling enablement."""
    if isinstance(RECORDER, Recorder):
        RECORDER.reset()
