"""Nested spans over the event pipeline, with a ring buffer of traces.

A *span* covers one unit of work (``dispatch.open_class``,
``event_bus.publish``, ``builder.build`` …). Spans opened while another
span is active become its children, so one user interaction produces a
tree mirroring the paper's Figure-1 pipeline::

    dispatch.open_class
      event_bus.publish
        rule_manager.select
        rule_manager.execute
      builder.build

The :class:`Tracer` keeps a fixed-size ring buffer of *completed root
spans* (traces). When the buffer is full the oldest trace is evicted —
observability must never grow without bound under the heavy-traffic
north star. The tracer is deliberately single-threaded (one tracer per
recorder, matching the synchronous event bus); a multi-session embedding
enables one recorder per process and accepts interleaved traces, or runs
with observability disabled.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Callable, Iterator


class Span:
    """One timed unit of work; also its own context manager.

    ``duration`` is in seconds (``time.perf_counter`` domain by default).
    A span that exits through an exception records ``error`` and lets the
    exception propagate.
    """

    __slots__ = ("name", "attrs", "start", "end", "children", "error",
                 "_tracer")

    def __init__(self, name: str, attrs: dict[str, Any],
                 tracer: "Tracer | None" = None):
        self.name = name
        self.attrs = attrs
        self.start: float = 0.0
        self.end: float | None = None
        self.children: list[Span] = []
        self.error: str | None = None
        self._tracer = tracer

    # -- context manager -----------------------------------------------------

    def __enter__(self) -> "Span":
        if self._tracer is not None:
            self._tracer._open(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is not None:
            self.error = repr(exc)
        if self._tracer is not None:
            self._tracer._close(self)
        return False

    # -- recording -----------------------------------------------------------

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes discovered mid-span (plan chosen, row count…)."""
        self.attrs.update(attrs)

    # -- reads ---------------------------------------------------------------

    @property
    def duration(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First descendant (or self) with the given span name."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> list["Span"]:
        return [s for s in self.walk() if s.name == name]

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation of the whole subtree."""
        return {
            "name": self.name,
            "attrs": {k: str(v) for k, v in self.attrs.items()},
            "duration": self.duration,
            "error": self.error,
            "children": [c.to_dict() for c in self.children],
        }

    def render(self, indent: int = 0) -> str:
        """ASCII tree of the subtree with durations, for the CLI."""
        attrs = " ".join(f"{k}={v}" for k, v in self.attrs.items())
        line = "  " * indent + f"{self.name}"
        if attrs:
            line += f" [{attrs}]"
        line += f"  {self.duration * 1000:.3f}ms"
        if self.error:
            line += f"  ERROR: {self.error}"
        lines = [line]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, children={len(self.children)}, "
                f"duration={self.duration:.6f})")


class Tracer:
    """Builds span trees and retains the most recent completed traces."""

    def __init__(self, capacity: int = 64,
                 clock: Callable[[], float] = time.perf_counter):
        if capacity < 1:
            raise ValueError("tracer ring buffer needs capacity >= 1")
        self.capacity = capacity
        self.clock = clock
        self._stack: list[Span] = []
        self._traces: deque[Span] = deque(maxlen=capacity)
        #: completed root spans evicted from the ring buffer
        self.dropped = 0
        #: total completed root spans ever recorded
        self.completed = 0

    # -- span creation -------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Span:
        """A new span; nest it with ``with tracer.span(...):``."""
        return Span(name, attrs, tracer=self)

    def _open(self, span: Span) -> None:
        span.start = self.clock()
        if self._stack:
            self._stack[-1].children.append(span)
        self._stack.append(span)

    def _close(self, span: Span) -> None:
        span.end = self.clock()
        # Pop back to (and including) this span; tolerates a caller that
        # leaked an inner span by never exiting it.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        if not self._stack:
            self.completed += 1
            if len(self._traces) == self.capacity:
                self.dropped += 1
            self._traces.append(span)

    # -- reads ---------------------------------------------------------------

    @property
    def active_span(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    def last_trace(self, prefix: str | None = None) -> Span | None:
        """The most recent trace; with ``prefix``, the most recent one
        whose root span name starts with it (e.g. ``"dispatch."``)."""
        if prefix is None:
            return self._traces[-1] if self._traces else None
        for span in reversed(self._traces):
            if span.name.startswith(prefix):
                return span
        return None

    def traces(self) -> list[Span]:
        """Retained traces, oldest first."""
        return list(self._traces)

    def reset(self) -> None:
        self._stack.clear()
        self._traces.clear()
        self.dropped = 0
        self.completed = 0
