"""The recorder facade instrumented code talks to.

Hot paths never import the registry or tracer directly; they go through
the module-level recorder in :mod:`repro.obs`::

    from .. import obs
    ...
    rec = obs.RECORDER
    if rec.enabled:
        rec.inc("buffer.hits")

Two implementations share the interface:

* :class:`NullRecorder` — the default. Every method is a no-op and
  ``span`` returns a shared, reusable no-op context manager, so
  instrumentation left in a hot path costs one attribute lookup and
  (optionally) one empty call when observability is off. The hottest
  call sites additionally guard on ``rec.enabled`` to skip even the
  argument construction.
* :class:`Recorder` — the live implementation, delegating to a
  :class:`~repro.obs.metrics.MetricsRegistry` and a
  :class:`~repro.obs.tracing.Tracer`.
"""

from __future__ import annotations

import time
from typing import Any

from .metrics import MetricsRegistry
from .tracing import Span, Tracer


class _NoOpSpan:
    """Shared do-nothing stand-in for :class:`~repro.obs.tracing.Span`."""

    __slots__ = ()

    def __enter__(self) -> "_NoOpSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def annotate(self, **attrs: Any) -> None:
        pass


NOOP_SPAN = _NoOpSpan()


class NullRecorder:
    """Disabled-mode recorder: records nothing, costs ~nothing."""

    __slots__ = ()

    enabled = False

    def inc(self, name: str, amount: float = 1, **labels: Any) -> None:
        pass

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        pass

    def observe(self, name: str, value: float, **labels: Any) -> None:
        pass

    def span(self, name: str, **attrs: Any) -> _NoOpSpan:
        return NOOP_SPAN

    def timed(self, name: str, **labels: Any) -> _NoOpSpan:
        return NOOP_SPAN


class _TimedObservation:
    """Context manager feeding a duration into one histogram."""

    __slots__ = ("_registry", "_name", "_labels", "_start")

    def __init__(self, registry: MetricsRegistry, name: str,
                 labels: dict[str, Any]):
        self._registry = registry
        self._name = name
        self._labels = labels

    def __enter__(self) -> "_TimedObservation":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._registry.observe(
            self._name, time.perf_counter() - self._start, **self._labels
        )
        return False

    def annotate(self, **attrs: Any) -> None:
        pass  # interface parity with Span


class Recorder:
    """Enabled-mode recorder over one registry and one tracer."""

    __slots__ = ("registry", "tracer")

    enabled = True

    def __init__(self, registry: MetricsRegistry | None = None,
                 tracer: Tracer | None = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()

    def inc(self, name: str, amount: float = 1, **labels: Any) -> None:
        self.registry.inc(name, amount, **labels)

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        self.registry.set_gauge(name, value, **labels)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        self.registry.observe(name, value, **labels)

    def span(self, name: str, **attrs: Any) -> Span:
        return self.tracer.span(name, **attrs)

    def timed(self, name: str, **labels: Any) -> _TimedObservation:
        """Time a block into the ``name`` histogram (no span recorded)."""
        return _TimedObservation(self.registry, name, labels)

    def reset(self) -> None:
        self.registry.reset()
        self.tracer.reset()
