#!/usr/bin/env python3
"""Pole-manager application: multi-context customization + integrity rules.

Extends the paper's §4 urban-planning scenario into a realistic deployment:

* three user contexts share one database — a generic browser, a
  *field_engineer* category, and the specific user ``juliano`` — each
  with its own customization directive, demonstrating the §3.3 priority
  policy (user > category > generic);
* the active mechanism simultaneously runs topological integrity rules
  (the paper's [11] companion prototype): poles must stand near a street
  and inside the service district;
* updates committed by a maintenance transaction refresh open windows
  (the Diaz et al. [3] behavior, our extension of the §5 limitation).

Usage: ``python examples/pole_manager.py``
"""

from repro.active import ConstraintGuard, ProximityConstraint, RelationConstraint
from repro.core import GISSession
from repro.errors import ConstraintViolationError
from repro.spatial import Point
from repro.workloads import build_phone_net_database

CATEGORY_PROGRAM = """
-- category-wide customization: field engineers see generalized maps
for category field_engineer application pole_manager
schema phone_net display as hierarchy
class Pole display
    presentation as lineFormat
    instances
        display attribute pole_picture as Null
        display attribute pole_historic as Null
"""

USER_PROGRAM = """
-- user-specific customization: overrides the category rule for juliano
for user juliano application pole_manager
schema phone_net display as Null
class Pole display
    control as poleWidget
    presentation as pointFormat
    instances
        display attribute pole_composition as composed_text
            from pole.material pole.diameter pole.height
            using composed_text.notify()
        display attribute pole_supplier as text
            from get_supplier_name(pole_supplier)
        display attribute pole_location as Null
"""


def main() -> None:
    db = build_phone_net_database()
    pole_oid = db.extent("phone_net", "Pole").oids()[0]

    # -- integrity rules (paper [11]): same active mechanism ------------------
    guard = ConstraintGuard(db, "phone_net")
    guard.add(ProximityConstraint("Pole", "pole_location",
                                  "Street", "axis", max_distance=15.0))
    guard.add(RelationConstraint("Pole", "pole_location", "within",
                                 "District", "boundary", quantifier="some"))
    print(f"installed {len(guard.constraints())} topological constraints")
    print(f"bulk-load audit: {len(guard.sweep())} pre-existing violations")

    # A bad insert is vetoed by the active rules before it commits:
    try:
        db.insert("phone_net", "Pole", {
            "pole_location": Point(10_000.0, 10_000.0),  # outside district
            "pole_type": 1,
        })
    except ConstraintViolationError as exc:
        print(f"update vetoed by active rule: {exc}")
    print()

    # -- three contexts, three presentations ----------------------------------
    sessions = {
        "generic browser (ana)": GISSession(
            db, user="ana", application="pole_manager", auto_refresh=True),
        "field engineer (carlos)": GISSession(
            db, user="carlos", category="field_engineer",
            application="pole_manager", auto_refresh=True),
        "pole manager (juliano)": GISSession(
            db, user="juliano", category="field_engineer",
            application="pole_manager", auto_refresh=True),
    }
    # All sessions share the database, hence the same rule base. Install
    # the two directives once, through any session's engine.
    reference = sessions["pole manager (juliano)"]
    reference.install_program(CATEGORY_PROGRAM, persist=False)
    reference.install_program(USER_PROGRAM, persist=False)

    for label, session in sessions.items():
        # Sessions share one bus: give each its own engine view? No — the
        # engine is shared via the bus; each session built its own engine,
        # so register on every engine for a fair demo.
        if session is not reference:
            session.install_program(CATEGORY_PROGRAM, persist=False)
            session.install_program(USER_PROGRAM, persist=False)

    for label, session in sessions.items():
        print("=" * 72)
        print(f"{label}: context {session.context.describe()}")
        print("=" * 72)
        session.connect("phone_net")
        if "classset_Pole" not in session.screen.names():
            session.select_class("Pole")
        window = session.screen.window("classset_Pole")
        print(f"presentation format: "
              f"{window.get_property('presentation_format')}")
        session.select_instance(pole_oid)
        print(session.render(f"instance_{pole_oid}"))
        print()

    # -- live refresh on committed updates ------------------------------------
    juliano = sessions["pole manager (juliano)"]
    before = juliano.screen.window(f"instance_{pole_oid}")
    material_before = db.get_object(pole_oid).get("pole_composition")
    print("maintenance crew replaces the pole with a concrete one ...")
    composition = dict(material_before)
    composition["pole_material"] = "concrete"
    db.update(pole_oid, {"pole_composition": composition})
    after = juliano.screen.window(f"instance_{pole_oid}")
    print("window object replaced by refresh:", before is not after)
    print(juliano.render(f"instance_{pole_oid}"))


if __name__ == "__main__":
    main()
