#!/usr/bin/env python3
"""Environmental atlas: scale-aware customization over a land-use database.

The paper notes contexts "can conceivably be extended to other contextual
data (e.g., geographic scale, time framework)" (§3.3). This example uses
that extension: the same analyst gets different map presentations of
vegetation parcels depending on the working scale —

* at detailed scales (1:1000 – 1:25000) parcels draw as full polygons;
* at overview scales (1:25001 – 1:1000000) they generalize to centroids,
  and the verbose survey attributes are hidden.

It also exercises spatial analysis through the query engine: which
monitoring stations sit inside wetland parcels?

Usage: ``python examples/environmental_atlas.py``
"""

from repro.core import GISSession
from repro.geodb import Comparison, Query, QueryEngine, SpatialPredicate
from repro.workloads import build_environment_database

SCALE_PROGRAM = """
-- detailed work: full polygons, all attributes
for application atlas scale 1000..25000
schema land_use display as default
class VegetationParcel display
    presentation as polygonFormat
    instances
        display attribute canopy_pct as slider

-- overview work: generalized display, hide survey detail
for application atlas scale 25001..1000000
schema land_use display as default
class VegetationParcel display
    presentation as pointFormat
    instances
        display attribute canopy_pct as Null
        display attribute survey_year as Null
"""


def main() -> None:
    db = build_environment_database(parcels=16, seed=7)
    parcel_oid = db.extent("land_use", "VegetationParcel").oids()[0]

    detailed = GISSession(db, user="rita", application="atlas",
                          scale_denominator=10_000)
    overview = GISSession(db, user="rita", application="atlas",
                          scale_denominator=250_000)
    for session in (detailed, overview):
        session.install_program(SCALE_PROGRAM, persist=False)

    for label, session in (("1:10000 (street scale)", detailed),
                           ("1:250000 (city scale)", overview)):
        print("=" * 72)
        print(f"working scale {label}")
        print("=" * 72)
        session.connect("land_use")
        session.select_class("VegetationParcel")
        window = session.screen.window("classset_VegetationParcel")
        print("presentation format:",
              window.get_property("presentation_format"))
        session.select_instance(parcel_oid, "VegetationParcel")
        print(session.render(f"instance_{parcel_oid}"))
        print()

    # -- spatial analysis through the query engine -----------------------------
    print("=" * 72)
    print("analysis mode: stations inside wetland parcels")
    print("=" * 72)
    engine = QueryEngine(db)
    wetlands = engine.execute("land_use", Query(
        "VegetationParcel",
        where=Comparison("cover_kind", "=", "wetland"),
    ))
    print(f"wetland parcels: {len(wetlands)}")
    total_hits = 0
    for parcel in wetlands.objects:
        geometry = parcel.geometry("parcel_area")
        stations = engine.execute("land_use", Query(
            "Station",
            where=SpatialPredicate("position", "within", geometry),
        ))
        for station in stations.objects:
            total_hits += 1
            print(f"  {station.get('station_code')} lies inside "
                  f"{parcel.oid} ({parcel.get('cover_kind')})")
        print(stations.explain())
    if total_hits == 0:
        print("  (none in this seed — try another)")


if __name__ == "__main__":
    main()
