#!/usr/bin/env python3
"""Network planning: the analysis and simulation interaction modes (§2.2).

The paper's exploratory mode is what the Schema/Class-set/Instance
windows serve; §2.2 also names the *analysis* mode ("evaluate conditions,
usually via query predicates") and the *simulation* mode ("users build
scenarios to test their hypotheses"). This example exercises both on the
telephone network:

1. analysis — textual spatial queries over the live database;
2. simulation — a what-if scenario that relocates poles and adds a new
   duct, evaluated hypothetically, then discarded;
3. a second scenario that passes review and is committed, with the
   topological integrity rules (paper [11]) guarding the commit.

Usage: ``python examples/network_planning.py``
"""

from repro.active import ConstraintGuard, ProximityConstraint, RelationConstraint
from repro.errors import ConstraintViolationError
from repro.geodb import run_query
from repro.spatial import LineString, Point
from repro.workloads import build_phone_net_database


def main() -> None:
    db = build_phone_net_database()
    guard = ConstraintGuard(db, "phone_net")
    guard.add(RelationConstraint("Pole", "pole_location", "within",
                                 "District", "boundary"))
    guard.add(ProximityConstraint("Pole", "pole_location",
                                  "Street", "axis", 15.0))

    # ------------------------------------------------------------------
    print("=" * 72)
    print("ANALYSIS MODE — query predicates over the network")
    print("=" * 72)
    queries = [
        ("wooden poles, newest first",
         "select pole_composition.pole_material, install_year from Pole "
         "where pole_composition.pole_material = 'wood' "
         "order by desc install_year limit 5"),
        ("poles needing maintenance near the depot (0,0)",
         "select * from Pole where status = 'maintenance' and "
         "distance(pole_location, point(0, 0)) <= 300"),
        ("every network element in the north-east block",
         "select * from NetworkElement including subclasses"),
    ]
    for label, text in queries:
        result = run_query(db, "phone_net", text)
        print(f"\n-- {label}")
        print(result.explain())
        for row in (result.rows or [])[:5]:
            print("   ", row)

    # ------------------------------------------------------------------
    print()
    print("=" * 72)
    print("SIMULATION MODE — hypothesis A: move poles off Rua 1 (rejected)")
    print("=" * 72)
    with db.scenario("phone_net") as what_if:
        victims = what_if.run_query(
            "select * from Pole where "
            "distance(pole_location, line(0 0, 0 360)) <= 5 limit 3")
        print(f"poles on the corridor: {victims.oids()}")
        for oid in victims.oids():
            what_if.update(oid, {"pole_location": Point(55.0, 55.0)})
        crowded = what_if.run_query(
            "select * from Pole where "
            "distance(pole_location, point(55, 55)) <= 2")
        print(f"hypothetical crowding at (55, 55): {len(crowded)} poles "
              f"-> plan rejected, discarding scenario")
        what_if.discard()
    print(f"database untouched: "
          f"{db.count('phone_net', 'Pole')} poles, as before")

    # ------------------------------------------------------------------
    print()
    print("=" * 72)
    print("SIMULATION MODE — hypothesis B: new duct + service poles "
          "(committed)")
    print("=" * 72)
    scenario = db.scenario("phone_net")
    scenario.insert("Duct", {
        "duct_path": LineString([(10.0, 100.0), (200.0, 100.0)]),
        "duct_depth": 1.1,
        "duct_material": "pvc",
        "status": "planned",
    })
    for x in (60.0, 120.0, 180.0):
        scenario.insert("Pole", {
            "pole_location": Point(x, 118.0),   # within 15 m of Travessa 2
            "pole_type": 2,
            "status": "planned",
        })
    planned = scenario.run_query(
        "select * from Pole where status = 'planned'")
    print(f"hypothetical new poles: {len(planned)}")
    try:
        applied = scenario.commit()
        print(f"review passed; committed {applied} operations "
              f"(integrity rules checked each one)")
    except ConstraintViolationError as exc:
        print(f"commit vetoed: {exc}")
    print(f"database now: {db.count('phone_net', 'Pole')} poles, "
          f"{db.count('phone_net', 'Duct')} ducts")
    committed = run_query(db, "phone_net",
                          "select * from Pole where status = 'planned'")
    print(f"committed planned poles visible to analysis queries: "
          f"{len(committed)}")


if __name__ == "__main__":
    main()
