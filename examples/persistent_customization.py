#!/usr/bin/env python3
"""Customizations that live inside the database and survive restarts.

§3.4: "Customization rules stored in the database are derived from
assertives written in this language." §3.2: widget definitions "can be
inserted, updated and removed dynamically."

This example demonstrates the persistence path end to end with a
file-backed page store:

1. open a database file, define the schema, load data;
2. register a new composite widget and compile + persist a customization
   program into the database catalog;
3. close everything, reopen the *file*, reload catalog state;
4. the reloaded session shows the customized interface without any code
   re-registration — the interface definition traveled with the data.

Usage: ``python examples/persistent_customization.py``
"""

import os
import tempfile

from repro.core import GISSession
from repro.geodb import FilePager, GeographicDatabase, MetadataCatalog
from repro.lang import FIGURE_6_PROGRAM
from repro.uilib import InterfaceObjectLibrary, WidgetTemplate, install_standard_composites
from repro.workloads import (
    build_phone_net_schema,
    populate_phone_net,
    register_pole_methods,
)

INSPECTION_PANEL = WidgetTemplate(
    name="inspection_panel",
    doc="field-inspection checklist panel (application-defined composite)",
    defaults={"title": "Inspection"},
    spec={
        "type": "panel",
        "name": "inspection",
        "props": {"label": "$title"},
        "children": [
            {"type": "text", "name": "inspector",
             "props": {"label": "Inspector", "editable": True}},
            {"type": "list", "name": "checklist",
             "props": {"label": "Checklist"}},
            {"type": "button", "name": "submit",
             "props": {"label": "Submit report"}},
        ],
    },
)


def first_run(path: str) -> str:
    """Create the database file with data + persisted customizations."""
    db = GeographicDatabase("GEO", pager=FilePager(path))
    db.register_schema(build_phone_net_schema())
    register_pole_methods(db)
    populate_phone_net(db)
    catalog = MetadataCatalog(db)
    catalog.save_all_schemas()

    library = InterfaceObjectLibrary(catalog)
    install_standard_composites(library, persist=True)
    library.register_template(INSPECTION_PANEL, persist=True)

    session = GISSession(db, user="juliano", application="pole_manager",
                         library=library, catalog=catalog)
    directives = session.install_program(FIGURE_6_PROGRAM)  # persists
    print(f"first run: stored {len(directives)} directive(s), "
          f"{len(catalog.names('widget'))} widget documents, "
          f"{len(catalog.names('schema'))} schema document(s)")
    pole_oid = db.extent("phone_net", "Pole").oids()[0]
    db.checkpoint()
    db.pager.close()
    return pole_oid


def second_run(path: str, pole_oid: str) -> None:
    """Reopen the file; everything needed comes back from the catalog."""
    db = GeographicDatabase("GEO", pager=FilePager(path))
    catalog = MetadataCatalog(db)

    # Rebuild schema + extents from storage.
    db.register_schema(catalog.load_schema("phone_net"))
    restored = db.load_from_storage()
    register_pole_methods(db)

    library = InterfaceObjectLibrary(catalog)
    widgets_loaded = library.load_from_catalog()
    install_standard_composites(library, persist=False)

    session = GISSession(db, user="juliano", application="pole_manager",
                         library=library, catalog=catalog)
    directives_loaded = session.engine.load_from_catalog()
    print(f"second run: restored {restored} objects, "
          f"{widgets_loaded} widget definitions, "
          f"{directives_loaded} directive(s) from the database file")

    session.connect("phone_net")
    print("schema window visible:",
          session.screen.window("schema_phone_net").visible,
          "(hidden by the reloaded customization)")
    session.select_instance(pole_oid)
    print(session.render(f"instance_{pole_oid}"))
    inspection = library.create("inspection_panel")
    print("application composite also reloaded:")
    print(session.renderer.render(inspection))
    db.pager.close()


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "geo.db")
        pole_oid = first_run(path)
        print(f"database file size: {os.path.getsize(path)} bytes")
        print()
        second_run(path, pole_oid)


if __name__ == "__main__":
    main()
