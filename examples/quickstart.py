#!/usr/bin/env python3
"""Quickstart: browse a geographic database, then customize the interface.

Runs the paper's §4 walkthrough twice:

1. as a *generic* user — the default Schema / Class-set / Instance windows
   of paper Figure 4;
2. as ``<user juliano, application pole_manager>`` with the paper's
   Figure 6 customization program installed — the customized windows of
   paper Figure 7 (hidden schema, poleWidget slider, pointFormat map,
   composed pole_composition, dereferenced supplier, hidden location).

Usage: ``python examples/quickstart.py``
"""

from repro.core import GISSession
from repro.lang import FIGURE_6_PROGRAM, render_rules
from repro.workloads import build_phone_net_database


def main() -> None:
    db = build_phone_net_database()
    pole_oid = db.extent("phone_net", "Pole").oids()[0]

    print("=" * 72)
    print("PART 1 — generic interface (paper Figure 4)")
    print("=" * 72)
    generic = GISSession(db, user="maria", application="network_browser")
    generic.connect("phone_net")
    generic.select_class("Pole")
    generic.select_instance(pole_oid)
    print(generic.render("schema_phone_net"))
    print()
    print(generic.render("classset_Pole"))
    print()
    print(generic.render(f"instance_{pole_oid}"))

    print()
    print("=" * 72)
    print("PART 2 — customized interface (paper Figures 6 and 7)")
    print("=" * 72)
    custom = GISSession(db, user="juliano", application="pole_manager")
    directives = custom.install_program(FIGURE_6_PROGRAM, persist=False)
    print("The directive compiled to these active rules:")
    for directive in directives:
        for rule in render_rules(directive):
            print(rule)
    print()

    custom.connect("phone_net")   # rule R1 hides the schema, opens Pole
    print("open windows:", custom.screen.names())
    print("schema window visible:",
          custom.screen.window("schema_phone_net").visible)
    print()
    print(custom.render("classset_Pole"))
    print()
    custom.select_instance(pole_oid)
    print(custom.render(f"instance_{pole_oid}"))
    print()
    print("Why does the instance window look like this? (explanation mode)")
    print(custom.explain_window(f"instance_{pole_oid}"))


if __name__ == "__main__":
    main()
