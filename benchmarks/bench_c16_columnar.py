"""Experiment C16 — vectorized columnar scans and STR-packed index builds.

The PR added a columnar execution path to the query engine: per-class
column caches stamped with the class commit version
(:mod:`repro.geodb.columns`), fused predicate kernels
(:meth:`~repro.geodb.query.Predicate.compile_columns`) that select row
positions without materializing objects, columnar ordering /
aggregation / projection, and STR bulk loading
(:meth:`~repro.spatial.rtree.RTree.bulk_load`) wherever R-trees rebuild
wholesale. This experiment prices the new path against the engine's own
row path (``use_columns=False`` — the exact pre-PR execution) on a
phone-net database sized so scans dominate:

* **cold mix** — a scan-heavy filter/aggregate mix (selective filters,
  conjunctions, a dotted-path refine, aggregates, order+limit, a
  subclass-closure aggregate), column caches warm, result cache
  absent. Gate: >= 3x faster than the row path, byte-identical
  answers.
* **build amortization** — the first columnar scan after an
  invalidation pays the column build. Gate: first scan (build
  included) <= 2x one row scan, so the build amortizes within two
  scans.
* **STR bulk load** — packing an R-tree from the extent's entries
  versus the per-entry insert loop. Gate: bulk load is not slower.

Results land in ``BENCH_C16.json`` at the repo root. Quick mode
(``REPRO_BENCH_QUICK=1``, the CI smoke step) shrinks the database and
round counts; at smoke sizes per-query fixed overhead dilutes the
kernel advantage and timings are noise-bound, so quick mode relaxes
the mix gate to "no slower than the row path" and skips the
amortization and bulk-load gates. Byte-identity holds in both modes.
"""

import json
import os
import time
from pathlib import Path
from typing import Any

from repro.geodb import QueryEngine, parse_query
from repro.spatial import RTree
from repro.workloads import PhoneNetParams, build_phone_net_database

from _support import capture_metrics, print_header, print_metrics, print_table

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
PARAMS = (PhoneNetParams(blocks_x=4, blocks_y=4, poles_per_street=12,
                         duct_count=10, seed=7)
          if QUICK else
          PhoneNetParams(blocks_x=16, blocks_y=16, poles_per_street=110,
                         duct_count=80, seed=7))
ROUNDS = 3 if QUICK else 7

SCHEMA = "phone_net"

#: The cold mix: scan-heavy shapes, one per columnar execution surface.
MIX = [
    ("selective equality",
     "select * from Pole where status = 'leaning'"),
    ("range + equality conjunction",
     "select * from Pole where install_year >= 1990 and pole_type = 2"),
    ("dotted-path refine",
     "select * from Pole where pole_composition.pole_material = 'wood' "
     "and install_year < 1960"),
    ("filtered aggregates",
     "select count(*), min(install_year), max(install_year), "
     "avg(install_year) from Pole where status = 'ok'"),
    ("subclass-closure aggregate",
     "select count(*), avg(install_year) from NetworkElement "
     "where install_year >= 1950 including subclasses"),
    ("order + limit (top-k)",
     "select * from Pole order by desc install_year limit 10"),
    ("selective ordered projection",
     "select oid, install_year from Pole where status = 'leaning' "
     "order by install_year"),
]

AMORTIZE = MIX[0][1]


def build_db():
    return build_phone_net_database(PARAMS)


def _best_of(rounds: int, fn) -> float:
    fn()  # warmup
    best = float("inf")
    for __ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def check_byte_identical(db) -> None:
    """Every mix query answers identically on both paths (oids, rows,
    candidate counts) — the speedup must not buy a different answer."""
    columns = QueryEngine(db)
    rows = QueryEngine(db, use_columns=False)
    for __, text in MIX:
        query = parse_query(text)
        a = columns.execute(SCHEMA, query)
        b = rows.execute(SCHEMA, query)
        assert (a.oids(), a.rows, a.report["candidates"]) == \
               (b.oids(), b.rows, b.report["candidates"]), \
               f"result drift on: {text}"
        for class_plan in a.report["plans"]:
            assert class_plan["columns"], f"mix query fell back: {text}"


def bench_cold_mix(db) -> dict[str, float]:
    """Seconds per full mix pass: column kernels vs the row path."""
    queries = [parse_query(text) for __, text in MIX]
    columns = QueryEngine(db)
    rows = QueryEngine(db, use_columns=False)

    def run_columns():
        for query in queries:
            columns.execute(SCHEMA, query)

    def run_rows():
        for query in queries:
            rows.execute(SCHEMA, query)

    return {"rows": _best_of(ROUNDS, run_rows),
            "columns": _best_of(ROUNDS, run_columns)}


def bench_amortization(db) -> dict[str, float]:
    """Cost of the first columnar scan after an invalidation.

    The first scan pays the extent snapshot + column build; it must
    stay within 2x of one row scan (the build amortizes by scan two,
    which runs on warm columns).
    """
    query = parse_query(AMORTIZE)
    columns = QueryEngine(db)
    rows = QueryEngine(db, use_columns=False)

    row_scan = _best_of(ROUNDS, lambda: rows.execute(SCHEMA, query))
    first = warm = float("inf")
    for __ in range(ROUNDS):
        db.column_cache.invalidate()
        start = time.perf_counter()
        columns.execute(SCHEMA, query)
        first = min(first, time.perf_counter() - start)
        start = time.perf_counter()
        columns.execute(SCHEMA, query)
        warm = min(warm, time.perf_counter() - start)
    return {"row_scan": row_scan, "first_scan": first, "warm_scan": warm}


def bench_bulk_load(db) -> dict[str, float]:
    """STR-packing an R-tree vs growing it with per-entry inserts."""
    entries = [(obj.geometry("pole_location").bbox(), obj.oid)
               for obj in db.extent(SCHEMA, "Pole")
               if obj.geometry("pole_location") is not None]

    def insert_loop():
        tree = RTree(max_entries=16)
        for box, oid in entries:
            tree.insert(box, oid)
        return tree

    def bulk():
        return RTree.bulk_load(entries, max_entries=16)

    probe = insert_loop().bbox()
    assert sorted(bulk().search(probe)) == sorted(insert_loop().search(probe))
    return {"entries": float(len(entries)),
            "insert_s": _best_of(ROUNDS, insert_loop),
            "bulk_s": _best_of(ROUNDS, bulk)}


def run_metrics_sample(db) -> None:
    """One instrumented pass, for the observability counter report."""
    with capture_metrics():
        engine = QueryEngine(db)
        for __, text in MIX:
            engine.execute(SCHEMA, parse_query(text))
            engine.execute(SCHEMA, parse_query(text))
        db.rebuild_spatial_index(SCHEMA, "Pole", "pole_location")
        print_metrics(["query.columns.", "rtree."])


def test_c16_columnar(capsys):
    db = build_db()
    pole_count = db.count(SCHEMA, "Pole")
    check_byte_identical(db)
    mix = bench_cold_mix(db)
    amortize = bench_amortization(db)
    bulk = bench_bulk_load(db)

    mix_speedup = mix["rows"] / mix["columns"]
    first_ratio = amortize["first_scan"] / amortize["row_scan"]
    warm_speedup = amortize["row_scan"] / amortize["warm_scan"]
    bulk_speedup = bulk["insert_s"] / bulk["bulk_s"]

    rows = [
        [f"cold mix ({len(MIX)} queries)", f"{mix['rows'] * 1e3:.2f}ms",
         f"{mix['columns'] * 1e3:.2f}ms", f"{mix_speedup:.2f}x faster"],
        ["first scan (incl. build)", f"{amortize['row_scan'] * 1e6:.1f}us",
         f"{amortize['first_scan'] * 1e6:.1f}us",
         f"{first_ratio:.2f}x of one row scan"],
        ["warm scan", f"{amortize['row_scan'] * 1e6:.1f}us",
         f"{amortize['warm_scan'] * 1e6:.1f}us",
         f"{warm_speedup:.2f}x faster"],
        [f"rtree build ({int(bulk['entries'])} entries)",
         f"{bulk['insert_s'] * 1e3:.2f}ms", f"{bulk['bulk_s'] * 1e3:.2f}ms",
         f"{bulk_speedup:.2f}x faster"],
    ]

    payload: dict[str, Any] = {
        "experiment": "C16",
        "quick": QUICK,
        "poles": pole_count,
        "cold_mix": {"rows_s": mix["rows"], "columns_s": mix["columns"],
                     "speedup": round(mix_speedup, 3)},
        "amortization": {"row_scan_s": amortize["row_scan"],
                         "first_scan_s": amortize["first_scan"],
                         "warm_scan_s": amortize["warm_scan"],
                         "first_ratio_vs_row": round(first_ratio, 3)},
        "bulk_load": {"entries": int(bulk["entries"]),
                      "insert_s": bulk["insert_s"],
                      "bulk_s": bulk["bulk_s"],
                      "speedup": round(bulk_speedup, 3)},
        "gates": {"cold_mix_speedup_min": 3.0,
                  "first_scan_ratio_max": 2.0,
                  "bulk_load_speedup_min": 1.0},
    }
    out_path = Path(__file__).resolve().parent.parent / "BENCH_C16.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")

    with capsys.disabled():
        print_header("C16", "vectorized columnar scans and STR-packed "
                            "index builds")
        print(f"phone-net: {pole_count} poles "
              f"({'quick' if QUICK else 'full'} mode)\n")
        print_table(["workload", "row path", "columns", "ratio"], rows)
        print(f"\nresults written to {out_path.name}")
        run_metrics_sample(db)

    # At smoke sizes fixed per-query overhead dilutes the kernels:
    # quick mode only requires "no slower"; full mode holds the 3x gate.
    mix_gate = 1.0 if QUICK else 3.0
    assert mix_speedup >= mix_gate, (
        f"cold mix only {mix_speedup:.2f}x faster than the row path "
        f"(gate: {mix_gate}x)"
    )
    if not QUICK:
        assert first_ratio <= 2.0, (
            f"first columnar scan {first_ratio:.2f}x of a row scan "
            f"(gate: 2x — the build must amortize within two scans)"
        )
        assert bulk_speedup >= 1.0, (
            f"STR bulk load {bulk_speedup:.2f}x of the insert loop "
            f"(gate: not slower)"
        )


if __name__ == "__main__":
    class _Capsys:
        class _Ctx:
            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

        def disabled(self):
            return self._Ctx()

    test_c16_columnar(_Capsys())
    print("\nC16 ok")
