"""Experiment C12 — the serving layer: remote clients and group commit.

Two questions about the network daemon (docs/SERVING.md):

* **Request throughput** — one kernel, one event loop, many blocking
  clients. Each of N client threads runs a fixed mixed workload (ping,
  cached query, session browse) over its own connection; we report
  aggregate requests/second and the p99 per-request latency at
  N = 16 / 64 / 256 connections. The interesting shape is that
  throughput should *hold* as N grows (the kernel executor is the
  bottleneck, not the loop), while p99 grows roughly linearly with N.

* **Group commit** — 64 threads committing concurrently through one
  file-backed WAL in ``fsync`` mode. With ``group_commit=False`` every
  commit pays its own device sync under the log lock; with grouping, a
  leader's single barrier covers every batch staged while the previous
  barrier was in flight. The acceptance gate is the whole point of the
  subsystem: grouped commit throughput must be at least **1.8x** the
  per-commit-fsync baseline at 64 committers.

Quick mode (``REPRO_BENCH_QUICK=1``, the CI smoke step) shrinks client
counts and op counts and skips the ratio assertions.
"""

import os
import shutil
import tempfile
import threading
import time

from repro.core.kernel import GISKernel
from repro.geodb import FilePager, GeographicDatabase, WriteAheadLog
from repro.net import GISClient, ServerThread
from repro.workloads import (
    PhoneNetParams,
    build_mix_schema,
    build_phone_net_database,
)
from repro.workloads.txn_mix import MIX_CLASS, MIX_SCHEMA

from _support import print_header, print_table

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
CLIENT_COUNTS = (8, 16) if QUICK else (16, 64, 256)
REQUESTS_PER_CLIENT = 6 if QUICK else 40
COMMITTERS = 16 if QUICK else 64
COMMITS_PER_THREAD = 3 if QUICK else 10


# ---------------------------------------------------------------------------
# Serving throughput
# ---------------------------------------------------------------------------


def _client_workload(host, port, latencies, errors, requests):
    """One remote client: session browse + cached queries + pings."""
    try:
        with GISClient(host, port, timeout=120) as client:
            client.open_session(user="bench")
            client.open_schema("phone_net")
            per_loop = 4
            for i in range(requests // per_loop):
                t0 = time.perf_counter()
                client.ping()
                latencies.append(time.perf_counter() - t0)
                t0 = time.perf_counter()
                client.query("phone_net", "select * from Pole")
                latencies.append(time.perf_counter() - t0)
                t0 = time.perf_counter()
                client.select_class("Pole")
                latencies.append(time.perf_counter() - t0)
                t0 = time.perf_counter()
                client.stats()
                latencies.append(time.perf_counter() - t0)
            client.close_session()
    except Exception as exc:  # noqa: BLE001 - report, don't hang the bench
        errors.append(exc)


def run_serving(clients: int) -> dict:
    db = build_phone_net_database(
        PhoneNetParams(blocks_x=2, blocks_y=2, poles_per_street=3,
                       duct_count=3, seed=11)
    )
    kernel = GISKernel(db)
    latencies: list[float] = []
    errors: list[Exception] = []
    with ServerThread(kernel) as (host, port):
        threads = [
            threading.Thread(target=_client_workload,
                             args=(host, port, latencies, errors,
                                   REQUESTS_PER_CLIENT))
            for _ in range(clients)
        ]
        start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=600)
        elapsed = time.perf_counter() - start
    kernel.shutdown()
    assert not errors, f"{len(errors)} client errors: {errors[:3]}"
    latencies.sort()
    total = len(latencies)
    return {
        "clients": clients,
        "requests": total,
        "rps": total / elapsed,
        "p50_ms": latencies[total // 2] * 1e3,
        "p99_ms": latencies[min(total - 1, int(total * 0.99))] * 1e3,
    }


# ---------------------------------------------------------------------------
# Group commit vs per-commit fsync
# ---------------------------------------------------------------------------


def run_committers(group_commit: bool) -> dict:
    """COMMITTERS threads, COMMITS_PER_THREAD single-insert txns each."""
    tmp = tempfile.mkdtemp(prefix="bench_c12_")
    try:
        path = os.path.join(tmp, "bench.db")
        db = GeographicDatabase("bench", pager=FilePager(path))
        db.register_schema(build_mix_schema())
        wal = db.attach_wal(
            WriteAheadLog.open(path + ".wal", sync_mode="fsync",
                               group_commit=group_commit)
        )
        start_gate = threading.Barrier(COMMITTERS)
        errors: list[Exception] = []

        def commit_loop(w):
            try:
                start_gate.wait(timeout=60)
                for i in range(COMMITS_PER_THREAD):
                    with db.transaction() as txn:
                        txn.insert(MIX_SCHEMA, MIX_CLASS,
                                   {"name": f"w{w}:{i}", "size": i},
                                   oid=f"Feature#w{w}_{i}")
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=commit_loop, args=(w,))
                   for w in range(COMMITTERS)]
        start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=600)
        elapsed = time.perf_counter() - start
        assert not errors, f"committer errors: {errors[:3]}"
        stats = wal.stats()
        commits = COMMITTERS * COMMITS_PER_THREAD
        db.close()
        return {
            "commits": commits,
            "cps": commits / elapsed,
            "fsyncs": stats["fsyncs"],
            "group_commits": stats["group_commits"],
            "group_batches": stats["group_commit_batches"],
        }
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


# ---------------------------------------------------------------------------
# The experiment
# ---------------------------------------------------------------------------


def test_c12_serving(capsys):
    serving = [run_serving(n) for n in CLIENT_COUNTS]
    solo = run_committers(group_commit=False)
    grouped = run_committers(group_commit=True)
    speedup = grouped["cps"] / solo["cps"]

    with capsys.disabled():
        print_header("C12", "serving layer: remote request throughput "
                            "and WAL group commit")
        print_table(
            ["clients", "requests", "req/s", "p50", "p99"],
            [[r["clients"], r["requests"], f"{r['rps']:.0f}",
              f"{r['p50_ms']:.2f}ms", f"{r['p99_ms']:.2f}ms"]
             for r in serving],
        )
        print(f"\ngroup commit at {COMMITTERS} committers x "
              f"{COMMITS_PER_THREAD} txns (fsync WAL, file-backed):")
        print_table(
            ["mode", "commits", "commits/s", "fsyncs", "barriers",
             "batches"],
            [
                ["per-commit", solo["commits"], f"{solo['cps']:.0f}",
                 solo["fsyncs"], "-", "-"],
                ["grouped", grouped["commits"], f"{grouped['cps']:.0f}",
                 grouped["fsyncs"], grouped["group_commits"],
                 grouped["group_batches"]],
            ],
        )
        print(f"\ngrouped/per-commit speedup: {speedup:.2f}x "
              f"({solo['fsyncs']} syncs collapsed to "
              f"{grouped['fsyncs']})")

    # every commit must be covered by a batch, whatever the timing
    assert grouped["group_batches"] == grouped["commits"]
    if not QUICK:
        # Acceptance: the barrier sharing must actually pay off.
        assert speedup >= 1.8, (
            f"group commit speedup {speedup:.2f}x below the 1.8x gate"
        )
        assert grouped["fsyncs"] < solo["fsyncs"]


if __name__ == "__main__":
    class _Capsys:
        class _Ctx:
            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

        def disabled(self):
            return self._Ctx()

    test_c12_serving(_Capsys())
