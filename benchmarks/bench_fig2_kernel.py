"""Experiment F2 — paper Figure 2: the kernel classes of interface objects.

Verifies by reflection that the library's kernel is exactly the OMT
diagram of Figure 2 (eight classes, Window◇Panel composition, recursive
Panel, Menu◇MenuItem), then times widget-tree composition at increasing
depth (the cost model behind "dialog components ... inserted, updated and
removed dynamically").
"""

from repro.uilib import (
    KERNEL_CLASSES,
    InterfaceObjectLibrary,
    Panel,
    Window,
)
from repro.uilib.widgets import PANEL_CHILDREN

from _support import print_header, print_table

#: The aggregation edges drawn in Figure 2.
FIGURE_2_EDGES = {
    ("window", "panel"),
    ("panel", "panel"),          # the recursive relationship
    ("panel", "text"),
    ("panel", "drawing_area"),
    ("panel", "list"),
    ("panel", "button"),
    ("panel", "menu"),
    ("menu", "menu_item"),
}


def test_fig2_kernel_matches_omt_diagram(capsys, benchmark):
    # the eight classes
    assert set(KERNEL_CLASSES) == {
        "window", "panel", "text", "drawing_area", "list", "button",
        "menu", "menu_item",
    }
    # the aggregation edges
    edges = set()
    for name, cls in KERNEL_CLASSES.items():
        for child in (cls.allowed_children or ()):
            if child in KERNEL_CLASSES:
                edges.add((name, child))
    # slider is a registered extension, not a kernel member
    assert edges == FIGURE_2_EDGES
    assert "slider" in PANEL_CHILDREN   # extensibility hook (§3.2)

    with capsys.disabled():
        print_header("F2", "Figure 2 kernel classes and aggregations")
        rows = [[parent, "◇--", child] for parent, child in sorted(edges)]
        print_table(["container", "", "aggregates"], rows)

    library = InterfaceObjectLibrary()
    benchmark(lambda: library.create("window", title="t"))


def build_tree(depth: int, fanout: int) -> Window:
    """A window with `depth` nested panel levels, `fanout` leaves each."""
    window = Window("w")
    level = Panel("p0")
    window.add_child(level)
    for d in range(1, depth):
        nxt = Panel(f"p{d}")
        level.add_child(nxt)
        for i in range(fanout):
            from repro.uilib import Button

            level.add_child(Button(f"b{d}_{i}", label="x"))
        level = nxt
    return window


def test_fig2_composition_scaling(capsys, benchmark):
    rows = []
    for depth in (2, 8, 32):
        import time

        start = time.perf_counter()
        window = build_tree(depth, fanout=4)
        built = time.perf_counter() - start
        count = sum(1 for __ in window.walk())
        rows.append([depth, count, f"{built * 1e6:.0f} us"])
    with capsys.disabled():
        print_header("F2b", "widget-tree composition scaling")
        print_table(["panel depth", "widgets", "build time"], rows)

    benchmark(lambda: build_tree(16, 4))


def test_fig2_describe_cost(benchmark):
    window = build_tree(16, 4)
    node = benchmark(window.describe)
    assert node["type"] == "window"
