"""Experiment C13 — scale-out reads: sharded scatter-gather and replicas.

Three questions about the scale-out layer (docs/REPLICATION.md):

* **Shard pruning** — windowed aggregate queries over a class extent
  partitioned into 1 / 2 / 4 / 8 spatial cells. A query's window
  intersects a constant-size region, so with more cells the scatter
  executes a smaller fraction of the extent. The acceptance gate is the
  point of the planner change: aggregate read throughput at 8 cells
  must be at least **3x** the 1-cell partition (the same scatter
  machinery with nothing to prune). On one core the gain is pure
  pruning, not parallelism.

* **Scatter overhead** — the gather is not free: per-shard candidate
  fetch and k-way merge cost something over the single-extent path.
  On scan-bound queries no shard can be pruned (no window), so the
  sharded run does the same logical work plus the scatter machinery.
  Gate: the single-extent path may be at most **2.5x** faster — beyond
  that the gather is wasting its pruning budget.

* **Replica fan-out** — the same read workload spread round-robin over
  0 / 1 / 2 attached followers via ``read_preference="replica"``.
  Under the GIL this buys isolation (a replica serves reads while the
  leader commits) rather than CPU parallelism, so we report throughput
  and verify the invariant that matters: while a writer commits
  concurrently, every follower read observes exactly the leader state
  at the follower's replication LSN — each commit inserts one row, so
  a snapshot at LSN L must count ``base + L`` rows, for every L the
  poller lands on.

Quick mode (``REPRO_BENCH_QUICK=1``, the CI smoke step) shrinks the
extent and repetition counts and skips the ratio assertions.
"""

import os
import threading
import time

from repro.core.kernel import GISKernel
from repro.geodb import (
    GeographicDatabase,
    LocalReplicationSource,
    MemoryPager,
    QueryEngine,
    WriteAheadLog,
)
from repro.geodb.query_language import parse_query
from repro.spatial import Point
from repro.workloads import build_mix_schema
from repro.workloads.txn_mix import MIX_CLASS, MIX_SCHEMA

from _support import print_header, print_table

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
EXTENT = 600 if QUICK else 3000
WORLD = 1000.0
WINDOW = 250.0
SCALING_REPS = 2 if QUICK else 8
OVERHEAD_REPS = 4 if QUICK else 15
REPLICA_READS = 40 if QUICK else 200
WRITER_COMMITS = 15 if QUICK else 60

#: (label, grid) — cells = gx * gy; 1 cell still scatters (the residual
#: shard makes two), it just has nothing to prune
SHARD_CONFIGS = [("1", (1, 1)), ("2", (2, 1)), ("4", (2, 2)),
                 ("8", (4, 2))]


def make_db(name="c13", wal=False) -> GeographicDatabase:
    db = GeographicDatabase(name, pager=MemoryPager())
    db.register_schema(build_mix_schema())
    if wal:
        db.attach_wal(WriteAheadLog(MemoryPager(), sync_mode="none"))
    with db.transaction() as txn:
        for i in range(EXTENT):
            located = i % 50 != 0   # a few rows land in the residual
            txn.insert(MIX_SCHEMA, MIX_CLASS, {
                "name": f"f{i:05d}",
                "size": (i * 7) % 97,
                "location": Point((i * 13) % WORLD, (i * 29) % WORLD)
                            if located else None,
            })
    return db


def windowed_queries():
    """Constant-size windows tiling the world: each hits ~1/16 of it."""
    queries = []
    for x in (0, 250, 500, 700):
        for y in (0, 250, 500, 700):
            queries.append(parse_query(
                "select count(*), avg(size) from Feature where "
                f"within(location, bbox({x}, {y}, {x + WINDOW}, "
                f"{y + WINDOW}))"))
    return queries


SCAN_QUERIES = [
    "select count(*), avg(size), max(size) from Feature",
    "select * from Feature where size > 90 order by desc size limit 10",
]


def run_queries(engine, queries, reps) -> float:
    """Throughput (queries/s) after one warm-up pass."""
    for query in queries:
        engine.execute(MIX_SCHEMA, query)
    executed = 0
    start = time.perf_counter()
    for _ in range(reps):
        for query in queries:
            engine.execute(MIX_SCHEMA, query)
            executed += 1
    return executed / (time.perf_counter() - start)


# ---------------------------------------------------------------------------
# Shard pruning: throughput vs cell count
# ---------------------------------------------------------------------------


def run_scaling() -> list[dict]:
    db = make_db()
    queries = windowed_queries()
    engine = QueryEngine(db)
    rows = []
    for label, grid in SHARD_CONFIGS:
        db.shard_extent(MIX_SCHEMA, MIX_CLASS, "location", grid=grid)
        rate = run_queries(engine, queries, SCALING_REPS)
        report = engine.execute(MIX_SCHEMA, queries[0]).report
        rows.append({
            "cells": label,
            "qps": rate,
            "live": report["scatter"]["shards"],
            "pruned": report["scatter"]["pruned"],
        })
    return rows


# ---------------------------------------------------------------------------
# Scatter overhead on scan-bound queries (nothing prunable)
# ---------------------------------------------------------------------------


def run_overhead() -> dict:
    db = make_db()
    queries = [parse_query(text) for text in SCAN_QUERIES]
    single = run_queries(QueryEngine(db), queries, OVERHEAD_REPS)
    db.shard_extent(MIX_SCHEMA, MIX_CLASS, "location", grid=(4, 2))
    scatter = run_queries(QueryEngine(db), queries, OVERHEAD_REPS)
    return {"single_qps": single, "scatter_qps": scatter,
            "factor": single / scatter}


# ---------------------------------------------------------------------------
# Replica fan-out and snapshot consistency under writes
# ---------------------------------------------------------------------------


def run_replicas(count: int) -> dict:
    """REPLICA_READS queries routed by preference over `count` replicas,
    while a writer commits on the leader; every follower read must see
    exactly the leader state at the follower's own replication LSN."""
    leader = make_db(wal=True)
    base = leader.count(MIX_SCHEMA, MIX_CLASS)
    kernel = GISKernel(leader)
    followers = []
    for i in range(count):
        follower = GeographicDatabase.follow(
            LocalReplicationSource(leader), name=f"r{i}")
        followers.append(follower)
        kernel.attach_replica(follower)

    stop = threading.Event()
    consistency_errors: list[str] = []

    def writer():
        for i in range(WRITER_COMMITS):
            leader.insert(MIX_SCHEMA, MIX_CLASS,
                          {"name": f"live{i:03d}", "size": i})
            time.sleep(0.001)
        stop.set()

    lsn0 = followers[0].replication_lsn if followers else 0

    def poller():
        # a read txn's snapshot_ts IS the follower's commit LSN; every
        # leader commit adds one row, so a snapshot at LSN L must hold
        # exactly base + (L - bootstrap) rows — whatever the kernel's
        # replica reads and the shipping poller do concurrently
        while not stop.is_set():
            for follower in followers:
                follower.poll_replication()
                txn = follower.transaction()
                seen = sum(1 for _ in txn.query(MIX_SCHEMA, MIX_CLASS))
                expected = base + (txn.snapshot_ts - lsn0)
                txn.abort()
                if seen != expected:
                    consistency_errors.append(
                        f"follower {follower.name} snapshot at lsn "
                        f"{txn.snapshot_ts} sees {seen} rows, expected "
                        f"{expected}")
            time.sleep(0.001)

    threads = [threading.Thread(target=writer)]
    if followers:
        threads.append(threading.Thread(target=poller))
    preference = "replica" if followers else "leader"
    for t in threads:
        t.start()
    executed = 0
    start = time.perf_counter()
    for i in range(REPLICA_READS):
        kernel.query(MIX_SCHEMA,
                     "select count(*), max(size) from Feature",
                     use_cache=False, read_preference=preference)
        executed += 1
    elapsed = time.perf_counter() - start
    for t in threads:
        t.join(timeout=600)
    for follower in followers:
        follower.poll_replication()
    lags = [follower.replication_lag() for follower in followers]
    kernel.shutdown()
    assert not consistency_errors, consistency_errors[:3]
    return {
        "replicas": count,
        "qps": executed / elapsed,
        "final_lag": max(lags) if lags else 0,
        "checks": "ok",
    }


# ---------------------------------------------------------------------------
# The experiment
# ---------------------------------------------------------------------------


def test_c13_scaleout(capsys):
    scaling = run_scaling()
    overhead = run_overhead()
    replicas = [run_replicas(n) for n in (0, 1, 2)]
    speedup = scaling[-1]["qps"] / scaling[0]["qps"]

    with capsys.disabled():
        print_header("C13", "scale-out reads: shard pruning, scatter "
                            "overhead, replica routing")
        print(f"\nwindowed aggregates over {EXTENT} objects "
              f"(window ~1/16 of the world):")
        print_table(
            ["cells", "queries/s", "live shards", "pruned"],
            [[r["cells"], f"{r['qps']:.0f}", r["live"], r["pruned"]]
             for r in scaling],
        )
        print(f"\n8-cell vs 1-cell speedup: {speedup:.2f}x "
              "(pure pruning; one core)")
        print(f"\nscan-bound overhead: single-extent "
              f"{overhead['single_qps']:.0f} q/s vs scatter "
              f"{overhead['scatter_qps']:.0f} q/s "
              f"({overhead['factor']:.2f}x)")
        print("\nreplica routing under a concurrent writer "
              f"({WRITER_COMMITS} commits):")
        print_table(
            ["replicas", "reads/s", "final lag", "snapshot checks"],
            [[r["replicas"], f"{r['qps']:.0f}", r["final_lag"],
              r["checks"]] for r in replicas],
        )

    if not QUICK:
        # Acceptance: pruning must actually scale reads out...
        assert speedup >= 3.0, (
            f"8-cell speedup {speedup:.2f}x below the 3x gate"
        )
        # ...and the gather machinery must not eat the budget.
        assert overhead["factor"] <= 2.5, (
            f"scatter overhead {overhead['factor']:.2f}x beyond the "
            "2.5x gate on scan-bound queries"
        )


if __name__ == "__main__":
    class _Capsys:
        class _Ctx:
            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

        def disabled(self):
            return self._Ctx()

    test_c13_scaleout(_Capsys())
