"""Experiment F4 — paper Figure 4: the default interface windows.

Rebuilds the three generic windows of the §4 browsing loop for the
phone-net database, prints their renderings (the reproduction of the
Figure 4 screenshots), asserts their documented structure, and times the
generic build path.
"""

from repro.core import GISSession
from repro.ui import class_window_areas, displayed_attribute_names

from _support import print_header


def test_fig4_default_windows(paper_db, generic_session, capsys, benchmark):
    session = generic_session
    session.connect("phone_net")
    session.select_class("Pole")
    pole_oid = paper_db.extent("phone_net", "Pole").oids()[0]
    session.select_instance(pole_oid)

    schema_window = session.screen.window("schema_phone_net")
    class_window = session.screen.window("classset_Pole")
    instance_window = session.screen.window(f"instance_{pole_oid}")

    # Figure 4 left: Schema window shows "the complete schema"
    keys = [k for k, __ in schema_window.find("classes").items]
    assert set(keys) == {"Supplier", "District", "Street", "NetworkElement",
                         "Pole", "Duct", "Cable"}
    # Figure 4 center: Class-set window with control + presentation areas
    control, presentation = class_window_areas(class_window)
    assert control.find("operations") is not None       # menu buttons
    assert control.find("instances") is not None        # class widgets area
    area = presentation.find("map")
    assert len(area.features) == paper_db.count("phone_net", "Pole")
    assert {s for __, __g, s in area.features} == {"*"}  # generic symbol
    # Figure 4 right: Instance window, a panel per attribute
    assert len(displayed_attribute_names(instance_window)) == 8

    with capsys.disabled():
        print_header("F4", "Figure 4 — default interface windows")
        print(session.render("schema_phone_net"))
        print()
        print(session.render("classset_Pole"))
        print()
        print(session.render(f"instance_{pole_oid}"))

    benchmark(lambda: session.render("classset_Pole"))


def test_fig4_default_build_latency(paper_db, benchmark):
    """Cost of building the full default window set (no customization)."""

    def loop():
        session = GISSession(paper_db, user="maria", application="browser")
        session.connect("phone_net")
        session.select_class("Pole")
        session.engine.manager.detach()
        return len(session.screen)

    assert benchmark(loop) == 2
