"""Experiment C3 — the transparency claim: dispatch overhead.

§3.5: "All the modules in the interface have exactly the same behavior,
with or without customization, while in conventional interfaces the
customization involves the modification of the interface code."

Three configurations open the same Class-set window:

1. generic dispatcher, **no rules** registered;
2. generic dispatcher, the Figure 6 customization active;
3. the **hardwired baseline** with the same customization compiled in.

The claim holds if (1) and (2) run the same code path (the dispatcher
never branches on customization) and the rule machinery adds only a
bounded per-event overhead compared with (3).
"""

import time

from repro.baselines import HardwiredDispatcher, install_pole_manager_variants
from repro.core import Context, GISSession
from repro.lang import FIGURE_6_PROGRAM

from _support import print_header, print_table

JULIANO = Context(user="juliano", application="pole_manager")


def time_loop(fn, rounds=200):
    start = time.perf_counter()
    for __ in range(rounds):
        fn()
    return (time.perf_counter() - start) / rounds


def test_c3_overhead_comparison(paper_db, capsys, benchmark):
    # 1. generic dispatcher, no rules
    bare = GISSession(paper_db, user="juliano", application="pole_manager")
    # 2. generic dispatcher + Figure 6 rules
    ruled = GISSession(paper_db, user="juliano", application="pole_manager")
    ruled.install_program(FIGURE_6_PROGRAM, persist=False)
    # 3. hardwired baseline
    hardwired = HardwiredDispatcher(paper_db)
    install_pole_manager_variants(hardwired)

    t_bare = time_loop(
        lambda: bare.dispatcher.open_class("phone_net", "Pole", JULIANO))
    t_ruled = time_loop(
        lambda: ruled.dispatcher.open_class("phone_net", "Pole", JULIANO))
    t_hard = time_loop(
        lambda: hardwired.open_class("phone_net", "Pole", JULIANO))

    with capsys.disabled():
        print_header("C3", "dispatch overhead: generic vs rules vs hardwired")
        print_table(
            ["configuration", "per open_class", "relative"],
            [
                ["generic dispatcher, 0 rules", f"{t_bare * 1e6:.0f} us",
                 "1.00x"],
                ["generic dispatcher + Fig-6 rules",
                 f"{t_ruled * 1e6:.0f} us", f"{t_ruled / t_bare:.2f}x"],
                ["hardwired baseline (customized)",
                 f"{t_hard * 1e6:.0f} us", f"{t_hard / t_bare:.2f}x"],
            ],
        )

    # The rule machinery must not blow up the interaction cost: the paper's
    # transparency claim is qualitative; we bound the overhead generously.
    assert t_ruled < t_bare * 5

    bare.engine.manager.detach()
    benchmark(lambda: ruled.dispatcher.open_class("phone_net", "Pole",
                                                  JULIANO))
    ruled.engine.manager.detach()


def test_c3_rule_count_does_not_leak_into_unrelated_events(paper_db, capsys,
                                                           benchmark):
    """Rules for other classes/contexts must not slow unrelated opens."""
    session = GISSession(paper_db, user="nobody", application="none")
    t_before = time_loop(
        lambda: session.dispatcher.open_class(
            "phone_net", "Duct", session.context), rounds=100)

    loaded = GISSession(paper_db, user="nobody", application="none")
    for i in range(100):
        loaded.install_program(
            FIGURE_6_PROGRAM.replace("user juliano", f"user clone_{i}"),
            persist=False)
    t_after = time_loop(
        lambda: loaded.dispatcher.open_class(
            "phone_net", "Duct", loaded.context), rounds=100)

    with capsys.disabled():
        print_header("C3b", "unrelated-event isolation (100 extra directives)")
        print_table(["configuration", "per open_class(Duct)"],
                    [["0 directives", f"{t_before * 1e6:.0f} us"],
                     ["100 directives (other users/classes)",
                      f"{t_after * 1e6:.0f} us"]])

    session.engine.manager.detach()
    benchmark(lambda: loaded.dispatcher.open_class(
        "phone_net", "Duct", loaded.context))
    loaded.engine.manager.detach()
