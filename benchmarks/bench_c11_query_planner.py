"""Experiment C11 — cost-based planning, compiled refine, result cache.

The PR replaced the fixed-priority query executor (spatial prefilter >
hash > scan, per-oid ``find_object``, interpreted predicate ``matches``)
with cost-based per-class planning, batched candidate fetch, compiled
predicate closures and a kernel-wide snapshot-consistent result cache.
This experiment prices all three against an in-bench replica of the seed
executor, over a phone-net database large enough for plan quality to
matter:

* **cold mix** — a representative query mix (selective and covering
  spatial probes, indexed equality, dotted-path refine, mixed subclass
  closure, aggregates), each query cold (no result cache). Gate:
  >= 1.5x faster than the seed executor.
* **cold single query** — a plain full-scan query, pricing the planner
  + compile overhead a one-off query pays. Gate: <= 1.2x of seed.
* **warm cache** — the same query repeated through the kernel's
  :class:`~repro.core.query_cache.QueryResultCache`. Gate: >= 3x
  faster than re-executing on the seed path.

Results land in ``BENCH_C11.json`` at the repo root. Quick mode
(``REPRO_BENCH_QUICK=1``, used by the CI smoke step) shrinks the
database and the round counts; at smoke sizes the cold timings are
noise-bound, so quick mode relaxes the cold-mix gate to "no slower
than seed" and skips the cold-overhead gate. The warm-cache gate (3x)
holds in both modes; the full gate set runs in full mode.
"""

import json
import os
import time
from pathlib import Path
from typing import Any

from repro.geodb import QueryEngine, parse_query
from repro.geodb.query import _resolve_path
from repro.core import QueryResultCache
from repro.errors import QueryError
from repro.workloads import PhoneNetParams, build_phone_net_database

from _support import capture_metrics, print_header, print_metrics, print_table

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
PARAMS = (PhoneNetParams(blocks_x=4, blocks_y=4, poles_per_street=12,
                         duct_count=10, seed=7)
          if QUICK else
          PhoneNetParams(blocks_x=10, blocks_y=10, poles_per_street=24,
                         duct_count=60, seed=7))
ROUNDS = 3 if QUICK else 7
WARM_REPEATS = 50 if QUICK else 300

SCHEMA = "phone_net"

#: The cold mix: one query per access-path decision the planner makes.
MIX = [
    ("selective bbox",
     "select * from Pole where within(pole_location, bbox(0, 0, 60, 60))"),
    ("covering bbox + equality",
     "select * from Pole where pole_type = 1 and "
     "within(pole_location, bbox(-10, -10, 10000, 10000))"),
    ("indexed equality",
     "select * from Pole where pole_type = 2"),
    ("dotted-path refine",
     "select * from Pole where pole_composition.pole_material = 'wood'"),
    ("mixed subclass closure",
     "select * from NetworkElement where status = 'ok' "
     "including subclasses"),
    ("aggregate over extent",
     "select count(*), min(install_year), avg(install_year) from Pole"),
]

SINGLE = "select * from Pole where install_year >= 1980"
WARM = MIX[1][1]


class SeedEngine:
    """Replica of the pre-PR executor, for an honest baseline.

    Fixed priority (spatial prefilter, else hash when *every* closure
    class is indexed, else scan), per-oid ``find_object`` resolution,
    interpreted ``Predicate.matches`` refine and ``_resolve_path``
    shaping — the exact shape of the seed's ``QueryEngine._execute``.
    """

    def __init__(self, database):
        self.database = database

    def execute(self, schema_name: str, query):
        db = self.database
        schema = db.get_schema_object(schema_name)
        geo_class = schema.get_class(query.class_name)
        candidates = self._candidates(schema_name, query)
        matches = [obj for obj in candidates
                   if query.where.matches(obj, geo_class)]
        if query.aggregates:
            return self._aggregate(matches, geo_class, query)
        matches = self._order(matches, geo_class, query)
        if query.limit is not None:
            matches = matches[: query.limit]
        return matches

    def _candidates(self, schema_name: str, query):
        db = self.database
        class_names = [query.class_name]
        if query.include_subclasses:
            schema = db.get_schema_object(schema_name)
            pending, class_names = [query.class_name], []
            while pending:
                current = pending.pop()
                class_names.append(current)
                pending.extend(schema.subclasses(current))

        prefilter = query.where.spatial_prefilter()
        if prefilter is not None:
            attr, box = prefilter
            if not box.is_empty():
                out = []
                for cname in class_names:
                    try:
                        index = db.spatial_index(schema_name, cname, attr)
                    except Exception:
                        out.extend(db.extent(schema_name, cname))
                        continue
                    for oid in index.search(box):
                        obj = db.find_object(oid)
                        if obj is not None:
                            out.append(obj)
                return out

        equality = query.where.equality_prefilter()
        if equality is not None:
            attr, values = equality
            indexes = [db.attribute_index(schema_name, cname, attr)
                       for cname in class_names]
            if all(index is not None for index in indexes):
                out = []
                for index in indexes:
                    for oid in sorted(index.lookup_many(values)):
                        obj = db.find_object(oid)
                        if obj is not None:
                            out.append(obj)
                return out

        out = []
        for cname in class_names:
            out.extend(db.extent(schema_name, cname))
        return out

    @staticmethod
    def _order(matches, geo_class, query):
        if not query.order_by:
            return matches
        path = query.order_by
        descending = path.startswith("-")
        if descending:
            path = path[1:]

        def key(obj):
            try:
                value = _resolve_path(obj, geo_class, path)
            except QueryError:
                value = None
            return (value is None, value)

        return sorted(matches, key=key, reverse=descending)

    @staticmethod
    def _aggregate(matches, geo_class, query):
        row = {}
        for op, path in query.aggregates or ():
            label = f"{op}({path or '*'})"
            if op == "count" and path is None:
                row[label] = len(matches)
                continue
            values = []
            for obj in matches:
                try:
                    value = _resolve_path(obj, geo_class, path)
                except QueryError:
                    value = None
                if value is not None:
                    values.append(value)
            if op == "count":
                row[label] = len(values)
            elif not values:
                row[label] = None
            elif op == "min":
                row[label] = min(values)
            elif op == "max":
                row[label] = max(values)
            elif op == "sum":
                row[label] = sum(values)
            else:
                row[label] = sum(values) / len(values)
        return [row]


def build_db():
    db = build_phone_net_database(PARAMS)
    db.create_attribute_index(SCHEMA, "Pole", "pole_type")
    db.create_attribute_index(SCHEMA, "Pole", "status")
    return db


def _best_of(rounds: int, fn) -> float:
    fn()  # warmup
    best = float("inf")
    for __ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_cold_mix(db) -> dict[str, float]:
    """Seconds per full mix pass, seed executor vs new engine (no cache)."""
    queries = [(label, parse_query(text)) for label, text in MIX]
    seed, new = SeedEngine(db), QueryEngine(db)

    def run_seed():
        for __, query in queries:
            seed.execute(SCHEMA, query)

    def run_new():
        for __, query in queries:
            new.execute(SCHEMA, query)

    # Sanity: both executors agree on every mix query's matching set.
    for __, query in queries:
        if query.aggregates:
            expected = seed.execute(SCHEMA, query)
            assert new.execute(SCHEMA, query).rows == expected
        else:
            expected = sorted(o.oid for o in seed.execute(SCHEMA, query))
            got = sorted(new.execute(SCHEMA, query).oids())
            assert got == expected, f"result drift on: {query.describe()}"

    return {"seed": _best_of(ROUNDS, run_seed),
            "new": _best_of(ROUNDS, run_new)}


def bench_cold_single(db) -> dict[str, float]:
    """Per-execution cost of one plain scan query (planner overhead)."""
    query = parse_query(SINGLE)
    seed, new = SeedEngine(db), QueryEngine(db)
    repeats = 20 if QUICK else 60

    def run_seed():
        for __ in range(repeats):
            seed.execute(SCHEMA, query)

    def run_new():
        for __ in range(repeats):
            new.execute(SCHEMA, query)

    return {"seed": _best_of(ROUNDS, run_seed) / repeats,
            "new": _best_of(ROUNDS, run_new) / repeats}


def bench_warm_cache(db) -> dict[str, float]:
    """Per-query cost of a repeated query: seed re-run vs cache hits."""
    query = parse_query(WARM)
    seed = SeedEngine(db)
    cache = QueryResultCache(db)

    def run_seed():
        for __ in range(WARM_REPEATS):
            seed.execute(SCHEMA, query)

    def run_cached():
        for __ in range(WARM_REPEATS):
            cache.execute(SCHEMA, query)

    result = {"seed": _best_of(ROUNDS, run_seed) / WARM_REPEATS,
              "cached": _best_of(ROUNDS, run_cached) / WARM_REPEATS}
    assert cache.hits > 0 and cache.misses >= 1
    return result


def run_metrics_sample(db) -> None:
    """One instrumented pass over the mix, for the observability report."""
    with capture_metrics():
        cache = QueryResultCache(db)
        for __, text in MIX:
            cache.execute(SCHEMA, parse_query(text))
            cache.execute(SCHEMA, parse_query(text))
        print_metrics(["query."])


def test_c11_query_planner(capsys):
    db = build_db()
    pole_count = db.count(SCHEMA, "Pole")
    cold = bench_cold_mix(db)
    single = bench_cold_single(db)
    warm = bench_warm_cache(db)

    cold_speedup = cold["seed"] / cold["new"]
    single_ratio = single["new"] / single["seed"]
    warm_speedup = warm["seed"] / warm["cached"]

    rows = [
        ["cold mix (6 queries)", f"{cold['seed'] * 1e3:.2f}ms",
         f"{cold['new'] * 1e3:.2f}ms", f"{cold_speedup:.2f}x faster"],
        ["cold single query", f"{single['seed'] * 1e6:.1f}us",
         f"{single['new'] * 1e6:.1f}us", f"{single_ratio:.2f}x of seed"],
        ["warm repeat (cache)", f"{warm['seed'] * 1e6:.1f}us",
         f"{warm['cached'] * 1e6:.1f}us", f"{warm_speedup:.0f}x faster"],
    ]

    payload: dict[str, Any] = {
        "experiment": "C11",
        "quick": QUICK,
        "poles": pole_count,
        "cold_mix": {"seed_s": cold["seed"], "new_s": cold["new"],
                     "speedup": round(cold_speedup, 3)},
        "cold_single": {"seed_s": single["seed"], "new_s": single["new"],
                        "ratio_vs_seed": round(single_ratio, 3)},
        "warm_cache": {"seed_s": warm["seed"], "cached_s": warm["cached"],
                       "speedup": round(warm_speedup, 1)},
        "gates": {"cold_mix_speedup_min": 1.5,
                  "cold_single_ratio_max": 1.2,
                  "warm_cache_speedup_min": 3.0},
    }
    out_path = Path(__file__).resolve().parent.parent / "BENCH_C11.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")

    with capsys.disabled():
        print_header("C11", "cost-based planning, compiled refine and the "
                            "query result cache")
        print(f"phone-net: {pole_count} poles "
              f"({'quick' if QUICK else 'full'} mode)\n")
        print_table(["workload", "seed executor", "this PR", "ratio"], rows)
        print(f"\nresults written to {out_path.name}")
        run_metrics_sample(db)

    assert warm_speedup >= 3.0, (
        f"warm cache only {warm_speedup:.2f}x faster than seed re-run "
        f"(gate: 3x)"
    )
    # Cold timings are noise-bound at smoke sizes: quick mode only
    # requires "no slower than seed"; full mode holds the real gates.
    cold_gate = 1.0 if QUICK else 1.5
    assert cold_speedup >= cold_gate, (
        f"cold mix only {cold_speedup:.2f}x faster than the seed executor "
        f"(gate: {cold_gate}x)"
    )
    if not QUICK:
        # One-off queries pay planning + compilation; the batched fetch
        # must keep that within 1.2x of the seed path.
        assert single_ratio <= 1.2, (
            f"cold single query {single_ratio:.2f}x of seed (gate: 1.2x)"
        )


if __name__ == "__main__":
    class _Capsys:
        class _Ctx:
            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

        def disabled(self):
            return self._Ctx()

    test_c11_query_planner(_Capsys())
    print("\nC11 ok")
