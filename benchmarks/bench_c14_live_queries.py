"""Experiment C14 — live queries: delta maintenance vs re-execution.

A dashboard of standing queries over a churning extent is the worst
case for an invalidate-on-commit result cache: every commit moves the
class version, every standing query misses, and the engine re-executes
all of them from scratch. The live subsystem
(:mod:`repro.core.live_queries`) instead patches each cached result
with the commit's write-set and falls back to execution only when a
delta is inapplicable (LIMIT horizon, closure change).

Two questions, two oracles:

* **Work avoided** — the same standing-query set maintained both ways
  over the same seeded commit mix. We count actual engine executions.
  Acceptance gate: invalidate-on-commit must execute at least **5x**
  more full queries than the live path (registration executions
  included).

* **Exactness** — after every commit, every live result must be
  byte-identical to a fresh engine execution: same oids in the same
  order for ordered queries, identical projected rows, identical
  aggregate rows (the mix aggregates the integer ``size`` attribute,
  so sums are order-insensitive and the comparison is exact).

A third section runs the push fan-out over the wire: two connections
watch disjoint predicates while a writer churns rows matching only the
first — every ``live_update`` frame must arrive at the connection whose
result changed, and none at the other (the per-session delivery
oracle).

Quick mode (``REPRO_BENCH_QUICK=1``, the CI smoke step) shrinks the
extent and commit counts and skips the ratio assertion.
"""

import os
import random

from repro.core.kernel import GISKernel
from repro.geodb import GeographicDatabase, MemoryPager, QueryEngine
from repro.geodb.query_language import parse_query
from repro.net.client import GISClient
from repro.net.server import ServerThread
from repro.spatial import Point
from repro.workloads import build_mix_schema
from repro.workloads.txn_mix import MIX_CLASS, MIX_SCHEMA

from _support import print_header, print_table

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
EXTENT = 400 if QUICK else 2000
COMMITS = 40 if QUICK else 240
WIRE_COMMITS = 10 if QUICK else 40
WORLD = 1000
SEED = 20260808

#: the standing dashboard: every shape the delta engine maintains
STANDING = [
    "select count(*), avg(size) from Feature where "
    "within(location, bbox(0, 0, 250, 250))",
    "select count(*), avg(size) from Feature where "
    "within(location, bbox(500, 500, 750, 750))",
    "select count(*), sum(size), min(size), max(size) from Feature "
    "where size >= 48",
    "select name, size from Feature where size >= 90",
    "select name, size from Feature where size <= 3",
    "select name, size from Feature order by desc size limit 10",
    "select * from Feature where size >= 25 and size <= 30",
    "select count(*) from Feature",
]


def make_db(name="c14") -> GeographicDatabase:
    db = GeographicDatabase(name, pager=MemoryPager())
    db.register_schema(build_mix_schema())
    with db.transaction() as txn:
        for i in range(EXTENT):
            txn.insert(MIX_SCHEMA, MIX_CLASS, {
                "name": f"f{i:05d}",
                "size": (i * 7) % 97,
                "location": Point((i * 13) % WORLD, (i * 29) % WORLD)
                            if i % 50 else None,
            }, oid=f"Feature#f{i:05d}")
    return db


class ExecCounter:
    """Counts real engine executions behind a kernel's result cache."""

    def __init__(self, cache):
        self.cache = cache
        self.count = 0
        self._inner = cache.engine.execute

    def __enter__(self):
        def counting(schema_name, query):
            self.count += 1
            return self._inner(schema_name, query)

        self.cache.engine.execute = counting
        return self

    def __exit__(self, *exc):
        self.cache.engine.execute = self._inner
        return False


def churn_ops(rng, oids, serial):
    """One commit's worth of mutations; returns (ops, new serial)."""
    ops = []
    for _ in range(rng.randint(1, 3)):
        action = rng.random()
        if action < 0.4:
            serial += 1
            oid = f"Feature#live{serial:05d}"
            ops.append(("insert", oid, {
                "name": f"live{serial:05d}",
                "size": rng.randint(0, 96),
                "location": Point(rng.randint(0, WORLD),
                                  rng.randint(0, WORLD))
                            if rng.random() < 0.9 else None,
            }))
            oids.append(oid)
        elif action < 0.85 or len(oids) < 20:
            ops.append(("update", rng.choice(oids), {
                "size": rng.randint(0, 96)}))
        else:
            oid = rng.choice(oids)
            oids.remove(oid)
            ops.append(("delete", oid, None))
    return ops, serial


def apply_ops(kernel, ops):
    with kernel.transaction() as txn:
        for op, oid, values in ops:
            if op == "insert":
                txn.insert(MIX_SCHEMA, MIX_CLASS, values, oid=oid)
            elif op == "update":
                txn.update(oid, values)
            else:
                txn.delete(oid)


def run_live() -> dict:
    """Watches maintained by deltas; exactness checked every commit."""
    db = make_db("c14-live")
    oracle = QueryEngine(db)
    kernel = GISKernel(db)
    session = kernel.session(user="dash")
    rng = random.Random(SEED)
    oids = list(db.extent(MIX_SCHEMA, MIX_CLASS).oids())
    mismatches = 0
    with ExecCounter(kernel.query_cache) as counter:
        watches = [(session.watch(MIX_SCHEMA, text), parse_query(text),
                    text) for text in STANDING]
        serial = 0
        for _ in range(COMMITS):
            ops, serial = churn_ops(rng, oids, serial)
            apply_ops(kernel, ops)
            for watch, query, text in watches:
                fresh = oracle.execute(MIX_SCHEMA, query)
                live = watch.result()
                if "order by" in text:
                    same = (live.oids() == fresh.oids()
                            and live.rows == fresh.rows)
                elif live.rows is not None:
                    key = (None if query.aggregates
                           else (lambda r: r["oid"]))
                    same = sorted(live.oids()) == sorted(fresh.oids()) \
                        and (live.rows == fresh.rows if key is None else
                             sorted(live.rows, key=key)
                             == sorted(fresh.rows, key=key))
                else:
                    same = sorted(live.oids()) == sorted(fresh.oids())
                mismatches += 0 if same else 1
        executions = counter.count
    stats = kernel.live.stats()
    kernel.shutdown()
    return {
        "executions": executions,
        "deltas": stats["delta_applied"],
        "fallbacks": stats["fallback_reexec"],
        "pushes": stats["pushes"],
        "mismatches": mismatches,
    }


def run_baseline() -> dict:
    """Invalidate-on-commit: re-read every standing query per commit."""
    db = make_db("c14-base")
    kernel = GISKernel(db)
    rng = random.Random(SEED)
    oids = list(db.extent(MIX_SCHEMA, MIX_CLASS).oids())
    queries = [parse_query(text) for text in STANDING]
    with ExecCounter(kernel.query_cache) as counter:
        for query in queries:            # the dashboard's first paint
            kernel.query(MIX_SCHEMA, query)
        serial = 0
        for _ in range(COMMITS):
            ops, serial = churn_ops(rng, oids, serial)
            apply_ops(kernel, ops)
            for query in queries:        # every commit repaints it all
                kernel.query(MIX_SCHEMA, query)
        executions = counter.count
    cache_stats = kernel.query_cache.stats()
    kernel.shutdown()
    return {
        "executions": executions,
        "invalidations": cache_stats["invalidations"],
        "hits": cache_stats["hits"],
    }


def run_wire() -> dict:
    """Per-session delivery over TCP: pushes only where content changed."""
    db = make_db("c14-wire")
    kernel = GISKernel(db)
    pushes_hot = pushes_cold = 0
    final_rows = None
    with ServerThread(kernel) as (host, port):
        with GISClient(host, port) as hot, GISClient(host, port) as cold, \
                GISClient(host, port) as writer:
            hot.open_session(user="hot")
            cold.open_session(user="cold")
            hot_watch = hot.watch(
                MIX_SCHEMA, "select count(*), sum(size) from Feature "
                            "where size >= 200")
            cold.watch(MIX_SCHEMA, "select name from Feature "
                                   "where size >= 300 and size <= 250")
            for i in range(WIRE_COMMITS):
                # every commit lands in the hot watch, never the cold one
                writer.insert(MIX_SCHEMA, MIX_CLASS,
                              {"name": f"w{i:03d}", "size": 200 + i})
            pushes_hot = len([p for p in hot.poll_pushes(timeout=2.0)
                              if p["push"] == "live_update"])
            pushes_cold = len([p for p in cold.poll_pushes(timeout=0.5)
                               if p["push"] == "live_update"])
            final = kernel.query(MIX_SCHEMA,
                                 "select count(*), sum(size) from Feature "
                                 "where size >= 200", use_cache=False)
            final_rows = final.rows
            assert hot_watch["count"] == 0
    kernel.shutdown()
    expected_sum = sum(200 + i for i in range(WIRE_COMMITS))
    return {
        "commits": WIRE_COMMITS,
        "pushes_hot": pushes_hot,
        "pushes_cold": pushes_cold,
        "content_ok": final_rows == [{"count(*)": WIRE_COMMITS,
                                      "sum(size)": expected_sum}],
    }


def test_c14_live_queries(capsys):
    live = run_live()
    baseline = run_baseline()
    wire = run_wire()
    ratio = baseline["executions"] / max(live["executions"], 1)

    with capsys.disabled():
        print_header("C14", "live queries: delta maintenance vs "
                            "invalidate-on-commit")
        print(f"\n{len(STANDING)} standing queries over {EXTENT} objects, "
              f"{COMMITS} commits of churn:")
        print_table(
            ["strategy", "engine execs", "deltas", "fallbacks", "pushes"],
            [
                ["invalidate-on-commit", baseline["executions"],
                 "-", "-", "-"],
                ["live (delta)", live["executions"], live["deltas"],
                 live["fallbacks"], live["pushes"]],
            ],
        )
        print(f"\nre-execution ratio: {ratio:.1f}x fewer engine runs "
              f"({baseline['executions']} vs {live['executions']})")
        print(f"exactness: {live['mismatches']} mismatches across "
              f"{COMMITS * len(STANDING)} per-commit comparisons")
        print(f"\nwire delivery over {wire['commits']} hot commits: "
              f"hot connection {wire['pushes_hot']} push(es), "
              f"cold connection {wire['pushes_cold']}, "
              f"content {'ok' if wire['content_ok'] else 'DIVERGED'}")

    assert live["mismatches"] == 0, (
        f"{live['mismatches']} live results diverged from fresh execution"
    )
    assert wire["pushes_cold"] == 0, "push delivered to an unchanged watch"
    assert wire["content_ok"], "pushed result diverged from fresh execution"
    if not QUICK:
        assert ratio >= 5.0, (
            f"delta maintenance saved only {ratio:.1f}x engine "
            "executions, below the 5x gate"
        )
        assert wire["pushes_hot"] == wire["commits"], (
            f"hot watch expected {wire['commits']} pushes, got "
            f"{wire['pushes_hot']}"
        )


if __name__ == "__main__":
    class _Capsys:
        class _Ctx:
            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

        def disabled(self):
            return self._Ctx()

    test_c14_live_queries(_Capsys())
