"""Experiment C1 — the reuse claim.

§1 cites that ">50% of the total amount of code is dedicated to the user
interface" in complex interactive systems; §3.2 reports the library was
used to build a system of "over 10000 lines of code and more than 100
distinct windows". The architecture's promise is that those windows come
from *one* generic model plus small declarative directives.

This experiment generates >100 structurally distinct windows from the
library across many contexts and measures the reuse ratio: total widgets
instantiated vs. the declarative input that produced them.
"""

from repro.core import GISSession
from repro.lang import compile_program
from repro.uilib import (
    InterfaceObjectLibrary,
    PresentationRegistry,
    install_standard_composites,
)
from repro.workloads import build_environment_database

from _support import print_header, print_table

#: Per-category directive bodies over the land_use schema — each produces
#: a different look for the same four classes.
CATEGORY_PROGRAMS = [
    """
    for category surveyors_{i}
    schema land_use display as hierarchy
    class VegetationParcel display presentation as polygonFormat
        instances display attribute canopy_pct as slider
    class Station display presentation as pointFormat
    """,
    """
    for category planners_{i}
    schema land_use display as default
    class VegetationParcel display presentation as pointFormat
        instances display attribute survey_year as Null
    class Road display presentation as lineFormat
    """,
    """
    for category hydrologists_{i}
    schema land_use display as Null
    class River display presentation as lineFormat
        instances display attribute flow_m3s as slider
    """,
]


def build_fleet(db, variants: int):
    """One session per (category variant, directive shape)."""
    library = InterfaceObjectLibrary()
    install_standard_composites(library, persist=False)
    presentations = PresentationRegistry()

    program_text = []
    for i in range(variants):
        for body in CATEGORY_PROGRAMS:
            program_text.append(body.format(i=i))
    program = "\n".join(program_text)
    directives = compile_program(program, db, library, presentations)

    sessions = []
    shared_engine = None
    for i in range(variants):
        for kind in ("surveyors", "planners", "hydrologists"):
            session = GISSession(db, user=f"u_{kind}_{i}",
                                 category=f"{kind}_{i}",
                                 application="atlas",
                                 library=library,
                                 engine=shared_engine)
            if shared_engine is None:
                shared_engine = session.engine
                for directive in directives:
                    shared_engine.register_directive(directive,
                                                     persist=False)
            sessions.append(session)
    return sessions, program, shared_engine


def test_c1_hundred_distinct_windows(capsys, benchmark):
    db = build_environment_database(parcels=8, stations=4, seed=3)
    sessions, program, engine = build_fleet(db, variants=12)

    windows = []
    for session in sessions:
        session.connect("land_use")
        for class_name in ("VegetationParcel", "River", "Road", "Station"):
            if f"classset_{class_name}" not in session.screen.names():
                try:
                    session.select_class(class_name)
                except Exception:
                    session.dispatcher.open_class("land_use", class_name,
                                                  session.context)
        windows.extend(session.screen.windows())

    signatures = {
        (w.title, w.get_property("presentation_format"),
         w.get_property("display_mode"), w.visible,
         str(w.get_property("context")))
        for w in windows
    }
    total_widgets = sum(sum(1 for __ in w.walk()) for w in windows)
    directive_lines = len([ln for ln in program.splitlines() if ln.strip()])

    assert len(windows) > 100
    assert len(signatures) > 100

    with capsys.disabled():
        print_header("C1", "reuse: >100 distinct windows from one library")
        print_table(
            ["metric", "value"],
            [
                ["sessions (contexts)", len(sessions)],
                ["windows built", len(windows)],
                ["distinct window signatures", len(signatures)],
                ["widgets instantiated", total_widgets],
                ["declarative input lines", directive_lines],
                ["widgets per declarative line",
                 f"{total_widgets / directive_lines:.1f}"],
            ],
        )

    for session in sessions:
        if session.engine is not engine:
            session.engine.manager.detach()
    benchmark(lambda: sessions[0].render())


def test_c1_window_build_throughput(benchmark):
    """Windows built per second from the generic model."""
    db = build_environment_database(parcels=8, stations=4, seed=4)
    session = GISSession(db, user="u", application="atlas")
    session.connect("land_use")

    def build_four():
        for class_name in ("VegetationParcel", "River", "Road", "Station"):
            session.dispatcher.open_class("land_use", class_name,
                                          session.context)
        return len(session.screen)

    assert benchmark(build_four) >= 5
