"""Experiment E1 — costs of the reproduction's extension features.

The §2.2 interaction modes beyond exploration (analysis, simulation) and
the HTML renderer are extensions of the paper's prototype; this bench
records what they cost so EXPERIMENTS.md can state them:

* E1a — textual query parse + execution throughput vs. the equivalent
  hand-built predicate objects (the language layer's overhead);
* E1b — simulation scenarios: hypothetical ops + commit vs. direct
  transactions (the sandbox's overhead);
* E1c — renderer throughput: ASCII vs. HTML for the customized screen.
"""

import time

from repro.core import GISSession
from repro.geodb import Comparison, Query, QueryEngine, parse_query, run_query
from repro.lang import FIGURE_6_PROGRAM
from repro.spatial import Point
from repro.uilib import render_screen_html
from repro.workloads import build_phone_net_database

from _support import print_header, print_table


def test_e1a_query_language_overhead(paper_db, capsys, benchmark):
    engine = QueryEngine(paper_db)
    text = "select * from Pole where pole_type = 1"
    built = Query("Pole", where=Comparison("pole_type", "=", 1))

    rounds = 300
    start = time.perf_counter()
    for __ in range(rounds):
        engine.execute("phone_net", built)
    t_built = (time.perf_counter() - start) / rounds
    start = time.perf_counter()
    for __ in range(rounds):
        run_query(paper_db, "phone_net", text)
    t_text = (time.perf_counter() - start) / rounds
    start = time.perf_counter()
    for __ in range(rounds):
        parse_query(text)
    t_parse = (time.perf_counter() - start) / rounds

    with capsys.disabled():
        print_header("E1a", "analysis language: parse overhead per query")
        print_table(
            ["path", "per query"],
            [["pre-built Query object", f"{t_built * 1e6:.0f} us"],
             ["textual (parse + execute)", f"{t_text * 1e6:.0f} us"],
             ["parse alone", f"{t_parse * 1e6:.0f} us"]])
    # parsing adds bounded overhead (at this demo scale execution itself
    # is only ~15 us, so the parse share looks its absolute worst here)
    assert t_text < t_built * 5

    benchmark(lambda: run_query(paper_db, "phone_net", text))


def test_e1b_scenario_overhead(capsys, benchmark):
    def direct(db, count=30):
        start = time.perf_counter()
        for i in range(count):
            db.insert("phone_net", "Pole",
                      {"pole_location": Point(float(i), 0.0)})
        return (time.perf_counter() - start) / count

    def sandboxed(db, count=30):
        start = time.perf_counter()
        scenario = db.scenario("phone_net")
        for i in range(count):
            scenario.insert("Pole",
                            {"pole_location": Point(float(i), 50.0)})
        scenario.commit()
        return (time.perf_counter() - start) / count

    db_direct = build_phone_net_database(name="E1B1")
    db_scenario = build_phone_net_database(name="E1B2")
    t_direct = direct(db_direct)
    t_scenario = sandboxed(db_scenario)

    with capsys.disabled():
        print_header("E1b", "simulation mode: scenario commit overhead")
        print_table(
            ["path", "per insert", "relative"],
            [["direct transactions", f"{t_direct * 1e6:.0f} us", "1.00x"],
             ["scenario stage + commit", f"{t_scenario * 1e6:.0f} us",
              f"{t_scenario / t_direct:.2f}x"]])

    db_bench = build_phone_net_database(name="E1B3")

    def one_discarded_scenario():
        with db_bench.scenario("phone_net") as what_if:
            what_if.insert("Pole", {"pole_location": Point(1.0, 1.0)})
            what_if.run_query("select count(*) from Pole")
        return True

    assert benchmark(one_discarded_scenario)


def test_e1c_renderer_throughput(paper_db, capsys, benchmark):
    session = GISSession(paper_db, user="juliano",
                         application="pole_manager")
    session.install_program(FIGURE_6_PROGRAM, persist=False)
    session.connect("phone_net")
    pole_oid = paper_db.extent("phone_net", "Pole").oids()[0]
    session.select_instance(pole_oid)
    windows = session.screen.windows()

    rounds = 100
    start = time.perf_counter()
    for __ in range(rounds):
        session.render()
    t_ascii = (time.perf_counter() - start) / rounds
    start = time.perf_counter()
    for __ in range(rounds):
        render_screen_html(windows)
    t_html = (time.perf_counter() - start) / rounds

    page = render_screen_html(windows)
    with capsys.disabled():
        print_header("E1c", "renderer throughput (customized 3-window screen)")
        print_table(
            ["backend", "per render", "output size"],
            [["ASCII", f"{t_ascii * 1e6:.0f} us",
              f"{len(session.render())} chars"],
             ["HTML", f"{t_html * 1e6:.0f} us", f"{len(page)} chars"]])

    session.engine.manager.detach()
    benchmark(lambda: render_screen_html(windows))
