"""Reporting helpers shared by the benchmark files."""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator


@contextmanager
def capture_metrics() -> Iterator[Any]:
    """Enable a fresh observability recorder for one benchmark block.

    Yields the live :class:`repro.obs.Recorder`; snapshot it with
    ``recorder.registry.export()`` (or :func:`metrics_snapshot`) before
    the block ends — the recorder is disabled (and its data dropped from
    the global hook) on exit, so benchmarks never leak instrumentation
    cost into each other::

        with capture_metrics() as recorder:
            run_workload()
            snap = recorder.registry.export()
    """
    from repro import obs

    recorder = obs.enable(registry=obs.MetricsRegistry(),
                          tracer=obs.Tracer())
    try:
        yield recorder
    finally:
        obs.disable()


def metrics_snapshot() -> dict[str, Any] | None:
    """The current registry export, or None when observability is off."""
    from repro import obs

    if not obs.is_enabled():
        return None
    return obs.RECORDER.registry.export()


def print_metrics(prefixes: list[str] | None = None) -> None:
    """Print the live metrics table, optionally filtered by name prefix."""
    from repro import obs

    if not obs.is_enabled():
        print("(observability disabled)")
        return
    table = obs.RECORDER.registry.render_table()
    if prefixes:
        lines = [
            line for line in table.splitlines()
            if not line.startswith("  ")
            or any(line.lstrip().startswith(p) for p in prefixes)
        ]
        table = "\n".join(lines)
    print(table)


def print_header(exp_id: str, title: str) -> None:
    print()
    print("=" * 74)
    print(f"[{exp_id}] {title}")
    print("=" * 74)


def print_table(headers: list[str], rows: list[list]) -> None:
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
        for i in range(len(headers))
    ]
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
