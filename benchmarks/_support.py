"""Reporting helpers shared by the benchmark files."""

from __future__ import annotations


def print_header(exp_id: str, title: str) -> None:
    print()
    print("=" * 74)
    print(f"[{exp_id}] {title}")
    print("=" * 74)


def print_table(headers: list[str], rows: list[list]) -> None:
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
        for i in range(len(headers))
    ]
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
