"""Experiment F6 — paper Figure 6: compiling the customization program.

Compiles the paper's 12-line directive for <juliano, pole_manager>,
prints the generated rules in the paper's R1/R2 notation, asserts each
rule matches §4, and times the compiler and the rule-installation path.
"""

from repro.core import CustomizationEngine
from repro.lang import FIGURE_6_PROGRAM, compile_program, render_rules
from repro.uilib import (
    InterfaceObjectLibrary,
    PresentationRegistry,
    install_standard_composites,
)

from _support import print_header


def toolchain():
    library = InterfaceObjectLibrary()
    install_standard_composites(library, persist=False)
    return library, PresentationRegistry()


def test_fig6_generated_rules_match_section4(paper_db, capsys, benchmark):
    library, presentations = toolchain()
    directives = compile_program(FIGURE_6_PROGRAM, paper_db, library,
                                 presentations)
    directive = directives[0]
    rules = render_rules(directive)

    # R1 of §4, including the NULL display and the Get_Class cascade.
    assert "On Get_Schema" in rules[0]
    assert "< juliano, pole_manager >" in rules[0]
    assert "Build Window(Schema, phone_net, NULL); Get_Class(Pole)" in rules[0]
    # R2 of §4.
    assert ("Build Window(Class set, Pole, poleWidget, pointFormat)"
            in rules[1])
    # instance presentation rules for lines (7)-(12)
    assert "pole_composition as composed_text" in rules[2]
    assert "using composed_text.notify()" in rules[2]
    assert "from get_supplier_name(pole_supplier)" in rules[3]
    assert "pole_location as null" in rules[4]

    with capsys.disabled():
        print_header("F6", "Figure 6 directive -> generated active rules")
        print("input program:")
        print(FIGURE_6_PROGRAM)
        print("generated rules (paper §4 notation):")
        for rule in rules:
            print(rule)

    benchmark(lambda: render_rules(directive))


def test_fig6_compile_latency(paper_db, benchmark):
    library, presentations = toolchain()
    directives = benchmark(
        lambda: compile_program(FIGURE_6_PROGRAM, paper_db, library,
                                presentations))
    assert len(directives) == 1


def test_fig6_rule_installation_latency(paper_db, benchmark):
    """Registering a compiled directive = creating its ECA rules."""
    library, presentations = toolchain()
    directives = compile_program(FIGURE_6_PROGRAM, paper_db, library,
                                 presentations)

    def install():
        engine = CustomizationEngine(paper_db.bus)
        directive = directives[0]
        # re-register under a fresh name each round
        from dataclasses import replace

        unique = replace(directive, name=f"{directive.name}_x")
        rules = engine.register_directive(unique, persist=False)
        engine.manager.detach()
        return len(rules)

    assert benchmark(install) == 5
