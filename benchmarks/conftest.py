"""Shared fixtures and reporting helpers for the benchmark harness.

Every experiment of DESIGN.md §4 has one ``bench_*.py`` file here. Each
file both (a) times its kernel with pytest-benchmark and (b) prints the
rows/series the corresponding paper figure or claim describes, so running

    pytest benchmarks/ --benchmark-only -s

regenerates the full experimental record (EXPERIMENTS.md quotes it).
"""

from __future__ import annotations

import pytest

from repro.core import GISSession
from repro.lang import FIGURE_6_PROGRAM
from repro.workloads import PhoneNetParams, build_phone_net_database


@pytest.fixture(scope="module")
def paper_db():
    """The §4 phone-net database at the paper's demo scale."""
    return build_phone_net_database()


@pytest.fixture(scope="module")
def big_db():
    """A larger network for latency benchmarks."""
    return build_phone_net_database(
        PhoneNetParams(blocks_x=8, blocks_y=6, poles_per_street=6,
                       duct_count=20, seed=2024),
        name="GEO_BIG",
    )


@pytest.fixture()
def juliano_session(paper_db):
    session = GISSession(paper_db, user="juliano",
                         application="pole_manager")
    session.install_program(FIGURE_6_PROGRAM, persist=False)
    return session


@pytest.fixture()
def generic_session(paper_db):
    return GISSession(paper_db, user="maria", application="browser")
