"""Experiment C10 — MVCC: what snapshot isolation costs, what it buys.

Snapshot isolation puts a version-chain lookup in front of every
transactional read and a first-committer-wins check in front of every
commit. This experiment prices both sides:

* **snapshot-read overhead** — ``txn.read(oid)`` against the seed read
  path (``db.get_object(oid).values()``) over a database with no write
  traffic (the common case: chain-less oids fall through to the extent)
  and again after every object was updated once (chain-walk case). The
  acceptance gate is the tentpole's ≤1.5x on the chain-less path.
* **concurrent-writer throughput** — committed transactions/second at
  1, 4 and 16 sessions over *disjoint* working sets (the scaling shape:
  no conflicts, commits serialized only by the commit critical section),
  plus a fully *contended* single-counter run at the same session counts
  showing first-committer-wins losses and the retry cost
  (``txn.conflicts``).

Quick mode (``REPRO_BENCH_QUICK=1``, used by the CI smoke step) shrinks
the op counts and skips the ratio assertion.
"""

import os
import threading
import time

from repro.geodb import GeographicDatabase
from repro.workloads import build_mix_schema, commit_with_retries
from repro.workloads.txn_mix import MIX_CLASS, MIX_SCHEMA

from _support import capture_metrics, print_header, print_metrics, print_table

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
READ_OBJECTS = 200 if QUICK else 2000
READ_ROUNDS = 3 if QUICK else 10
WRITER_COMMITS = 40 if QUICK else 300
SESSION_COUNTS = (1, 4, 16)


def _populated_db(objects: int) -> tuple[GeographicDatabase, list[str]]:
    db = GeographicDatabase("bench-mvcc")
    db.register_schema(build_mix_schema())
    oids = []
    with db.transaction() as txn:
        for i in range(objects):
            oids.append(txn.insert(MIX_SCHEMA, MIX_CLASS,
                                   {"name": f"obj-{i}", "size": i},
                                   oid=f"Feature#r{i}"))
    # Collapse the insert-created version chains (as any checkpoint
    # would): the chain-less fall-through is the steady state the read
    # gate prices.
    db.gc_versions()
    return db, oids


def bench_read_paths() -> dict[str, float]:
    """Seconds/read for the seed path and the snapshot path."""
    db, oids = _populated_db(READ_OBJECTS)

    def timed(fn) -> float:
        # Best-of-rounds: the minimum is the standard noise-resistant
        # microbenchmark statistic (scheduler hiccups only ever add).
        fn(oids[:50])  # warmup
        best = float("inf")
        for __ in range(READ_ROUNDS):
            start = time.perf_counter()
            fn(oids)
            best = min(best, (time.perf_counter() - start) / len(oids))
        return best

    def seed_reads(batch):
        for oid in batch:
            db.get_object(oid).values()

    def snapshot_reads(batch):
        txn = db.transaction()
        for oid in batch:
            txn.read(oid)
        txn.abort()

    results = {"seed": timed(seed_reads),
               "snapshot": timed(snapshot_reads)}
    # Now give every object a version chain (one update each) and keep
    # an old snapshot live so GC cannot collapse the chains.
    pin = db.transaction()
    with db.transaction() as txn:
        for oid in oids:
            txn.update(oid, {"size": 0})
    results["snapshot-chains"] = timed(snapshot_reads)
    pin.abort()
    return results


def bench_disjoint_writers(sessions: int) -> dict[str, float]:
    """Commits/second, ``sessions`` threads over disjoint working sets."""
    db = GeographicDatabase("bench-writers")
    db.register_schema(build_mix_schema())
    per_session = max(1, WRITER_COMMITS // sessions)
    for s in range(sessions):
        db.insert(MIX_SCHEMA, MIX_CLASS, {"name": f"w{s}", "size": 0},
                  oid=f"Feature#w{s}")
    errors: list[BaseException] = []
    barrier = threading.Barrier(sessions + 1)

    def worker(s: int) -> None:
        oid = f"Feature#w{s}"

        def bump(txn):
            txn.update(oid, {"size": txn.read(oid)["size"] + 1})

        try:
            barrier.wait()
            for __ in range(per_session):
                commit_with_retries(db, bump)
        except BaseException as exc:
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(s,))
               for s in range(sessions)]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    total = per_session * sessions
    assert all(
        db.get_object(f"Feature#w{s}").get("size") == per_session
        for s in range(sessions)
    )
    return {"commits": total, "per_sec": total / elapsed}


def bench_contended_counter(sessions: int) -> dict[str, float]:
    """All sessions increment one counter: conflicts + retries priced."""
    db = GeographicDatabase("bench-contended")
    db.register_schema(build_mix_schema())
    db.insert(MIX_SCHEMA, MIX_CLASS, {"name": "ctr", "size": 0},
              oid="Feature#ctr")
    per_session = max(1, WRITER_COMMITS // (4 * sessions))
    errors: list[BaseException] = []
    retries_total = [0]
    lock = threading.Lock()
    barrier = threading.Barrier(sessions + 1)

    def bump(txn):
        txn.update("Feature#ctr",
                   {"size": txn.read("Feature#ctr")["size"] + 1})

    def worker() -> None:
        try:
            barrier.wait()
            local = 0
            for __ in range(per_session):
                __, retries = commit_with_retries(db, bump, attempts=2000)
                local += retries
            with lock:
                retries_total[0] += local
        except BaseException as exc:
            errors.append(exc)

    threads = [threading.Thread(target=worker) for __ in range(sessions)]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    total = per_session * sessions
    assert db.get_object("Feature#ctr").get("size") == total
    return {"commits": total, "per_sec": total / elapsed,
            "retries": retries_total[0]}


def run_metrics_sample() -> None:
    """One instrumented contended run, for the observability report."""
    with capture_metrics():
        bench_contended_counter(4)
        print_metrics(["txn.", "mvcc."])


def test_c10_mvcc(capsys):
    reads = bench_read_paths()
    seed_us = reads["seed"] * 1e6
    read_rows = [
        ["seed get_object", f"{seed_us:.2f}us", "1.00x"],
        ["snapshot (no chains)", f"{reads['snapshot'] * 1e6:.2f}us",
         f"{reads['snapshot'] / reads['seed']:.2f}x"],
        ["snapshot (chain walk)",
         f"{reads['snapshot-chains'] * 1e6:.2f}us",
         f"{reads['snapshot-chains'] / reads['seed']:.2f}x"],
    ]
    writer_rows = []
    for sessions in SESSION_COUNTS:
        disjoint = bench_disjoint_writers(sessions)
        contended = bench_contended_counter(sessions)
        writer_rows.append([
            sessions,
            f"{disjoint['per_sec']:.0f}/s",
            f"{contended['per_sec']:.0f}/s",
            contended["retries"],
        ])
    with capsys.disabled():
        print_header("C10", "mvcc: snapshot-read overhead and "
                            "concurrent-writer throughput")
        print_table(["read path", f"per read (n={READ_OBJECTS})",
                     "vs seed"], read_rows)
        print()
        print_table(["sessions", "disjoint commits", "contended commits",
                     "fcw retries"], writer_rows)
        print(f"\ndisjoint working sets scale with sessions (commits "
              f"serialize only in the commit critical section); the "
              f"contended counter pays one first-committer-wins retry "
              f"per lost race — the optimistic-concurrency trade.")
        run_metrics_sample()

    if not QUICK:
        # Acceptance: snapshot reads on chain-less data within 1.5x of
        # the seed read path.
        assert reads["snapshot"] <= 1.5 * reads["seed"], (
            f"snapshot read {reads['snapshot'] * 1e6:.2f}us exceeds 1.5x "
            f"seed read {seed_us:.2f}us"
        )


if __name__ == "__main__":
    class _Capsys:
        class _Ctx:
            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

        def disabled(self):
            return self._Ctx()

    test_c10_mvcc(_Capsys())
    print("\nC10 ok")
