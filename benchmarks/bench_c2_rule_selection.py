"""Experiment C2 — rule selection: the most specific rule wins, at scale.

§3.3: "it is possible to have a set of customization rules activated by an
event, one for each context. In our execution model, only one rule is
selected for execution — the one which has the highest priority ... the
most specific rule."

This experiment registers 10..5000 context rules for the same event and
measures (a) that the correct (most specific) rule is always selected and
(b) how selection latency scales with the rule population.
"""

import time

from repro.active import EventKind
from repro.core import (
    ClassCustomization,
    Context,
    ContextPattern,
    CustomizationDirective,
    CustomizationEngine,
)
from repro.workloads import build_phone_net_database

from _support import print_header, print_table


def populate_rules(engine, count: int) -> None:
    """count rules: one generic, ~half category-level, rest user-level."""
    engine.register_directive(CustomizationDirective(
        name="generic",
        pattern=ContextPattern(application="pm"),
        schema_name="phone_net", schema_display="hierarchy",
        classes=(ClassCustomization("Pole"),),
    ), persist=False)
    for i in range((count - 1) // 2):
        engine.register_directive(CustomizationDirective(
            name=f"cat_{i}",
            pattern=ContextPattern(category=f"cat_{i}", application="pm"),
            schema_name="phone_net",
            classes=(ClassCustomization("Pole"),),
        ), persist=False)
    for i in range(count - 1 - (count - 1) // 2):
        engine.register_directive(CustomizationDirective(
            name=f"user_{i}",
            pattern=ContextPattern(user=f"user_{i}", application="pm"),
            schema_name="phone_net", schema_display="null",
            classes=(ClassCustomization("Pole"),),
        ), persist=False)


def test_c2_selection_correct_and_scaling(capsys, benchmark):
    db = build_phone_net_database()
    rows = []
    for count in (10, 100, 1000, 5000):
        engine = CustomizationEngine(db.bus)
        populate_rules(engine, count)

        # correctness: the named user's rule beats category and generic
        ctx = Context(user="user_0", category="cat_0", application="pm")
        db.get_schema("phone_net", context=ctx)
        decision = engine.schema_decision(db.bus.last_event.event_id)
        assert decision.directive_name == "user_0"

        # the generic user falls back to the generic rule
        db.get_schema("phone_net", context=Context(user="nobody",
                                                   application="pm"))
        decision = engine.schema_decision(db.bus.last_event.event_id)
        assert decision.directive_name == "generic"

        start = time.perf_counter()
        iterations = 50
        for __ in range(iterations):
            db.get_schema("phone_net", context=ctx)
        per_event = (time.perf_counter() - start) / iterations
        rows.append([count, f"{per_event * 1e6:.0f} us"])
        engine.manager.detach()

    with capsys.disabled():
        print_header(
            "C2", "rule selection: most-specific wins; latency vs rule count")
        print_table(["registered rules (x4 ECA rules each)",
                     "selection+dispatch per event"], rows)

    # benchmark the 1000-rule configuration steady state
    engine = CustomizationEngine(db.bus)
    populate_rules(engine, 1000)
    ctx = Context(user="user_3", application="pm")
    result = benchmark(lambda: db.get_schema("phone_net", context=ctx))
    assert result["name"] == "phone_net"
    engine.manager.detach()


def test_c2_priority_order_exhaustive(benchmark):
    """Every specificity pair orders as §3.3 prescribes."""
    patterns = {
        "generic": ContextPattern(),
        "application": ContextPattern(application="a"),
        "category": ContextPattern(category="c", application="a"),
        "user": ContextPattern(user="u", application="a"),
        "user+category": ContextPattern(user="u", category="c",
                                        application="a"),
    }
    order = ["generic", "application", "category", "user", "user+category"]

    def check():
        for lo, hi in zip(order, order[1:]):
            assert patterns[lo].specificity() < patterns[hi].specificity()
        return True

    assert benchmark(check)
