"""Experiment C5 — spatial index vs naive scan behind the map display.

Every ``Get_Class`` map display and every map-window pan issues a window
query ("show the poles in the visible extent"). This experiment sweeps
dataset sizes and measures R-tree window queries against the linear-scan
baseline, locating the crossover that justifies the index, plus the grid
index as a second point of comparison.
"""

import time

from repro.spatial import BBox, GridIndex, RTree
from repro.spatial.rtree import naive_search
from repro.workloads import clustered_points

from _support import print_header, print_table

EXTENT = BBox(0, 0, 10_000, 10_000)


def dataset(size):
    points = clustered_points(size, EXTENT, clusters=12, seed=size)
    return [(p.bbox(), i) for i, p in enumerate(points)]


def windows(count=50, fraction=0.05, seed=1):
    from repro.workloads import pan_zoom_walk

    return list(pan_zoom_walk(EXTENT, fraction, count, seed=seed))


def time_queries(fn, query_windows):
    start = time.perf_counter()
    total = 0
    for window in query_windows:
        total += len(fn(window))
    return (time.perf_counter() - start) / len(query_windows), total


def test_c5_rtree_vs_naive_sweep(capsys, benchmark):
    query_windows = windows()
    rows = []
    crossover = None
    for size in (100, 1_000, 10_000, 50_000):
        entries = dataset(size)
        tree = RTree(max_entries=16)
        for box, item in entries:
            tree.insert(box, item)
        grid = GridIndex(EXTENT, cell_size=250.0)
        for box, item in entries:
            grid.insert(box, item)

        t_naive, n_naive = time_queries(
            lambda w: naive_search(entries, w), query_windows)
        t_tree, n_tree = time_queries(tree.search, query_windows)
        t_grid, n_grid = time_queries(grid.search, query_windows)
        assert n_naive == n_tree == n_grid   # identical answers

        speedup = t_naive / t_tree
        if crossover is None and speedup > 1.0:
            crossover = size
        rows.append([
            size,
            f"{t_naive * 1e6:.0f} us",
            f"{t_tree * 1e6:.0f} us",
            f"{t_grid * 1e6:.0f} us",
            f"{speedup:.1f}x",
        ])

    with capsys.disabled():
        print_header("C5", "window query: naive scan vs R-tree vs grid")
        print_table(
            ["objects", "naive", "rtree", "grid", "rtree speedup"], rows)
        print(f"index wins from ~{crossover} objects onward")

    # shape assertion: the index must clearly win at GIS scales
    final_speedup = float(rows[-1][4][:-1])
    assert final_speedup > 10.0

    entries = dataset(10_000)
    tree = RTree(max_entries=16)
    for box, item in entries:
        tree.insert(box, item)
    window = query_windows[0]
    benchmark(lambda: tree.search(window))


def test_c5_build_cost(capsys, benchmark):
    """Index construction cost — the price paid for query speed."""
    rows = []
    for size in (1_000, 10_000):
        entries = dataset(size)
        start = time.perf_counter()
        tree = RTree(max_entries=16)
        for box, item in entries:
            tree.insert(box, item)
        t_tree = time.perf_counter() - start
        start = time.perf_counter()
        grid = GridIndex(EXTENT, cell_size=250.0)
        for box, item in entries:
            grid.insert(box, item)
        t_grid = time.perf_counter() - start
        rows.append([size, f"{t_tree * 1e3:.1f} ms", f"{t_grid * 1e3:.1f} ms",
                     tree.height])
    with capsys.disabled():
        print_header("C5b", "index build cost")
        print_table(["objects", "rtree build", "grid build", "rtree height"],
                    rows)

    entries = dataset(2_000)

    def build():
        tree = RTree(max_entries=16)
        for box, item in entries:
            tree.insert(box, item)
        return len(tree)

    assert benchmark(build) == 2_000


def test_c5_nearest_neighbor(capsys, benchmark):
    """k-NN (the 'pick nearest pole to the click' operation)."""
    entries = dataset(10_000)
    tree = RTree(max_entries=16)
    for box, item in entries:
        tree.insert(box, item)

    def brute(x, y, k):
        return [i for __, i in sorted(
            entries, key=lambda e: e[0].distance_to_point(x, y))[:k]]

    got = tree.nearest(5_000, 5_000, k=5)
    expected = brute(5_000, 5_000, 5)
    got_d = sorted(entries[i][0].distance_to_point(5_000, 5_000) for i in got)
    exp_d = sorted(entries[i][0].distance_to_point(5_000, 5_000)
                   for i in expected)
    assert all(abs(a - b) < 1e-9 for a, b in zip(got_d, exp_d))

    t0 = time.perf_counter()
    for __ in range(100):
        tree.nearest(5_000, 5_000, k=5)
    t_tree = (time.perf_counter() - t0) / 100
    t0 = time.perf_counter()
    for __ in range(10):
        brute(5_000, 5_000, 5)
    t_brute = (time.perf_counter() - t0) / 10
    with capsys.disabled():
        print_header("C5c", "nearest-neighbor (map pick)")
        print_table(["method", "per query"],
                    [["rtree best-first", f"{t_tree * 1e6:.0f} us"],
                     ["brute force", f"{t_brute * 1e6:.0f} us"]])

    benchmark(lambda: tree.nearest(5_000, 5_000, k=5))


def test_c5_attribute_hash_index(capsys, benchmark):
    """Hash index vs scan for the analysis-mode equality predicates."""
    import time as _time

    from repro.geodb import Comparison, Query, QueryEngine
    from repro.workloads import PhoneNetParams, build_phone_net_database

    db = build_phone_net_database(
        PhoneNetParams(blocks_x=10, blocks_y=8, poles_per_street=8,
                       seed=55), name="C5HASH")
    engine = QueryEngine(db)
    query = Query("Pole", where=Comparison("pole_type", "=", 1))

    t0 = _time.perf_counter()
    for __ in range(50):
        scan = engine.execute("phone_net", query)
    t_scan = (_time.perf_counter() - t0) / 50

    db.create_attribute_index("phone_net", "Pole", "pole_type")
    t0 = _time.perf_counter()
    for __ in range(50):
        hashed = engine.execute("phone_net", query)
    t_hash = (_time.perf_counter() - t0) / 50

    # identical answers (order is unspecified without `order by`)
    assert set(scan.oids()) == set(hashed.oids())
    assert hashed.report["plan"] == "hash-scan"
    with capsys.disabled():
        print_header("C5d", "equality predicate: full scan vs hash index")
        print_table(
            ["plan", "per query", "candidates"],
            [["full-scan", f"{t_scan * 1e6:.0f} us",
              scan.report["candidates"]],
             ["hash-scan", f"{t_hash * 1e6:.0f} us",
              hashed.report["candidates"]],
             ["speedup", f"{t_scan / t_hash:.1f}x", ""]])
    assert t_hash < t_scan

    benchmark(lambda: engine.execute("phone_net", query))
