"""Experiment F5 — paper Figure 5: the database schema for class Pole.

Declares the exact class of Figure 5, verifies every attribute type and
the method signature, round-trips the definition through the catalog
(persistence), and times schema definition + instance validation.
"""

from repro.geodb import (
    BitmapType,
    GeoObject,
    GeographicDatabase,
    GeometryType,
    IntegerType,
    MetadataCatalog,
    ReferenceType,
    TextType,
    TupleType,
)
from repro.spatial import Point
from repro.workloads import build_phone_net_schema

from _support import print_header, print_table


def test_fig5_pole_class_definition(capsys, benchmark):
    schema = benchmark(build_phone_net_schema)
    pole = schema.get_class("Pole")

    expected = [
        ("pole_type", IntegerType),
        ("pole_composition", TupleType),
        ("pole_supplier", ReferenceType),
        ("pole_location", GeometryType),
        ("pole_picture", BitmapType),
        ("pole_historic", TextType),
    ]
    assert [(a.name, type(a.type)) for a in pole.attributes] == expected
    comp = pole.attribute("pole_composition").type
    assert [(n, type(t).tag) for n, t in comp.fields.items()] == [
        ("pole_material", "text"),
        ("pole_diameter", "float"),
        ("pole_height", "float"),
    ]
    assert pole.attribute("pole_supplier").type.class_name == "Supplier"
    assert pole.attribute("pole_location").type.subtype == "point"
    assert pole.methods["get_supplier_name"].signature() == \
        "get_supplier_name(Supplier)"

    with capsys.disabled():
        print_header("F5", "Figure 5 — Class Pole as declared")
        rows = [[a.name, a.type.spec()] for a in pole.attributes]
        rows.append(["Methods:", pole.methods["get_supplier_name"].signature()])
        print_table(["attribute", "type"], rows)


def test_fig5_catalog_roundtrip(benchmark):
    db = GeographicDatabase("F5")
    db.register_schema(build_phone_net_schema())
    catalog = MetadataCatalog(db)
    catalog.save_schema(db.get_schema_object("phone_net"))

    loaded = benchmark(lambda: catalog.load_schema("phone_net"))
    original = db.get_schema_object("phone_net")
    assert loaded.describe() == original.describe()


def test_fig5_instance_validation_cost(benchmark):
    schema = build_phone_net_schema()
    values = {
        "pole_type": 1,
        "pole_composition": {"pole_material": "wood",
                             "pole_diameter": 0.3, "pole_height": 9.0},
        "pole_location": Point(10.0, 20.0),
        "pole_picture": b"\x00" * 64,
        "pole_historic": "installed 1990",
        "install_year": 1990,
        "status": "ok",
    }
    obj = benchmark(lambda: GeoObject.create(schema, "Pole", values))
    assert obj.class_name == "Pole"
