"""Experiment C6 — topological constraint maintenance by active rules.

§5/[11]: "A prototype has been developed to associate a gis with an
active dbms, and it has been used for maintaining topological constraints
in the gis." The same rule engine that customizes the interface here
guards updates.

Reported: violations caught under randomized updates, and the per-commit
overhead the integrity rules add.
"""

import random
import time

from repro.active import ConstraintGuard, ProximityConstraint, RelationConstraint
from repro.errors import ConstraintViolationError
from repro.geodb import (
    Attribute,
    GeoClass,
    GeographicDatabase,
    GeometryType,
)
from repro.spatial import BBox, LineString, Point, Polygon

from _support import print_header, print_table


def make_db():
    db = GeographicDatabase("C6")
    schema = db.create_schema("net")
    schema.add_class(GeoClass("District", [
        Attribute("boundary", GeometryType("polygon"), required=True)]))
    schema.add_class(GeoClass("Street", [
        Attribute("axis", GeometryType("linestring"), required=True)]))
    schema.add_class(GeoClass("Pole", [
        Attribute("loc", GeometryType("point"), required=True)]))
    db.insert("net", "District",
              {"boundary": Polygon.from_bbox(BBox(0, 0, 1000, 1000))})
    for i in range(10):
        y = 100.0 * i + 50.0
        db.insert("net", "Street", {"axis": LineString([(0, y), (1000, y)])})
    return db


def install_guard(db):
    guard = ConstraintGuard(db, "net")
    guard.add(RelationConstraint("Pole", "loc", "within",
                                 "District", "boundary"))
    guard.add(ProximityConstraint("Pole", "loc", "Street", "axis", 25.0))
    return guard


def randomized_inserts(db, count, seed):
    """Mixed workload: some legal positions, some violating ones."""
    rng = random.Random(seed)
    accepted = rejected = 0
    for __ in range(count):
        roll = rng.random()
        if roll < 0.5:           # legal: near a street, inside the district
            street_y = 100.0 * rng.randrange(10) + 50.0
            point = Point(rng.uniform(0, 1000),
                          street_y + rng.uniform(-20, 20))
        elif roll < 0.75:        # violates proximity (mid-block)
            point = Point(rng.uniform(0, 1000),
                          100.0 * rng.randrange(10) + rng.uniform(30, 70))
        else:                    # violates containment (outside district)
            point = Point(rng.uniform(1200, 2000), rng.uniform(0, 1000))
        try:
            db.insert("net", "Pole", {"loc": point})
            accepted += 1
        except ConstraintViolationError:
            rejected += 1
    return accepted, rejected


def test_c6_violations_caught(capsys, benchmark):
    db = make_db()
    guard = install_guard(db)
    accepted, rejected = randomized_inserts(db, 200, seed=6)

    # every surviving pole satisfies both constraints
    assert guard.sweep() == []
    assert accepted + rejected == 200
    assert rejected > 0
    assert db.count("net", "Pole") == accepted

    with capsys.disabled():
        print_header("C6", "constraint maintenance under randomized updates")
        print_table(
            ["metric", "value"],
            [["attempted inserts", 200],
             ["accepted (constraint-satisfying)", accepted],
             ["vetoed by active rules", rejected],
             ["post-hoc sweep violations", 0]])

    benchmark(lambda: guard.sweep())
    guard.manager.detach()


def test_c6_guard_overhead(capsys, benchmark):
    """Per-commit cost of integrity rules vs. an unguarded database."""

    def insert_run(db, count=100, seed=7):
        rng = random.Random(seed)
        start = time.perf_counter()
        for __ in range(count):
            street_y = 100.0 * rng.randrange(10) + 50.0
            db.insert("net", "Pole",
                      {"loc": Point(rng.uniform(0, 1000),
                                    street_y + rng.uniform(-20, 20))})
        return (time.perf_counter() - start) / count

    unguarded = make_db()
    t_plain = insert_run(unguarded)
    guarded = make_db()
    guard = install_guard(guarded)
    t_guarded = insert_run(guarded)

    with capsys.disabled():
        print_header("C6b", "per-insert overhead of integrity rules")
        print_table(["configuration", "per insert", "relative"],
                    [["no constraints", f"{t_plain * 1e6:.0f} us", "1.00x"],
                     ["2 topological constraints",
                      f"{t_guarded * 1e6:.0f} us",
                      f"{t_guarded / t_plain:.2f}x"]])

    benchmark(lambda: guarded.insert(
        "net", "Pole", {"loc": Point(500.0, 150.0 + random.random())}))
    guard.manager.detach()


def test_c6_sweep_scaling(capsys, benchmark):
    """Post-hoc audit cost as the extension grows."""
    rows = []
    for poles in (50, 200, 800):
        db = make_db()
        rng = random.Random(poles)
        for __ in range(poles):
            street_y = 100.0 * rng.randrange(10) + 50.0
            db.insert("net", "Pole",
                      {"loc": Point(rng.uniform(0, 1000),
                                    street_y + rng.uniform(-20, 20))})
        guard = install_guard(db)
        start = time.perf_counter()
        violations = guard.sweep()
        elapsed = time.perf_counter() - start
        rows.append([poles, len(violations), f"{elapsed * 1e3:.1f} ms"])
        guard.manager.detach()
    with capsys.disabled():
        print_header("C6c", "full-database audit (sweep) scaling")
        print_table(["poles", "violations", "sweep time"], rows)

    db = make_db()
    guard = install_guard(db)
    benchmark(lambda: guard.sweep())
    guard.manager.detach()
