"""Experiment C15 — tiled raster storage: windowed reads and crash safety.

Two questions about the raster subsystem (docs/RASTER.md):

* **Windowed-read efficiency** — the point of the tile directory is
  that a viewport-sized read touches only the tiles its window
  intersects. A 512x512 raster holds an 8x8 grid of 64-px level-0
  tiles; a centered viewport covering 1/16 of the ground area must
  read at most **1/8** of the tiles a full-level read touches (it
  actually reads 4 of 64). The gate is structural (tile counters, not
  wall clock), so it holds in quick mode too; the timing columns are
  reported for context.

* **Tile crash matrix** — a raster overwrite is a multi-page,
  multi-tile WAL batch. Crashing the log 'disk' at every write index
  of that batch — clean stop and torn page — and recovering must land
  on exactly the pre-commit pixels or the fully-committed pixels,
  byte-identical at every pyramid level, never a blend. A scalar
  attribute committed alongside the pixels pins which state recovery
  chose.

Quick mode (``REPRO_BENCH_QUICK=1``, the CI smoke step) thins the
crash matrix stride and skips the wall-clock commentary; the
structural gates always run. ``REPRO_CRASH_MATRIX_QUICK=1`` thins the
matrix alone.
"""

import os
import time

from repro.errors import CrashError
from repro.geodb import (
    RASTER,
    TEXT,
    Attribute,
    FaultInjectingPager,
    GeoClass,
    GeographicDatabase,
    MemoryPager,
    Schema,
    WriteAheadLog,
)
from repro.geodb.raster import DEFAULT_TILE, downsample, level_count
from repro.spatial.geometry import BBox
from repro.spatial.scale import Viewport
from repro.workloads import synthetic_raster

from _support import print_header, print_table

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
CRASH_QUICK = QUICK or bool(os.environ.get("REPRO_CRASH_MATRIX_QUICK"))
CRASH_STRIDE = 4 if CRASH_QUICK else 1

SIDE = 512          # 8x8 grid of 64-px tiles at level 0
CRASH_SIDE = 96     # 2x2 + 1 overview tile: small but multi-page


def _schema() -> Schema:
    schema = Schema("img")
    schema.add_class(GeoClass("Scan", attributes=[
        Attribute("name", TEXT, required=True),
        Attribute("scan", RASTER),
    ]))
    return schema


# ---------------------------------------------------------------------------
# Windowed reads vs a full-level sweep
# ---------------------------------------------------------------------------


def run_windowed():
    db = GeographicDatabase("c15", pager=MemoryPager(), buffer_capacity=256)
    db.attach_wal(WriteAheadLog(MemoryPager(), sync_mode="none"))
    db.register_schema(_schema())
    extent = BBox(0.0, 0.0, float(SIDE), float(SIDE))
    raster = synthetic_raster(SIDE, SIDE, seed=15, extent=extent)
    with db.transaction() as txn:
        oid = txn.insert("img", "Scan", {"name": "ortho", "scan": raster})
    ref = db.get_object(oid).get("scan")
    db.checkpoint()
    db.buffer.clear()  # both reads start from a cold pool
    store = db.raster_store

    # the browsing context: a viewport zoomed 4x about the center —
    # 1/16 of the ground area at a cell size that selects level 0
    viewport = Viewport(extent, SIDE, SIDE).zoomed(4.0)

    before = store.tile_reads
    start = time.perf_counter()
    window = store.read_window(ref, viewport.extent, viewport)
    window_s = time.perf_counter() - start
    window_tiles = store.tile_reads - before

    before = store.tile_reads
    start = time.perf_counter()
    full = store.read_level(ref, window.level)
    full_s = time.perf_counter() - start
    full_tiles = store.tile_reads - before

    # correctness alongside the counters: the window is the slice
    level_pixels, lw, __ = downsample(raster.pixels, SIDE, SIDE,
                                      window.level)
    sliced = b"".join(
        level_pixels[(window.y + row) * lw + window.x:
                     (window.y + row) * lw + window.x + window.width]
        for row in range(window.height)
    )
    assert window.pixels == sliced
    assert full == level_pixels

    return {
        "level": window.level,
        "window_tiles": window_tiles,
        "full_tiles": full_tiles,
        "window_ms": window_s * 1000.0,
        "full_ms": full_s * 1000.0,
        "fraction": window_tiles / full_tiles,
    }


# ---------------------------------------------------------------------------
# The tile crash matrix
# ---------------------------------------------------------------------------


def _crash_raster(seed):
    return synthetic_raster(CRASH_SIDE, CRASH_SIDE, seed=seed,
                            extent=BBox(0.0, 0.0, float(CRASH_SIDE),
                                        float(CRASH_SIDE)))


def _build_crashable():
    heap_inner, wal_inner = MemoryPager(), MemoryPager()
    wal_fault = FaultInjectingPager(wal_inner)
    db = GeographicDatabase("c15-crash", pager=FaultInjectingPager(heap_inner),
                            buffer_capacity=64)
    db.register_schema(_schema())
    db.attach_wal(WriteAheadLog(wal_fault, sync_mode="none"))
    with db.transaction() as txn:
        txn.insert("img", "Scan", {"name": "before",
                                   "scan": _crash_raster(1)},
                   oid="Scan#log")
    db.checkpoint()
    wal_fault.arm(None)
    return db, heap_inner, wal_inner, wal_fault


def _overwrite(db):
    with db.transaction() as txn:
        txn.update("Scan#log", {"name": "after", "scan": _crash_raster(2)})


def _recovered_state(heap_inner, wal_inner):
    db = GeographicDatabase("c15-crash", pager=heap_inner,
                            buffer_capacity=64)
    db.register_schema(_schema())
    db.load_from_storage()
    db.attach_wal(WriteAheadLog(wal_inner, sync_mode="none"))
    db.recover()
    obj = db.get_object("Scan#log")
    ref = obj.get("scan")
    levels = tuple(db.raster_store.read_level(ref, lv)
                   for lv in range(ref.levels))
    return obj.get("name"), levels


def _pyramid(raster):
    levels = level_count(raster.width, raster.height, DEFAULT_TILE)
    return tuple(
        downsample(raster.pixels, raster.width, raster.height, lv)[0]
        for lv in range(levels)
    )


def run_crash_matrix(torn):
    before_levels = _pyramid(_crash_raster(1))
    after_levels = _pyramid(_crash_raster(2))

    db, __, __, wal_fault = _build_crashable()
    _overwrite(db)
    budget = wal_fault.writes
    assert budget >= 4, "the tile batch must span multiple WAL pages"

    crashes = pre = post = 0
    for n in range(0, budget, CRASH_STRIDE):
        db, heap_inner, wal_inner, wal_fault = _build_crashable()
        wal_fault.arm(n, torn=torn)
        try:
            _overwrite(db)
        except CrashError:
            crashes += 1
        name, levels = _recovered_state(heap_inner, wal_inner)
        if name == "after":
            post += 1
            assert levels == after_levels, (
                f"crash at write {n} ({'torn' if torn else 'clean'}): "
                "committed raster not byte-identical after recovery"
            )
        else:
            pre += 1
            assert name == "before" and levels == before_levels, (
                f"crash at write {n} ({'torn' if torn else 'clean'}): "
                "recovery left neither pre- nor post-commit pixels"
            )
    assert crashes > 0
    return {
        "mode": "torn" if torn else "clean",
        "budget": budget,
        "points": crashes,
        "pre": pre,
        "post": post,
    }


# ---------------------------------------------------------------------------
# The experiment
# ---------------------------------------------------------------------------


def test_c15_raster(capsys):
    windowed = run_windowed()
    matrix = [run_crash_matrix(torn) for torn in (False, True)]

    with capsys.disabled():
        print_header("C15", "tiled rasters: windowed reads and the tile "
                            "crash matrix")
        print(f"\n{SIDE}x{SIDE} raster, 64-px tiles, 1/16-area viewport "
              f"at level {windowed['level']}:")
        print_table(
            ["read", "tiles", "ms"],
            [["window", windowed["window_tiles"],
              f"{windowed['window_ms']:.2f}"],
             ["full level", windowed["full_tiles"],
              f"{windowed['full_ms']:.2f}"]],
        )
        print(f"\nwindow touches {windowed['fraction']:.1%} of the tiles "
              "(gate: <= 12.5%)")
        print(f"\ntile crash matrix over a {CRASH_SIDE}x{CRASH_SIDE} "
              f"overwrite (stride {CRASH_STRIDE}):")
        print_table(
            ["mode", "wal writes", "crash points", "pre-commit",
             "committed"],
            [[r["mode"], r["budget"], r["points"], r["pre"], r["post"]]
             for r in matrix],
        )
        print("\nevery crash point recovered to byte-identical pixels "
              "(all pyramid levels) or the clean pre-commit state")

    # Acceptance: the tile directory must actually prune the read --
    # a 1/16-area window may touch at most 1/8 of the level's tiles.
    assert windowed["window_tiles"] * 8 <= windowed["full_tiles"], (
        f"window read {windowed['window_tiles']} of "
        f"{windowed['full_tiles']} tiles, beyond the 1/8 gate"
    )
    # The matrix gates are asserted inside run_crash_matrix; both modes
    # must have exercised at least one genuine torn-prefix point.
    assert all(r["points"] > 0 for r in matrix)


if __name__ == "__main__":
    class _Capsys:
        class _Ctx:
            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

        def disabled(self):
            return self._Ctx()

    test_c15_raster(_Capsys())
