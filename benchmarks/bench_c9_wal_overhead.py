"""Experiment C9 — write-ahead logging: what durability costs.

The durability subsystem (docs/DURABILITY.md) buys atomic commit and
crash recovery with extra work on the commit path: framing + CRC of the
redo records, the log page writes, and the commit barrier (nothing,
``flush`` or ``fsync`` depending on the sync mode). This experiment
prices that against the no-WAL seed behaviour on the same file-backed
database:

* **single-statement** transactions (auto-commit, one insert each) —
  the worst case: every statement pays a full barrier;
* **batched** transactions (50 statements per commit) — the intended
  shape: one barrier amortized over the batch.

The acceptance target is on the amortized path: batched commit latency
under the full-durability mode (``fsync``) must stay within 2.5x the
no-WAL baseline. The single-statement fsync number is reported honestly
— it is dominated by device sync latency and is exactly why databases
batch, group-commit, or drop to ``flush``.

Quick mode (``REPRO_BENCH_QUICK=1``, used by the CI smoke step) shrinks
the op counts and skips the ratio assertions.
"""

import os
import shutil
import tempfile
import time

from repro.geodb import FilePager, GeographicDatabase, WriteAheadLog
from repro.workloads import build_mix_schema
from repro.workloads.txn_mix import MIX_CLASS, MIX_SCHEMA

from _support import capture_metrics, print_header, print_metrics, print_table

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
SINGLE_OPS = 40 if QUICK else 200
BATCHED_OPS = 400 if QUICK else 3000
BATCH = 50
#: WAL configurations; None = the pre-WAL seed behaviour (no log at all).
MODES = (None, "none", "flush", "fsync")


def _label(mode: str | None) -> str:
    return "no-wal" if mode is None else f"wal-{mode}"


def run_workload(mode: str | None, ops: int, batch: int) -> dict:
    """Insert ``ops`` objects in ``batch``-sized transactions; seconds/op."""
    tmp = tempfile.mkdtemp(prefix="bench_c9_")
    try:
        path = os.path.join(tmp, "bench.db")
        db = GeographicDatabase("bench", pager=FilePager(path))
        db.register_schema(build_mix_schema())
        if mode is not None:
            db.attach_wal(WriteAheadLog.open(path + ".wal", sync_mode=mode))
        # untimed warmup: first-commit code paths, page allocation
        with db.transaction() as txn:
            for i in range(5):
                txn.insert(MIX_SCHEMA, MIX_CLASS,
                           {"name": f"warm-{i}", "size": i},
                           oid=f"Feature#warm{i}")
        done = 0
        start = time.perf_counter()
        while done < ops:
            with db.transaction() as txn:
                for __ in range(min(batch, ops - done)):
                    txn.insert(MIX_SCHEMA, MIX_CLASS,
                               {"name": f"obj-{done}", "size": done},
                               oid=f"Feature#b{done}")
                    done += 1
        elapsed = time.perf_counter() - start
        wal_stats = db.wal.stats() if db.wal is not None else {}
        db.close()
        return {"per_op": elapsed / ops, "wal": wal_stats}
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def run_grid() -> dict[tuple[str, str], dict]:
    results: dict[tuple[str, str], dict] = {}
    for mode in MODES:
        results[(_label(mode), "single")] = run_workload(mode, SINGLE_OPS, 1)
        results[(_label(mode), "batched")] = run_workload(
            mode, BATCHED_OPS, BATCH)
    return results


def run_metrics_sample() -> None:
    """One instrumented fsync-mode run, for the observability report."""
    with capture_metrics():
        run_workload("fsync", BATCH * 2, BATCH)
        print_metrics(["wal.", "txn.", "buffer.write_allocs"])


def test_c9_wal_overhead(capsys):
    grid = run_grid()

    def us(key):
        return grid[key]["per_op"] * 1e6

    rows = []
    for mode in MODES:
        label = _label(mode)
        single = us((label, "single"))
        batched = us((label, "batched"))
        fsyncs = grid[(label, "single")]["wal"].get("fsyncs", 0)
        rows.append([
            label,
            f"{single:.1f}us",
            f"{single / us(('no-wal', 'single')):.2f}x",
            f"{batched:.1f}us",
            f"{batched / us(('no-wal', 'batched')):.2f}x",
            fsyncs or "-",
        ])
    with capsys.disabled():
        print_header("C9", "write-ahead log overhead: commit latency "
                           "per statement vs the no-WAL seed")
        print_table(
            ["mode", "single", "vs seed", f"batched({BATCH})", "vs seed",
             "fsyncs"],
            rows,
        )
        print(f"\nsingle-statement fsync pays one device sync per insert "
              f"({grid[('wal-fsync', 'single')]['wal'].get('fsyncs', 0)} "
              f"syncs for {SINGLE_OPS} ops); batching amortizes it "
              f"{BATCH}-fold — that is the supported shape for bulk loads.")
        run_metrics_sample()

    if not QUICK:
        # Acceptance: durability within 2.5x of the seed when amortized.
        assert us(("wal-fsync", "batched")) <= \
            2.5 * us(("no-wal", "batched"))
        # The barrier-free log costs bookkeeping only, even per-statement.
        assert us(("wal-none", "single")) <= \
            2.5 * us(("no-wal", "single"))


if __name__ == "__main__":
    class _Capsys:
        class _Ctx:
            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

        def disabled(self):
            return self._Ctx()

    test_c9_wal_overhead(_Capsys())
    print("\nC9 ok")
