"""Experiment F7 — paper Figure 7: the customized interface windows.

Runs the complete §4 session under the compiled Figure 6 rules, prints
the customized Class-set and Instance windows (the reproduction of the
Figure 7 screenshots), diffs them against the Figure 4 defaults, and
times the customized interaction path.
"""

from repro.core import GISSession
from repro.lang import FIGURE_6_PROGRAM
from repro.ui import displayed_attribute_names, map_symbols, summarize_window

from _support import print_header, print_table


def test_fig7_customized_windows(paper_db, juliano_session, capsys,
                                 benchmark):
    session = juliano_session
    session.connect("phone_net")
    pole_oid = paper_db.extent("phone_net", "Pole").oids()[0]
    session.select_instance(pole_oid)

    class_window = session.screen.window("classset_Pole")
    instance_window = session.screen.window(f"instance_{pole_oid}")

    # Figure 7 left: customized Class-set window
    assert not session.screen.window("schema_phone_net").visible
    assert class_window.find("class_widget_Pole").widget_type == "slider"
    assert map_symbols(class_window) == {"o"}
    # Figure 7 right: customized Instance window
    shown = displayed_attribute_names(instance_window)
    assert "pole_location" not in shown
    assert "pole_composition" in shown and "pole_supplier" in shown

    with capsys.disabled():
        print_header("F7", "Figure 7 — customized interface windows")
        print(session.render("classset_Pole"))
        print()
        print(session.render(f"instance_{pole_oid}"))

    benchmark(lambda: session.render(f"instance_{pole_oid}"))


def test_fig7_default_vs_customized_diff(paper_db, capsys, benchmark):
    """The exact structural delta the customization bought."""
    pole_oid = paper_db.extent("phone_net", "Pole").oids()[0]

    generic = GISSession(paper_db, user="maria", application="browser")
    generic.connect("phone_net")
    generic.select_class("Pole")
    generic.select_instance(pole_oid)

    custom = GISSession(paper_db, user="juliano",
                        application="pole_manager")
    custom.install_program(FIGURE_6_PROGRAM, persist=False)
    custom.connect("phone_net")
    custom.select_instance(pole_oid)

    g_class = summarize_window(generic.screen.window("classset_Pole"))
    c_class = summarize_window(custom.screen.window("classset_Pole"))
    g_inst = summarize_window(generic.screen.window(f"instance_{pole_oid}"))
    c_inst = summarize_window(custom.screen.window(f"instance_{pole_oid}"))

    rows = [
        ["schema window visible", "yes", "no (NULL)"],
        ["class control widget", "button", "poleWidget (slider)"],
        ["class presentation", g_class.presentation_format,
         c_class.presentation_format],
        ["map symbol", "*", "o"],
        ["map features", g_class.feature_count, c_class.feature_count],
        ["instance attribute panels",
         len(displayed_attribute_names(
             generic.screen.window(f"instance_{pole_oid}"))),
         len(displayed_attribute_names(
             custom.screen.window(f"instance_{pole_oid}")))],
        ["instance widgets", g_inst.widget_count, c_inst.widget_count],
    ]
    with capsys.disabled():
        print_header("F7b", "default (Fig 4) vs customized (Fig 7)")
        print_table(["aspect", "default", "customized"], rows)

    assert c_class.presentation_format == "pointFormat"
    assert g_class.feature_count == c_class.feature_count

    custom.engine.manager.detach()
    generic.engine.manager.detach()
    benchmark(lambda: summarize_window(
        custom.screen.window("classset_Pole")))


def test_fig7_customized_session_latency(paper_db, benchmark):
    """Cost of the full customized §4 loop (compare with F4's default)."""
    pole_oid = paper_db.extent("phone_net", "Pole").oids()[0]

    def loop():
        session = GISSession(paper_db, user="juliano",
                             application="pole_manager")
        session.install_program(FIGURE_6_PROGRAM, persist=False)
        session.connect("phone_net")
        session.select_instance(pole_oid)
        session.engine.manager.detach()
        return len(session.screen)

    assert benchmark(loop) == 3
