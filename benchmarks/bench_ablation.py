"""Experiment A1 — ablations of the reproduction's design choices.

Three internal design decisions get justified against their obvious
alternatives:

* **A1a — specificity encoding.** Context priority uses weighted bits
  (user=16, category=8, application=4, scale=2, time=1) rather than
  counting non-wildcard dimensions. The ablation shows dimension-counting
  *violates* the paper's ordering: a category+application+scale+time rule
  (4 dimensions) would outrank a bare user rule (1 dimension), but §3.3
  demands "a particular user within the category" to win.
* **A1b — R-tree fanout.** Query/build trade-off across node capacities;
  the default (16) sits at the knee.
* **A1c — rule coupling.** Immediate vs deferred coupling for
  customization rules: deferred batches rule work but the dispatcher
  would have to flush before building, so immediate wins on the
  interaction path; the measurement shows the overhead either way.
"""

import time

from repro.active import Coupling, Event, EventBus, EventKind, RuleManager
from repro.core import ContextPattern
from repro.spatial import BBox, RTree
from repro.workloads import clustered_points, pan_zoom_walk

from _support import print_header, print_table


# ---------------------------------------------------------------------------
# A1a — specificity encoding
# ---------------------------------------------------------------------------


def dimension_count(pattern: ContextPattern) -> int:
    """The naive alternative: count the non-wildcard dimensions."""
    return sum(
        value is not None
        for value in (pattern.user, pattern.category, pattern.application,
                      pattern.scale_range, pattern.time_tag)
    )


def test_a1a_weighted_vs_counted_specificity(capsys, benchmark):
    bare_user = ContextPattern(user="juliano")
    loaded_category = ContextPattern(category="eng", application="pm",
                                     scale_range=(1.0, 10.0),
                                     time_tag="planning")

    # the paper's ordering: the user-specific rule must win
    assert bare_user.specificity() > loaded_category.specificity()
    # the naive encoding gets it backwards
    assert dimension_count(bare_user) < dimension_count(loaded_category)

    with capsys.disabled():
        print_header("A1a", "specificity: weighted bits vs dimension count")
        print_table(
            ["pattern", "weighted", "counted", "paper ordering"],
            [["user juliano", bare_user.specificity(),
              dimension_count(bare_user), "must WIN"],
             ["category+application+scale+time",
              loaded_category.specificity(),
              dimension_count(loaded_category), "must lose"],
             ["verdict", "correct", "WRONG (4 > 1)", ""]])

    benchmark(bare_user.specificity)


# ---------------------------------------------------------------------------
# A1b — R-tree fanout
# ---------------------------------------------------------------------------


def test_a1b_rtree_fanout(capsys, benchmark):
    extent = BBox(0, 0, 10_000, 10_000)
    entries = [(p.bbox(), i)
               for i, p in enumerate(clustered_points(5_000, extent,
                                                      seed=11))]
    queries = list(pan_zoom_walk(extent, 0.05, 40, seed=12))
    rows = []
    best = None
    for fanout in (4, 8, 16, 32, 64):
        start = time.perf_counter()
        tree = RTree(max_entries=fanout)
        for box, item in entries:
            tree.insert(box, item)
        build = time.perf_counter() - start
        start = time.perf_counter()
        for window in queries:
            tree.search(window)
        query = (time.perf_counter() - start) / len(queries)
        rows.append([fanout, tree.height, f"{build * 1e3:.0f} ms",
                     f"{query * 1e6:.0f} us"])
        if best is None or query < best[1]:
            best = (fanout, query)
    with capsys.disabled():
        print_header("A1b", "R-tree fanout ablation (5k points)")
        print_table(["max_entries", "height", "build", "per query"], rows)
        print(f"fastest query fanout in this run: {best[0]}")

    tree = RTree(max_entries=16)
    for box, item in entries[:1000]:
        tree.insert(box, item)
    window = queries[0]
    benchmark(lambda: tree.search(window))


# ---------------------------------------------------------------------------
# A1c — rule coupling mode
# ---------------------------------------------------------------------------


def test_a1c_coupling_modes(capsys, benchmark):
    def run(coupling: Coupling, events: int = 2_000) -> float:
        bus = EventBus()
        manager = RuleManager(bus)
        counter = [0]
        manager.define(
            "count", [EventKind.GET_CLASS], lambda e: True,
            lambda e, m: counter.__setitem__(0, counter[0] + 1),
            coupling=coupling)
        start = time.perf_counter()
        for i in range(events):
            bus.publish(Event(EventKind.GET_CLASS, f"C{i}"))
        if coupling is Coupling.DEFERRED:
            manager.flush_deferred()
        elapsed = time.perf_counter() - start
        assert counter[0] == events
        manager.detach()
        return elapsed / events

    t_immediate = run(Coupling.IMMEDIATE)
    t_deferred = run(Coupling.DEFERRED)
    with capsys.disabled():
        print_header("A1c", "rule coupling: immediate vs deferred")
        print_table(
            ["coupling", "per event", "interaction-path consequence"],
            [["immediate", f"{t_immediate * 1e6:.1f} us",
              "decision ready when the builder runs (chosen)"],
             ["deferred", f"{t_deferred * 1e6:.1f} us",
              "dispatcher must flush before every build"]])

    bus = EventBus()
    manager = RuleManager(bus)
    manager.define("noop", [EventKind.GET_CLASS], lambda e: True,
                   lambda e, m: None)
    event = Event(EventKind.GET_CLASS, "C")
    benchmark(lambda: bus.publish(event))
    manager.detach()
