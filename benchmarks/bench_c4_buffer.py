"""Experiment C4 — buffer management under map-browsing workloads.

§2.1: "the interface has to provide large buffers to temporarily store
and manipulate the data retrieved from the spatial dbms ... Efficient
management of buffers is thus a typical dbms problem." The architecture
moves the buffers into the DBMS; this experiment shows the LRU buffer
paying off under the pan/zoom locality of exploratory map browsing.

Series reported: hit ratio and pager reads vs. buffer capacity, against a
no-buffer baseline, for a fixed pan/zoom trace.
"""

from repro.geodb import GeographicDatabase, FilePager
from repro.geodb.buffer import BufferManager
from repro.geodb.storage import HeapFile
from repro.spatial import BBox
from repro.workloads import (
    PhoneNetParams,
    build_phone_net_schema,
    pan_zoom_walk,
    populate_phone_net,
    register_pole_methods,
)

from _support import print_header, print_table


def make_file_db(tmp_path, buffer_capacity):
    db = GeographicDatabase(
        "C4", pager=FilePager(str(tmp_path / f"c4_{buffer_capacity}.db")),
        buffer_capacity=buffer_capacity)
    db.register_schema(build_phone_net_schema())
    register_pole_methods(db)
    populate_phone_net(db, PhoneNetParams(blocks_x=6, blocks_y=5,
                                          poles_per_street=5, seed=4))
    return db


def browse(db, steps=120):
    """Pan/zoom over the pole layer, materializing records per window."""
    extent = BBox(0, 0, 720, 600)
    touched = 0
    for window in pan_zoom_walk(extent, 0.25, steps, seed=9):
        for obj in db.window_query("phone_net", "Pole", "pole_location",
                                   window):
            # Materialize from storage (the display path reads records).
            db.heap.read(db._rids[obj.oid])
            touched += 1
    return touched


def test_c4_hit_ratio_vs_capacity(tmp_path, capsys, benchmark):
    rows = []
    for capacity in (2, 4, 8, 16, 64):
        db = make_file_db(tmp_path, capacity)
        db.pager.reads = 0
        db.buffer.stats.hits = db.buffer.stats.misses = 0
        touched = browse(db)
        stats = db.buffer.stats
        rows.append([
            capacity, touched, stats.accesses,
            f"{stats.hit_ratio:.3f}", db.pager.reads,
        ])
        db.pager.close()

    with capsys.disabled():
        print_header("C4", "buffer hit ratio vs capacity (pan/zoom trace)")
        print_table(
            ["frames", "records shown", "page accesses", "hit ratio",
             "disk reads"], rows)

    # More frames must monotonically not hurt: big buffer >= tiny buffer.
    hit_small = float(rows[0][3])
    hit_large = float(rows[-1][3])
    assert hit_large >= hit_small
    assert hit_large > 0.9   # the trace has strong locality

    db = make_file_db(tmp_path, 64)
    benchmark(lambda: browse(db, steps=20))
    db.pager.close()


def test_c4_buffer_vs_no_buffer_disk_traffic(tmp_path, capsys, benchmark):
    """Same trace, identical heap, with and without the buffer."""
    db = make_file_db(tmp_path, 64)
    db.pager.reads = 0
    browse(db)
    buffered_reads = db.pager.reads

    # Rewire the heap straight to the pager (no buffer interposed).
    # Flush first: the write-back buffer still holds dirty frames.
    db.buffer.flush()
    db.heap._read = db.heap._read_direct
    db.heap._write = db.heap._write_direct
    db.pager.reads = 0
    browse(db)
    raw_reads = db.pager.reads

    with capsys.disabled():
        print_header("C4b", "disk reads: buffered vs unbuffered")
        print_table(["configuration", "disk reads"],
                    [["64-frame LRU buffer", buffered_reads],
                     ["no buffer (baseline)", raw_reads],
                     ["reduction", f"{raw_reads / max(1, buffered_reads):.0f}x"]])

    assert buffered_reads * 5 < raw_reads   # the buffer must clearly win

    # restore the buffer and benchmark the buffered read path
    db.heap.attach_buffer(db.buffer)
    rid = next(iter(db._rids.values()))
    benchmark(lambda: db.heap.read(rid))
    db.pager.close()


def test_c4_eviction_pressure(tmp_path, benchmark, capsys):
    """An undersized buffer thrashes: evictions per access climb."""
    rows = []
    for capacity in (2, 8, 32):
        db = make_file_db(tmp_path, capacity)
        db.buffer.stats.evictions = 0
        db.buffer.stats.hits = db.buffer.stats.misses = 0
        browse(db, steps=60)
        stats = db.buffer.stats
        rows.append([capacity,
                     f"{stats.evictions / max(1, stats.accesses):.3f}"])
        db.pager.close()
    with capsys.disabled():
        print_header("C4c", "evictions per access vs capacity")
        print_table(["frames", "evictions/access"], rows)
    assert float(rows[0][1]) > float(rows[-1][1])

    pager_db = make_file_db(tmp_path, 8)
    manager = BufferManager(pager_db.pager, capacity=8)
    heap = HeapFile(pager_db.pager)
    heap.attach_buffer(manager)
    records = list(heap.scan())[:20]
    benchmark(lambda: [heap.read(rid) for rid, __ in records])
    pager_db.pager.close()
