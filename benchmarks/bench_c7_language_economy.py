"""Experiment C7 — declarative customization vs. hand-coded interfaces.

§2.2 criticizes the toolkit approach because "customization cost is
increased due to the need of an application programmer to develop
completely new interface code"; §3.4 positions the declarative language
as the fix. This experiment quantifies the economy:

* the paper's §4 customization as a directive (tokens, lines) vs. the
  equivalent hand-written variant code in the hardwired baseline;
* how directive size scales with customization complexity, vs. the
  imperative equivalent (estimated from the baseline's per-clause costs);
* end-to-end time to *deploy* a customization: compile+register (live,
  no restart) vs. the conventional edit-recompile-restart cycle, for
  which we charge only the re-instantiation work our process can measure
  (a deliberately generous lower bound for the baseline).
"""

import inspect

from repro.baselines import hardwired
from repro.core import CustomizationEngine
from repro.lang import FIGURE_6_PROGRAM, compile_program, parse_program
from repro.lang.lexer import tokenize
from repro.uilib import (
    InterfaceObjectLibrary,
    PresentationRegistry,
    install_standard_composites,
)

from _support import print_header, print_table


def count_code(text: str) -> tuple[int, int]:
    """(non-empty lines, tokens-ish) of a code block."""
    lines = [ln for ln in text.splitlines()
             if ln.strip() and not ln.strip().startswith(("#", "--"))]
    return len(lines), sum(len(ln.split()) for ln in lines)


def test_c7_directive_vs_hardwired_size(capsys, benchmark):
    directive_lines, directive_tokens = count_code(FIGURE_6_PROGRAM)
    hardwired_source = inspect.getsource(
        hardwired.install_pole_manager_variants)
    hard_lines, hard_tokens = count_code(hardwired_source)

    with capsys.disabled():
        print_header(
            "C7", "the §4 customization: declarative vs hand-coded size")
        print_table(
            ["artifact", "lines", "tokens", "ratio vs directive"],
            [["Figure 6 directive", directive_lines, directive_tokens,
              "1.0x"],
             ["hardwired variants (imperative)", hard_lines, hard_tokens,
              f"{hard_lines / directive_lines:.1f}x"]])

    # The paper's economy claim: the declarative form is much smaller.
    assert hard_lines > directive_lines * 3

    benchmark(lambda: tokenize(FIGURE_6_PROGRAM))


def test_c7_scaling_with_complexity(paper_db, capsys, benchmark):
    """Directive size as the customization covers more attributes."""
    library = InterfaceObjectLibrary()
    install_standard_composites(library, persist=False)
    presentations = PresentationRegistry()

    attr_clauses = [
        "display attribute pole_location as Null",
        "display attribute pole_picture as image",
        "display attribute pole_historic as text",
        "display attribute pole_composition as composed_text"
        " from pole.material pole.diameter pole.height"
        " using composed_text.notify()",
        "display attribute pole_supplier as text"
        " from get_supplier_name(pole_supplier)",
        "display attribute pole_type as slider",
    ]
    rows = []
    for n in range(1, len(attr_clauses) + 1):
        source = (
            "for user juliano application pole_manager\n"
            "schema phone_net display as Null\n"
            "class Pole display control as poleWidget "
            "presentation as pointFormat\n"
            "instances\n" + "\n".join(attr_clauses[:n])
        )
        lines, tokens = count_code(source)
        directives = compile_program(source, paper_db, library,
                                     presentations)
        rules = 2 + n   # schema + class + per-attribute rules
        rows.append([n, lines, tokens, rules])
    with capsys.disabled():
        print_header("C7b", "directive size vs customization complexity")
        print_table(
            ["customized attributes", "directive lines",
             "directive tokens", "generated rules"], rows)
    assert rows[-1][3] == 8

    benchmark(lambda: parse_program(source))


def test_c7_live_deployment(paper_db, capsys, benchmark):
    """Deploying a new customization without restarting anything."""
    library = InterfaceObjectLibrary()
    install_standard_composites(library, persist=False)
    presentations = PresentationRegistry()

    counter = [0]

    def deploy():
        counter[0] += 1
        engine = CustomizationEngine(paper_db.bus)
        program = FIGURE_6_PROGRAM.replace(
            "user juliano", f"user deploy_{counter[0]}")
        directives = compile_program(program, paper_db, library,
                                     presentations)
        for directive in directives:
            engine.register_directive(directive, persist=False)
        engine.manager.detach()
        return len(directives)

    assert benchmark(deploy) == 1
    with capsys.disabled():
        print_header("C7c", "live customization deployment")
        print("compile + register a full directive at run time "
              "(no recompilation, no restart) — see timing table; the "
              "conventional cycle requires editing the interface source, "
              "as install_pole_manager_variants demonstrates.")
