"""Experiment F1 — paper Figure 1: the architecture's component hand-offs.

Traces one user interaction end to end and verifies the paper's data flow:

    user event -> GIS interface (dispatcher) -> DB event -> active
    mechanism -> interface objects library -> generic interface builder ->
    customized interface definition -> screen

then times the full loop (the per-interaction cost of the architecture).
"""

from repro.active import EventKind
from repro.core import GISSession
from repro.lang import FIGURE_6_PROGRAM

from _support import print_header, print_table


def test_fig1_component_handoffs(paper_db, juliano_session, capsys, benchmark):
    session = juliano_session
    paper_db.bus.keep_log = True

    trace: list[str] = []
    original_create = session.library.create

    def tracing_create(type_name, name=None, **params):
        trace.append(f"library.create({type_name})")
        return original_create(type_name, name, **params)

    session.library.create = tracing_create
    try:
        session.connect("phone_net")
    finally:
        session.library.create = original_create
    events = paper_db.bus.drain_log()
    paper_db.bus.keep_log = False

    # 1. the interaction produced the Get_Schema DB event ...
    assert events[0].kind is EventKind.GET_SCHEMA
    # 2. ... which the active mechanism answered with rule R1 ...
    firings = session.engine.manager.firings_for(events[0].event_id)
    assert any("schema" in f.rule_name for f in firings)
    # 3. ... whose NULL display cascaded a Get_Class event (paper §4) ...
    assert any(e.kind is EventKind.GET_CLASS and e.subject == "Pole"
               for e in events)
    # 4. ... the builder pulled the custom widget from the library ...
    assert any("poleWidget" in t for t in trace)
    # 5. ... and the customized definition reached the screen.
    assert "classset_Pole" in session.screen.names()

    with capsys.disabled():
        print_header("F1", "Figure 1 architecture trace (one interaction)")
        rows = [["1", "user event", "connect('phone_net')"],
                ["2", "DB event", events[0].describe()]]
        for i, firing in enumerate(firings):
            rows.append([str(3 + i), "rule fired", firing.rule_name])
        rows.append(["+", "cascade", ", ".join(
            e.describe() for e in events[1:])])
        rows.append(["+", "library pulls", ", ".join(sorted(set(trace)))[:60]])
        rows.append(["+", "screen", ", ".join(session.screen.names())])
        print_table(["step", "stage", "detail"], rows)

    # timed kernel: rendering the customized window the trace produced
    benchmark(lambda: session.render("classset_Pole"))


def test_fig1_interaction_loop_latency(benchmark, paper_db):
    """Time of the complete §4 loop (3 interactions) under customization."""

    def loop():
        session = GISSession(paper_db, user="juliano",
                             application="pole_manager")
        session.install_program(FIGURE_6_PROGRAM, persist=False)
        session.connect("phone_net")
        oid = paper_db.extent("phone_net", "Pole").oids()[0]
        session.select_instance(oid)
        session.engine.manager.detach()
        return len(session.screen)

    windows = benchmark(loop)
    assert windows == 3
