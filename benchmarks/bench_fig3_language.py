"""Experiment F3 — paper Figure 3: the customization language constructs.

Parses a corpus exercising every grammar production of Figure 3 (plus the
reproduction's extensions), reports construct coverage, and times the
parse + semantic-check + compile pipeline.
"""

from repro.lang import FIGURE_6_PROGRAM, compile_program, parse_program
from repro.uilib import (
    InterfaceObjectLibrary,
    PresentationRegistry,
    install_standard_composites,
)

from _support import print_header, print_table

#: construct name -> exercising snippet (all against the phone_net schema)
CORPUS = {
    "For user": "for user juliano",
    "For category": "for category field_eng",
    "For application": "for application pole_manager",
    "For user+category+application": "for user j category c application a",
    "For scale (extension)": "for application a scale 1000..25000",
    "For time (extension)": "for application a time planning",
    "schema display default": None,
    "schema display hierarchy": None,
    "schema display user-defined": None,
    "schema display Null": None,
    "class control as": None,
    "class presentation as": None,
    "instances display attribute as widget": None,
    "display attribute as Null": None,
    "from (attribute paths)": None,
    "from (method call)": None,
    "using (behavior binding)": None,
    "on update display (extension)": None,
}

BODY = {
    "schema display default": "schema phone_net display as default",
    "schema display hierarchy": "schema phone_net display as hierarchy",
    "schema display user-defined": "schema phone_net display as user-defined",
    "schema display Null": "schema phone_net display as Null",
}

CLASS_BODIES = {
    "class control as": "class Pole display control as poleWidget",
    "class presentation as": "class Pole display presentation as pointFormat",
    "instances display attribute as widget":
        "class Pole display instances\n"
        "  display attribute pole_composition as composed_text\n"
        "    from pole.material pole.diameter",
    "display attribute as Null":
        "class Pole display instances\n"
        "  display attribute pole_location as Null",
    "from (attribute paths)":
        "class Pole display instances\n"
        "  display attribute pole_composition as composed_text\n"
        "    from pole_composition.pole_material pole_composition.pole_height",
    "from (method call)":
        "class Pole display instances\n"
        "  display attribute pole_supplier as text\n"
        "    from get_supplier_name(pole_supplier)",
    "using (behavior binding)":
        "class Pole display instances\n"
        "  display attribute pole_composition as composed_text\n"
        "    from pole.material using composed_text.notify()",
    "on update display (extension)":
        "class Pole display on update display as text",
}


def program_for(construct: str) -> str:
    context = CORPUS.get(construct) or "for user juliano"
    schema = BODY.get(construct, "schema phone_net display as default")
    body = CLASS_BODIES.get(construct, "class Pole display")
    return f"{context}\n{schema}\n{body}\n"


def test_fig3_construct_coverage(paper_db, capsys, benchmark):
    library = InterfaceObjectLibrary()
    install_standard_composites(library, persist=False)
    presentations = PresentationRegistry()

    rows = []
    for construct in CORPUS:
        source = program_for(construct)
        directives = compile_program(source, paper_db, library, presentations)
        rows.append([construct, "OK", len(directives)])
    with capsys.disabled():
        print_header("F3", "Figure 3 grammar construct coverage")
        print_table(["construct", "compiles", "directives"], rows)
    assert len(rows) == len(CORPUS)

    benchmark(lambda: parse_program(FIGURE_6_PROGRAM))


def test_fig3_compile_throughput(paper_db, benchmark):
    library = InterfaceObjectLibrary()
    install_standard_composites(library, persist=False)
    presentations = PresentationRegistry()
    directives = benchmark(
        lambda: compile_program(FIGURE_6_PROGRAM, paper_db, library,
                                presentations))
    assert len(directives) == 1


def test_fig3_large_program_compile(paper_db, benchmark, capsys):
    """Compile a 40-directive program (one per user) in one pass."""
    library = InterfaceObjectLibrary()
    install_standard_composites(library, persist=False)
    presentations = PresentationRegistry()
    program = "\n".join(
        FIGURE_6_PROGRAM.replace("user juliano", f"user engineer_{i}")
        for i in range(40)
    )
    directives = benchmark(
        lambda: compile_program(program, paper_db, library, presentations))
    assert len(directives) == 40
    with capsys.disabled():
        print_header("F3b", "large-program compilation")
        print_table(["directives", "rules generated (5 per directive)"],
                    [[len(directives), len(directives) * 5]])
