"""Experiment C8 — concurrent sessions: shared kernel vs per-session stacks.

The paper's architecture (§3, Figure 1) puts *one* active DBMS behind many
interactive users. This experiment measures what that sharing is worth:

* **per-session stacks** (the historical shape): every session builds a
  private library/engine/builder and installs the customization rule set
  into its own engine — so every primitive event published on the shared
  bus wakes K rule managers;
* **shared kernel**: one :class:`repro.core.GISKernel` owns a single
  engine; events carry a ``session_id`` and decisions are recorded per
  session. Measured with the context-keyed decision cache on and off.

Reported as end-to-end interactions/second of the §4 browsing loop at
1, 8 and 64 sessions, plus a selection-path microbenchmark isolating the
decision cache (window construction excluded).

Quick mode (``REPRO_BENCH_QUICK=1``, used by the CI smoke step) shrinks
the configuration and skips the throughput-ratio assertions — tiny runs
on shared CI boxes are too noisy to gate on.
"""

import gc
import os
import time

from repro.core import (
    ClassCustomization,
    Context,
    ContextPattern,
    CustomizationDirective,
    CustomizationEngine,
)
from repro.workloads import (
    SessionPool,
    browsing_contexts,
    build_phone_net_database,
)

from _support import capture_metrics, print_header, print_metrics, print_table

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
SESSION_COUNTS = (1, 4) if QUICK else (1, 8, 64)
INTERACTIONS = 4 if QUICK else 12
MICRO_RULES = 50 if QUICK else 400
MICRO_EVENTS = 50 if QUICK else 400


def server_rule_set(user_count: int) -> list[CustomizationDirective]:
    """A realistic server-wide rule set: one directive per known user plus
    category- and application-level fallbacks, mirroring the contexts
    :func:`browsing_contexts` hands out."""
    directives = [
        CustomizationDirective(
            name=f"app_{app}",
            pattern=ContextPattern(application=app),
            schema_name="phone_net",
            classes=(ClassCustomization("Pole"),),
        )
        for app in ("pole_manager", "viewer", "planner")
    ]
    for category in ("engineer", "manager", "browser"):
        for app in ("pole_manager", "viewer", "planner"):
            directives.append(CustomizationDirective(
                name=f"cat_{category}_{app}",
                pattern=ContextPattern(category=category, application=app),
                schema_name="phone_net",
                classes=(ClassCustomization("Pole"),),
            ))
    for i in range(user_count):
        directives.append(CustomizationDirective(
            name=f"user_{i}",
            pattern=ContextPattern(
                user=f"user{i}",
                application=("pole_manager", "viewer", "planner")[i % 3],
            ),
            schema_name="phone_net",
            classes=(ClassCustomization("Pole"),),
        ))
    return directives


def throughput(db, directives, session_count: int, *, shared: bool,
               cache: bool) -> float:
    """End-to-end interactions/second for one pool configuration."""
    pool = SessionPool(
        db, browsing_contexts(session_count), schema_name="phone_net",
        shared_kernel=shared, selection_cache=cache, directives=directives,
    )
    # level the playing field: earlier configurations leave cyclic garbage
    # (windows reference their callbacks reference their windows) whose
    # collection would otherwise land inside a later configuration's
    # timed region
    gc.collect()
    try:
        start = time.perf_counter()
        steps = pool.run(interactions_per_session=INTERACTIONS, seed=97)
        elapsed = time.perf_counter() - start
    finally:
        pool.shutdown()
    return steps / elapsed


def run_throughput_grid() -> dict[tuple[int, str], float]:
    db = build_phone_net_database()
    directives = server_rule_set(max(SESSION_COUNTS))
    # untimed warmup so the first measured configuration doesn't pay
    # one-time import and code-cache costs
    throughput(db, directives, 1, shared=False, cache=False)
    throughput(db, directives, 1, shared=True, cache=True)
    results: dict[tuple[int, str], float] = {}
    for count in SESSION_COUNTS:
        results[(count, "per-session")] = throughput(
            db, directives, count, shared=False, cache=False)
        results[(count, "kernel cache=off")] = throughput(
            db, directives, count, shared=True, cache=False)
        results[(count, "kernel cache=on")] = throughput(
            db, directives, count, shared=True, cache=True)
    return results


def run_cache_microbench() -> tuple[float, float]:
    """Selection-path events/second, cache off vs on (no windows built)."""
    rates = []
    for cache in (False, True):
        db = build_phone_net_database()
        engine = CustomizationEngine(db.bus, selection_cache=cache)
        for directive in server_rule_set(MICRO_RULES):
            engine.register_directive(directive, persist=False)
        context = Context(user="user1", category="manager",
                          application="viewer")
        db.get_schema("phone_net", context=context)  # warm the cache
        start = time.perf_counter()
        for __ in range(MICRO_EVENTS):
            db.get_schema("phone_net", context=context)
        rates.append(MICRO_EVENTS / (time.perf_counter() - start))
        engine.manager.detach()
    return rates[0], rates[1]


def run_metrics_sample() -> None:
    """One instrumented shared-kernel run, for the observability report."""
    db = build_phone_net_database()
    directives = server_rule_set(8)
    with capture_metrics():
        pool = SessionPool(
            db, browsing_contexts(8), schema_name="phone_net",
            shared_kernel=True, selection_cache=True, directives=directives,
        )
        try:
            pool.run(interactions_per_session=INTERACTIONS, seed=97)
        finally:
            pool.shutdown()
        print_metrics(["engine.decision_cache", "kernel.sessions",
                       "dispatcher.interactions", "rules.evaluated"])


def test_c8_concurrent_sessions(capsys):
    grid = run_throughput_grid()
    cache_off, cache_on = run_cache_microbench()

    rows = []
    for count in SESSION_COUNTS:
        base = grid[(count, "per-session")]
        rows.append([
            count,
            f"{base:.0f}/s",
            f"{grid[(count, 'kernel cache=off')]:.0f}/s",
            f"{grid[(count, 'kernel cache=on')]:.0f}/s",
            f"{grid[(count, 'kernel cache=on')] / base:.1f}x",
        ])
    with capsys.disabled():
        print_header("C8", "concurrent sessions: shared kernel vs "
                           "per-session stacks (interactions/sec)")
        print_table(
            ["sessions", "per-session", "kernel cache=off",
             "kernel cache=on", "speedup"],
            rows,
        )
        print(f"\nselection path ({MICRO_RULES + 12} directives): "
              f"cache off {cache_off:.0f} ev/s, "
              f"cache on {cache_on:.0f} ev/s "
              f"({cache_on / cache_off:.1f}x)")
        run_metrics_sample()

    if not QUICK:
        top = max(SESSION_COUNTS)
        assert grid[(top, "kernel cache=on")] >= \
            3.0 * grid[(top, "per-session")]
        assert cache_on >= 2.0 * cache_off


if __name__ == "__main__":
    class _Capsys:
        class _Ctx:
            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

        def disabled(self):
            return self._Ctx()

    test_c8_concurrent_sessions(_Capsys())
    print("\nC8 ok")
